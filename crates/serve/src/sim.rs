//! The serving plane, its event engine, and the discrete-event simulator.
//!
//! [`ServePlane`] wires the four serving components — gateway admission,
//! micro-batcher, model cache, fleet router — around a model registry
//! snapshot. `ServeEngine` (crate-internal) is the event core shared by
//! both serving backends: arrivals, deadline-triggered flushes, device
//! completions and fleet churn are heap-ordered events, all keyed by
//! explicit timestamps — the engine never reads a clock. [`ServeSim`]
//! drives the engine from a pre-generated stream (logical time; a
//! 100k-request replay is exact, fast, and a pure function of the seed)
//! while [`crate::exec`] drives the *same* engine from per-node OS
//! threads behind real ingest queues, on logical or wall timestamps (see
//! [`crate::clock`]).

use crate::batcher::{Batch, BatchPolicy, MicroBatcher, PushOutcome};
use crate::cache::{Admission, ModelCache};
use crate::fault::{FailoverPackage, NodeFaults};
use crate::gateway::{Gateway, GatewayConfig};
use crate::loadgen::LoadPlan;
use crate::observer::NodeObserver;
use crate::request::{Completion, Disposition, Request, ShedReason, TenantId};
use crate::router::Router;
use crate::shard::NodeId;
use crate::stats::{ServeReport, ServeStats};
use crate::ServeError;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use tinymlops_deploy::Requirements;
use tinymlops_device::Fleet;
use tinymlops_nn::Sequential;
use tinymlops_observe::{CounterId, HistId, Telemetry, TimerId};
use tinymlops_quant::QuantizedModel;
use tinymlops_registry::{ModelId, ModelRecord};
use tinymlops_tensor::Tensor;

/// Serving-plane configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Micro-batching policy.
    pub batch: BatchPolicy,
    /// Gateway backpressure limits.
    pub gateway: GatewayConfig,
    /// Model-cache byte budget per serving node.
    pub cache_budget_bytes: u64,
    /// Constraints fed into variant selection (serving SLOs).
    pub requirements: Requirements,
    /// Fixed per-batch dispatch overhead (scheduling, IPC), microseconds.
    pub dispatch_overhead_us: u64,
    /// Artifact-load bandwidth charged on cache misses, bytes per ms.
    pub cache_load_bytes_per_ms: u64,
    /// Fleet churn period (battery/connectivity), microseconds; 0 = off.
    pub fleet_step_period_us: u64,
    /// Weigh "variant already resident in this node's [`ModelCache`]"
    /// against queue depth when picking a device
    /// ([`Router::route_affine`]); `false` restores the pure least-loaded
    /// policy (kept for A/B comparison in `b01_kernels`/`e16_sharding`).
    pub affinity_routing: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchPolicy::default(),
            gateway: GatewayConfig::default(),
            cache_budget_bytes: 256 * 1024,
            requirements: Requirements {
                max_latency_ms: 1e6,
                // Models are pushed to devices ahead of traffic; download
                // time is not on the request path.
                max_download_ms: f64::INFINITY,
                min_accuracy: 0.0,
                max_energy_mj: f64::INFINITY,
            },
            dispatch_overhead_us: 200,
            cache_load_bytes_per_ms: 2_000,
            fleet_step_period_us: 0,
            affinity_routing: true,
        }
    }
}

/// A deployable model executable — the real inference path the batcher
/// feeds when requests carry features.
#[derive(Clone)]
pub enum ExecModel {
    /// Full-precision runtime.
    F32(Sequential),
    /// Quantized integer runtime.
    Quantized(QuantizedModel),
}

impl ExecModel {
    /// Batched argmax prediction.
    #[must_use]
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        match self {
            ExecModel::F32(m) => m.predict(x),
            ExecModel::Quantized(m) => m.predict(x),
        }
    }
}

/// The assembled serving plane.
pub struct ServePlane {
    /// Admission control (§III-C metering at the door).
    pub gateway: Gateway,
    /// Micro-batching queues.
    pub batcher: MicroBatcher,
    /// Byte-budgeted variant cache.
    pub cache: ModelCache,
    /// Constraint-aware fleet router.
    pub router: Router,
    families: BTreeMap<String, Vec<ModelRecord>>,
    exec: BTreeMap<ModelId, ExecModel>,
}

impl ServePlane {
    /// Assemble a plane over `fleet` under `cfg`.
    #[must_use]
    pub fn new(cfg: &ServeConfig, fleet: Fleet) -> Self {
        ServePlane {
            gateway: Gateway::new(cfg.gateway.clone()),
            batcher: MicroBatcher::new(cfg.batch.clone()),
            cache: ModelCache::new(cfg.cache_budget_bytes),
            router: Router::new(fleet, cfg.requirements.clone()),
            families: BTreeMap::new(),
            exec: BTreeMap::new(),
        }
    }

    /// Install a model family (registry snapshot of base + variants).
    pub fn install_family(&mut self, name: &str, records: Vec<ModelRecord>) {
        self.router.refresh_family(name, &records);
        self.families.insert(name.to_string(), records);
    }

    /// Install a real executable for a variant (enables non-virtual
    /// inference for requests carrying features).
    pub fn install_executable(&mut self, id: ModelId, model: ExecModel) {
        self.exec.insert(id, model);
    }

    /// Installed family names.
    #[must_use]
    pub fn family_names(&self) -> Vec<String> {
        self.families.keys().cloned().collect()
    }
}

/// Heap-ordered engine timer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Timer {
    /// Deadline-triggered flush check for a family queue.
    Flush(String),
    /// A dispatched batch completes (index into the in-flight slab).
    BatchDone(usize),
    /// Periodic fleet churn.
    FleetStep,
}

struct InFlight {
    requests: Vec<Request>,
    done_us: u64,
    device: u32,
}

/// Pre-registered telemetry handles for the serving hot path. Metric
/// names are interned once at engine construction; per-event emission is
/// then an index into the sink's fast lane — no map lookup and, for shed
/// counters, no per-event `format!` allocation.
struct ServeMetrics {
    served: CounterId,
    latency_ms: TimerId,
    latency_us: HistId,
    admitted: CounterId,
    refunded: CounterId,
    batches: CounterId,
    batch_size: TimerId,
    /// Indexed by [`ShedReason::index`].
    shed: [CounterId; 6],
}

impl ServeMetrics {
    fn register(t: &Telemetry) -> Self {
        let shed = ShedReason::all().map(|r| t.counter_id(&format!("serve.shed.{}", r.name())));
        ServeMetrics {
            served: t.counter_id("serve.served"),
            latency_ms: t.timer_id("serve.latency_ms"),
            latency_us: t.hist_id("serve.latency_us"),
            admitted: t.counter_id("serve.admitted"),
            refunded: t.counter_id("serve.refunded"),
            batches: t.counter_id("serve.batches"),
            batch_size: t.timer_id("serve.batch_size"),
            shed,
        }
    }
}

/// The per-node serving event core, shared by both backends.
///
/// The engine owns the timer heap, in-flight batch slab and statistics
/// accumulator; the *driver* owns the arrival source and the time source
/// ([`crate::Clock`]): [`ServeSim`] feeds it a pre-generated stream,
/// [`crate::exec`] feeds it from a live ingest queue. The engine itself
/// is purely timestamp-driven — it never reads a clock — so identical
/// inputs produce identical outputs on every driver, and a threaded
/// replay is bit-identical to the simulated one.
pub(crate) struct ServeEngine<'t> {
    cfg: ServeConfig,
    telemetry: Option<&'t Telemetry>,
    metrics: Option<ServeMetrics>,
    observer: Option<Box<NodeObserver>>,
    stats: ServeStats,
    timers: BinaryHeap<Reverse<(u64, u64, Timer)>>,
    seq: u64,
    inflight: Vec<Option<InFlight>>,
    /// Injected faults for this node (None unless a [`crate::FaultPlan`]
    /// is enabled — the disabled plane carries no state at all).
    faults: Option<NodeFaults>,
    /// Current brownout degradation level (0 = full catalog).
    brownout_level: usize,
    /// Controller-imposed brownout floor: dispatch degrades at
    /// `max(brownout_level, brownout_floor)`. 0 (the default) is the
    /// exact pre-controller path.
    brownout_floor: usize,
    /// Control-interval counters for the fleet controller (None unless a
    /// controller is armed — the disabled path carries no state at all).
    tap: Option<ControlTap>,
    /// Completion log for closed-loop drivers (None unless armed — the
    /// open-loop path carries no state at all). Pure observation: the
    /// tap only appends to a Vec at points where the outcome is already
    /// decided, so arming it never changes a serving decision.
    completions: Option<Vec<Completion>>,
}

/// Per-control-interval counters behind [`ServeEngine::take_control_sample`].
/// Sampled and reset at every controller tick; pure observation (no
/// serving decision reads it), so arming the tap never changes outcomes.
#[derive(Debug, Default)]
struct ControlTap {
    arrivals: u64,
    served: u64,
    shed: u64,
    served_by_tenant: BTreeMap<TenantId, u64>,
    latencies_us: Vec<u64>,
}

impl<'t> ServeEngine<'t> {
    pub(crate) fn new(cfg: ServeConfig, telemetry: Option<&'t Telemetry>) -> Self {
        let mut engine = ServeEngine {
            cfg,
            telemetry,
            metrics: telemetry.map(ServeMetrics::register),
            observer: None,
            stats: ServeStats::new(),
            timers: BinaryHeap::new(),
            seq: 0,
            inflight: Vec::new(),
            faults: None,
            brownout_level: 0,
            brownout_floor: 0,
            tap: None,
            completions: None,
        };
        if engine.cfg.fleet_step_period_us > 0 {
            engine.arm(engine.cfg.fleet_step_period_us, Timer::FleetStep);
        }
        engine
    }

    /// Attach a per-node observer; its hooks consume only timestamps the
    /// engine already computes, so attaching one never changes a serving
    /// decision.
    pub(crate) fn set_observer(&mut self, observer: Option<Box<NodeObserver>>) {
        self.observer = observer;
    }

    /// Attach this node's view of the fault plan (None disables the fault
    /// plane entirely — the engine then runs the exact pre-fault code
    /// paths).
    pub(crate) fn set_faults(&mut self, faults: Option<NodeFaults>) {
        self.faults = faults;
    }

    /// Current brownout degradation level (asserted by the ladder's unit
    /// test; the serving path reads the field directly).
    #[cfg(test)]
    pub(crate) fn brownout_level(&self) -> usize {
        self.brownout_level
    }

    /// Arm (or disarm) the control tap. Armed, the engine accumulates
    /// per-interval counters for [`ServeEngine::take_control_sample`];
    /// disarmed (the default) no control state exists at all.
    pub(crate) fn set_control_tap(&mut self, on: bool) {
        self.tap = on.then(ControlTap::default);
    }

    /// Controller brownout nudge: dispatch degrades at
    /// `max(auto level, floor)`. Setting 0 lifts the nudge.
    pub(crate) fn set_brownout_floor(&mut self, level: usize) {
        self.brownout_floor = level;
    }

    /// Arm (or disarm) the completion tap. Armed, every resolved request
    /// — served, shed at admission, shed downstream, or evacuated — is
    /// appended to a log a closed-loop driver drains with
    /// [`ServeEngine::take_completions`]; disarmed (the default) the
    /// response path carries no state at all.
    pub(crate) fn set_completion_tap(&mut self, on: bool) {
        self.completions = on.then(Vec::new);
    }

    /// Drain the completion log (empty when the tap is disarmed).
    pub(crate) fn take_completions(&mut self) -> Vec<Completion> {
        self.completions
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    fn log_completion(&mut self, request: &Request, disposition: Disposition, at_us: u64) {
        if let Some(log) = &mut self.completions {
            log.push(Completion {
                id: request.id,
                tenant: request.tenant,
                disposition,
                at_us,
            });
        }
    }

    /// Sample-and-reset the control tap at a controller tick: the
    /// interval's counters plus instantaneous queue state. Deterministic
    /// (BTreeMap iteration, integer sort), so replay backends produce
    /// bit-identical samples. Panics if the tap is not armed (a driver
    /// wiring bug).
    pub(crate) fn take_control_sample(
        &mut self,
        plane: &ServePlane,
    ) -> crate::controller::ControlSample {
        let tap = self.tap.as_mut().expect("control tap armed");
        let taken = std::mem::take(tap);
        let mut lat = taken.latencies_us;
        lat.sort_unstable();
        let p99_us = if lat.is_empty() {
            0
        } else {
            let rank = ((lat.len() as f64) * 0.99).ceil() as usize;
            lat[rank.clamp(1, lat.len()) - 1]
        };
        crate::controller::ControlSample {
            arrivals: taken.arrivals,
            served: taken.served,
            shed: taken.shed,
            served_by_tenant: taken.served_by_tenant,
            queue_depth: plane.gateway.total_pending(),
            inflight: self.inflight.iter().flatten().count(),
            p99_us,
            brownout_level: self.brownout_level.max(self.brownout_floor),
        }
    }

    /// Telemetry sink plus interned handles when emission is on (they are
    /// `Some` together by construction).
    fn tele(&self) -> Option<(&'t Telemetry, &ServeMetrics)> {
        match (self.telemetry, &self.metrics) {
            (Some(t), Some(m)) => Some((t, m)),
            _ => None,
        }
    }

    /// Record a live-migration handoff touching this node (`to_peer` true
    /// on the draining source, false on the adopting destination).
    pub(crate) fn observe_handoff(
        &mut self,
        at_us: u64,
        tenant: TenantId,
        peer: NodeId,
        to_peer: bool,
    ) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_handoff(at_us, tenant, peer, to_peer);
        }
    }

    fn arm(&mut self, at_us: u64, timer: Timer) {
        // An injected stall freezes the node: anything due inside the
        // window fires at its end instead. Idempotent, keyed only on the
        // due time, so both backends slide identically.
        let at_us = match &self.faults {
            Some(f) => f.stall_adjusted(at_us),
            None => at_us,
        };
        self.timers.push(Reverse((at_us, self.seq, timer)));
        self.seq += 1;
    }

    /// Earliest pending timer, if any (live drivers wait on this).
    pub(crate) fn next_timer_us(&self) -> Option<u64> {
        self.timers.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pop and handle every timer due at or before `t_us`. Timers at the
    /// same instant as an arrival run first, so a due flush precedes the
    /// arrival that would join the next batch. `more_arrivals` tells
    /// fleet churn whether to re-arm (the sim knows from its cursor; a
    /// live driver from its queue state).
    pub(crate) fn run_timers_through(
        &mut self,
        plane: &mut ServePlane,
        t_us: u64,
        more_arrivals: bool,
    ) {
        while self.next_timer_us().is_some_and(|t| t <= t_us) {
            let Reverse((now, _, timer)) = self.timers.pop().expect("peeked");
            match timer {
                Timer::Flush(family) => {
                    if let Some(batch) = plane.batcher.flush_due(&family, now) {
                        self.dispatch(plane, batch, now);
                    }
                }
                Timer::BatchDone(idx) => {
                    let done = self.inflight[idx].take().expect("completes once");
                    for r in &done.requests {
                        plane.gateway.resolve(r.tenant);
                        let latency = done.done_us - r.arrival_us;
                        self.log_completion(
                            r,
                            Disposition::Served {
                                latency_us: latency,
                                device: done.device,
                            },
                            done.done_us,
                        );
                        self.stats.on_served(latency, done.done_us);
                        if let Some(tap) = &mut self.tap {
                            tap.served += 1;
                            *tap.served_by_tenant.entry(r.tenant).or_default() += 1;
                            tap.latencies_us.push(latency);
                        }
                        if let Some((t, m)) = self.tele() {
                            t.incr_id(m.served);
                            t.record_id(m.latency_ms, latency as f64 / 1000.0);
                            t.record_hist_id(m.latency_us, latency);
                        }
                        if let Some(obs) = self.observer.as_deref_mut() {
                            obs.on_complete(done.done_us, r, latency);
                        }
                    }
                }
                Timer::FleetStep => {
                    plane.router.step_fleet();
                    // Replan lazily; next route() refreshes.
                    if more_arrivals || plane.batcher.pending() > 0 {
                        self.arm(now + self.cfg.fleet_step_period_us, Timer::FleetStep);
                    }
                }
            }
        }
    }

    /// Admit-or-shed one arrival at its own timestamp. The borrow is the
    /// point: shed requests (the bulk of overload runs) never pay for a
    /// clone — only admitted work is copied into the batcher's queue.
    /// Returns the admission-time shed reason (None = admitted) so a
    /// retrying driver can tell transient pressure from hard denials;
    /// non-retrying drivers ignore it.
    pub(crate) fn on_arrival(
        &mut self,
        plane: &mut ServePlane,
        request: &Request,
    ) -> Option<ShedReason> {
        let now = request.arrival_us;
        self.step_brownout(plane);
        self.stats.on_arrival(now);
        if let Some(tap) = &mut self.tap {
            tap.arrivals += 1;
        }
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_arrival(now);
        }
        match plane.gateway.admit(request) {
            Err(reason) => {
                self.log_completion(request, Disposition::Shed(reason), now);
                self.stats.on_shed(reason);
                if let Some(tap) = &mut self.tap {
                    tap.shed += 1;
                }
                if let Some((t, m)) = self.tele() {
                    t.incr_id(m.shed[reason.index()]);
                }
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_shed(now, request.tenant, request.id, reason);
                }
                Some(reason)
            }
            Ok(()) => {
                if let Some((t, m)) = self.tele() {
                    t.incr_id(m.admitted);
                }
                let outcome = plane.batcher.push(request.clone());
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_admit(now, request, plane.batcher.pending());
                }
                match outcome {
                    PushOutcome::Flushed(batch) => {
                        self.dispatch(plane, batch, now);
                    }
                    PushOutcome::Queued {
                        flush_at_us: Some(flush_at_us),
                    } => {
                        self.arm(flush_at_us, Timer::Flush(request.model.clone()));
                    }
                    PushOutcome::Queued { flush_at_us: None } => {}
                }
                None
            }
        }
    }

    /// Walk the brownout ladder one step if gateway pressure crossed a
    /// watermark. Reads only engine-local state (the gateway's pending
    /// count against its configured ceiling), so both backends step at
    /// identical points and replay parity holds with brownout enabled.
    fn step_brownout(&mut self, plane: &ServePlane) {
        let Some(faults) = &self.faults else {
            return;
        };
        let b = &faults.brownout;
        if !b.enabled {
            return;
        }
        let pressure =
            plane.gateway.total_pending() as f64 / self.cfg.gateway.max_total_pending.max(1) as f64;
        if pressure >= b.high_watermark && self.brownout_level < b.max_level {
            self.brownout_level += 1;
        } else if pressure <= b.low_watermark && self.brownout_level > 0 {
            self.brownout_level -= 1;
        }
    }

    /// Live-migration drain, source side: splice the tenant's queued
    /// (admitted, not yet dispatched) requests out of this node's
    /// batcher, returning them for handoff. Queue fronts may change, so
    /// every surviving family deadline is re-armed (stale timers are
    /// no-ops; a missing one would stall a queue). Requests the tenant
    /// already has *dispatched* stay: their completion timestamps are
    /// decided, they finish (and are counted) on this node.
    pub(crate) fn splice_tenant(
        &mut self,
        plane: &mut ServePlane,
        tenant: crate::request::TenantId,
    ) -> Vec<Request> {
        let spliced = plane.batcher.splice_tenant(tenant);
        if !spliced.is_empty() {
            for (family, at_us) in plane.batcher.flush_deadlines() {
                self.arm(at_us, Timer::Flush(family));
            }
        }
        spliced
    }

    /// Requests of `tenant` inside dispatched in-flight batches — work
    /// that will complete on this node after the account has moved away,
    /// so the detaching account's pending count must shed it first.
    pub(crate) fn inflight_pending(&self, tenant: crate::request::TenantId) -> usize {
        self.inflight
            .iter()
            .flatten()
            .map(|b| b.requests.iter().filter(|r| r.tenant == tenant).count())
            .sum()
    }

    /// Live-migration handoff, destination side: re-enqueue requests
    /// spliced from the source node's batcher. They were admitted (and
    /// charged) there, so they enter the batcher directly — no second
    /// trip through the gateway, no double billing. Their original
    /// arrival stamps are kept (migration latency is real latency);
    /// already-due deadline triggers fire on the next timer run at
    /// `now_us`.
    pub(crate) fn adopt_spliced(
        &mut self,
        plane: &mut ServePlane,
        spliced: Vec<Request>,
        now_us: u64,
    ) {
        for request in spliced {
            let family = request.model.clone();
            match plane.batcher.push(request) {
                PushOutcome::Flushed(batch) => self.dispatch(plane, batch, now_us),
                PushOutcome::Queued {
                    flush_at_us: Some(flush_at_us),
                } => self.arm(flush_at_us, Timer::Flush(family)),
                PushOutcome::Queued { flush_at_us: None } => {}
            }
        }
    }

    /// Crash teardown (injected [`crate::FaultKind::Crash`]): the node is
    /// dead as of `at_us`. Every queued and in-flight request dies with
    /// it — each is resolved as a refunded [`ShedReason::Failover`] shed
    /// while its account is still attached, so the prepaid query returns
    /// through the audit chain and `unrefunded_sheds() == 0` survives the
    /// crash. Every account is then detached and exported as a
    /// [`FailoverPackage`] (quota partition + census counters, pending
    /// already zero) for surviving nodes to reconstruct. The timer heap
    /// is cleared — nothing fires on a dead node — which is load-bearing:
    /// a surviving `BatchDone` would fire on an emptied in-flight slot.
    /// Deterministic given the plane state (tenants in id order, slab in
    /// dispatch order), so both backends tear down identically.
    ///
    /// The second return is the *orphans*: in-flight requests of tenants
    /// that already migrated away (the PR 5 drain leaves dispatched work
    /// behind and pre-debits the moving account's pending count). Their
    /// shed is counted here, but the refund must land on the account that
    /// was charged — the driver routes each orphan to the tenant's
    /// current home and calls [`ServeEngine::refund_orphan`] there.
    pub(crate) fn evacuate(
        &mut self,
        plane: &mut ServePlane,
        from: NodeId,
        at_us: u64,
    ) -> (Vec<FailoverPackage>, Vec<Request>) {
        let tenants = plane.gateway.tenant_ids();
        let mut doomed: Vec<Request> = Vec::new();
        for &tenant in &tenants {
            doomed.extend(plane.batcher.splice_tenant(tenant));
        }
        debug_assert_eq!(plane.batcher.pending(), 0, "only known tenants enqueue");
        for slot in &mut self.inflight {
            if let Some(batch) = slot.take() {
                doomed.extend(batch.requests);
            }
        }
        self.timers.clear();
        let mut orphans = Vec::new();
        for r in doomed {
            self.log_completion(&r, Disposition::Shed(ShedReason::Failover), at_us);
            self.stats.on_shed(ShedReason::Failover);
            if let Some(tap) = &mut self.tap {
                tap.shed += 1;
            }
            if let Some((t, m)) = self.tele() {
                t.incr_id(m.shed[ShedReason::Failover.index()]);
            }
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_shed(at_us, r.tenant, r.id, ShedReason::Failover);
            }
            if plane.gateway.tenant(r.tenant).is_some() {
                plane.gateway.resolve_shed(r.tenant, at_us / 1000);
                if let Some((t, m)) = self.tele() {
                    t.incr_id(m.refunded);
                }
            } else {
                orphans.push(r);
            }
        }
        let mut packages = Vec::new();
        for tenant in tenants {
            let Some(account) = plane.gateway.remove_tenant(tenant) else {
                continue;
            };
            debug_assert_eq!(account.pending, 0, "evacuation resolved all pending work");
            packages.push(FailoverPackage {
                tenant,
                quota: account.quota,
                admitted: account.admitted,
                shed: account.shed,
                refunded: account.refunded,
                from,
                at_us,
            });
        }
        (packages, orphans)
    }

    /// Refund one prepaid query on this node for a request of `tenant`
    /// that died on a crashed peer (see [`ServeEngine::evacuate`] —
    /// orphan leg of a crash that raced a migration). The shed was
    /// already counted on the dead node; only the refund lands here.
    pub(crate) fn refund_orphan(&mut self, plane: &mut ServePlane, tenant: TenantId, at_us: u64) {
        plane.gateway.refund_orphan(tenant, at_us / 1000);
        if let Some((t, m)) = self.tele() {
            t.incr_id(m.refunded);
        }
    }

    /// Drain every remaining timer (no more arrivals will come) and
    /// return the statistics accumulator. The drain never waits:
    /// remaining completion timestamps are already decided, so a
    /// wall-clock driver does not sleep out a saturated run's queued
    /// service time just to record it.
    pub(crate) fn finish(mut self, plane: &mut ServePlane) -> ServeStats {
        self.run_timers_through(plane, u64::MAX, false);
        debug_assert_eq!(plane.batcher.pending(), 0, "all queues drained");
        if let Some(obs) = self.observer.take() {
            self.stats.observation = Some(Box::new(obs.finish()));
        }
        self.stats
    }

    fn dispatch(&mut self, plane: &mut ServePlane, batch: Batch, now: u64) {
        // Injected dispatch-time panic (threaded backend only — see
        // `FaultKind::DispatchPanic`): the worker dies mid-run and the
        // feeder must survive it.
        if let Some(faults) = self.faults.as_mut() {
            if faults.take_panic(now) {
                panic!("injected fault: dispatch panic at {now}us");
            }
        }
        // Expired-before-dispatch requests are shed, not executed. They
        // were admitted (and charged) at the door, so the shed refunds the
        // prepaid query through the audit chain.
        let (live, expired): (Vec<Request>, Vec<Request>) = batch
            .requests
            .into_iter()
            .partition(|r| r.deadline_abs_us() >= now);
        for r in &expired {
            plane.gateway.resolve_shed(r.tenant, now / 1000);
            self.log_completion(r, Disposition::Shed(ShedReason::DeadlineExpired), now);
            self.stats.on_shed(ShedReason::DeadlineExpired);
            if let Some(tap) = &mut self.tap {
                tap.shed += 1;
            }
            if let Some((t, m)) = self.tele() {
                t.incr_id(m.shed[ShedReason::DeadlineExpired.index()]);
                t.incr_id(m.refunded);
            }
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_shed(now, r.tenant, r.id, ShedReason::DeadlineExpired);
            }
        }
        if live.is_empty() {
            return;
        }
        // Route — replan lazily after fleet churn, against the brownout
        // level's (possibly reduced) record set. Level 0 is the exact
        // pre-brownout path. The controller's floor (nudge) composes with
        // the automatic pressure ladder by max.
        let level = self.brownout_level.max(self.brownout_floor);
        if !plane.router.has_plan_level(&batch.model, level) {
            if let Some(records) = plane.families.get(&batch.model) {
                if level == 0 {
                    plane.router.refresh_family(&batch.model, records);
                } else {
                    let reduced = crate::fault::degrade_records(records, level);
                    plane
                        .router
                        .refresh_family_level(&batch.model, &reduced, level);
                }
            }
        }
        let route = if self.cfg.affinity_routing {
            plane.router.route_affine_level(
                &batch.model,
                now,
                &plane.cache,
                self.cfg.cache_load_bytes_per_ms,
                level,
            )
        } else {
            plane.router.route_level(&batch.model, now, level)
        };
        let Some(route) = route else {
            for r in &live {
                plane.gateway.resolve_shed(r.tenant, now / 1000);
                self.log_completion(r, Disposition::Shed(ShedReason::NoRoute), now);
                self.stats.on_shed(ShedReason::NoRoute);
                if let Some(tap) = &mut self.tap {
                    tap.shed += 1;
                }
                if let Some((t, m)) = self.tele() {
                    t.incr_id(m.shed[ShedReason::NoRoute.index()]);
                    t.incr_id(m.refunded);
                }
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_shed(now, r.tenant, r.id, ShedReason::NoRoute);
                }
            }
            return;
        };
        self.stats.on_batch(live.len());
        if let Some((t, m)) = self.tele() {
            t.incr_id(m.batches);
            t.record_id(m.batch_size, live.len() as f64);
        }

        // Cache: a miss charges the artifact load time before execution.
        // The admitted record is deep-copied into an `Arc` once per miss
        // (amortized by the simulated multi-ms artifact load it models);
        // hits and repeat batches share the resident entry.
        let record = &route.selection.record;
        let cache_hit = plane.cache.get(record.id).is_some();
        let mut cache_evicted = 0usize;
        let load_us = if cache_hit {
            0
        } else {
            if let Admission::Inserted(evicted) = plane.cache.admit(record.clone()) {
                cache_evicted = evicted;
            }
            let ms = record.size_bytes as f64 / self.cfg.cache_load_bytes_per_ms.max(1) as f64;
            (ms * 1000.0) as u64
        };

        // Real inference when an executable is installed and the batch
        // carries features: the micro-batcher feeds nn/quant directly.
        if let Some(exec) = plane.exec.get(&record.id) {
            let dim = live.iter().find_map(|r| r.features.as_ref().map(Vec::len));
            if let Some(dim) = dim {
                let rows: Vec<&Request> = live
                    .iter()
                    .filter(|r| r.features.as_ref().map(Vec::len) == Some(dim))
                    .collect();
                if !rows.is_empty() {
                    let mut data = Vec::with_capacity(rows.len() * dim);
                    for r in &rows {
                        data.extend_from_slice(r.features.as_ref().expect("filtered"));
                    }
                    let x = Tensor::from_vec(data, &[rows.len(), dim]);
                    let preds = exec.predict(&x);
                    self.stats.real_predictions += preds.len() as u64;
                }
            }
        }

        // Virtual execution cost: per-batch overhead + artifact load +
        // sequential per-item inference at the selected variant's speed.
        let per_item_us = (route.selection.latency_ms * 1000.0) as u64;
        let mut service_us =
            self.cfg.dispatch_overhead_us + load_us + per_item_us * live.len() as u64;
        // Injected slowdown: a degraded node's device work takes longer
        // from the fault's start time onward.
        if let Some(faults) = &self.faults {
            let multiplier = faults.slow_multiplier(now);
            if multiplier != 1.0 {
                service_us = (service_us as f64 * multiplier) as u64;
            }
        }
        let start = plane.router.free_at(route.device_index, now);
        let mut done_us = start + service_us.max(1);
        // Injected stall: a completion landing inside a stall window
        // slides to the window's end (the timer in `arm` would slide the
        // same way; adjusting here keeps `InFlight::done_us` — and the
        // latency accounting — consistent with the fired timer).
        if let Some(faults) = &self.faults {
            done_us = faults.stall_adjusted(done_us);
        }
        plane.router.occupy(route.device_index, done_us);
        // §IV: inference drains the device battery.
        let energy = route.selection.energy_mj * live.len() as f64;
        let _ = plane.router.fleet.devices[route.device_index]
            .state
            .battery
            .drain_mj(energy);

        let idx = self.inflight.len();
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_dispatch(now, idx as u64, live.len(), done_us - now);
            obs.on_cache(now, cache_hit, cache_evicted);
        }
        self.inflight.push(Some(InFlight {
            requests: live,
            done_us,
            device: route.device_index as u32,
        }));
        self.arm(done_us, Timer::BatchDone(idx));
    }
}

/// Discrete-event driver for a [`ServePlane`]: the shared serving engine
/// fed from a pre-generated arrival stream (logical time — see
/// [`crate::clock`]).
pub struct ServeSim<'a> {
    cfg: ServeConfig,
    telemetry: Option<&'a Telemetry>,
}

impl<'a> ServeSim<'a> {
    /// New simulator; pass a [`Telemetry`] sink to receive serving
    /// counters (`serve.*`).
    #[must_use]
    pub fn new(cfg: ServeConfig, telemetry: Option<&'a Telemetry>) -> Self {
        ServeSim { cfg, telemetry }
    }

    /// Provision tenants from a plan: open accounts and credit prepaid
    /// quota (serial = tenant id here; `Platform` wires real vouchers).
    pub fn provision(&self, plane: &mut ServePlane, plan: &LoadPlan) {
        for t in &plan.tenants {
            let mut key = [0u8; 32];
            key[..4].copy_from_slice(&t.id.to_le_bytes());
            plane.gateway.register_tenant(t.id, key);
            plane
                .gateway
                .credit(t.id, t.prepaid_queries, u64::from(t.id), 0)
                .expect("account just opened");
        }
    }

    /// Replay `stream` through `plane`, returning the run report.
    pub fn run(
        &self,
        plane: &mut ServePlane,
        stream: &[Request],
    ) -> Result<ServeReport, ServeError> {
        let stats = self.run_collect(plane, stream)?;
        Ok(stats.report(
            plane.cache.hits(),
            plane.cache.misses(),
            plane.router.devices_used(),
        ))
    }

    /// Replay `stream`, returning the raw accumulator instead of a report
    /// — the fabric merges per-node accumulators so fleet percentiles are
    /// exact rather than percentile-of-percentiles. Generic over borrowed
    /// requests so the fabric's fan-out can pass `&[&Request]` and the
    /// admission-time copy inside the engine stays the only clone.
    pub(crate) fn run_collect<R: std::borrow::Borrow<Request>>(
        &self,
        plane: &mut ServePlane,
        stream: &[R],
    ) -> Result<ServeStats, ServeError> {
        if plane.families.is_empty() {
            return Err(ServeError::NoFamilies);
        }
        let mut engine = ServeEngine::new(self.cfg.clone(), self.telemetry);
        for r in stream {
            let request = r.borrow();
            engine.run_timers_through(plane, request.arrival_us, true);
            let _ = engine.on_arrival(plane, request);
        }
        Ok(engine.finish(plane))
    }
}

/// Convenience: provision + generate + run in one call.
pub fn run_plan(
    plane: &mut ServePlane,
    plan: &LoadPlan,
    cfg: ServeConfig,
    telemetry: Option<&Telemetry>,
) -> Result<ServeReport, ServeError> {
    let sim = ServeSim::new(cfg, telemetry);
    sim.provision(plane, plan);
    let stream = plan.generate();
    sim.run(plane, &stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::TenantSpec;
    use std::collections::BTreeMap;
    use tinymlops_device::default_mix;
    use tinymlops_registry::{ModelFormat, SemVer};

    fn family(name: &str, base_id: u64) -> Vec<ModelRecord> {
        let mut records = Vec::new();
        for (i, (format, size, acc)) in [
            (ModelFormat::F32, 40_000u64, 0.96),
            (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
            (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
        ]
        .into_iter()
        .enumerate()
        {
            let mut metrics = BTreeMap::new();
            metrics.insert("accuracy".into(), acc);
            records.push(ModelRecord {
                id: ModelId(base_id + i as u64),
                name: name.into(),
                version: SemVer::new(1, 0, 0),
                format,
                parent: None,
                artifact: [0; 32],
                size_bytes: size,
                macs: 100_000,
                metrics,
                tags: vec![],
                created_ms: 0,
            });
        }
        records
    }

    fn plan(seed: u64, rps: f64, prepaid: u64) -> LoadPlan {
        LoadPlan {
            tenants: vec![
                TenantSpec {
                    id: 1,
                    rate_rps: rps,
                    model: "kws".into(),
                    prepaid_queries: prepaid,
                    deadline_us: 200_000,
                },
                TenantSpec {
                    id: 2,
                    rate_rps: rps / 2.0,
                    model: "vision".into(),
                    prepaid_queries: prepaid,
                    deadline_us: 200_000,
                },
            ],
            duration_us: 1_000_000,
            seed,
            feature_dim: 0,
        }
    }

    fn plane_with(cfg: &ServeConfig, fleet_size: usize) -> ServePlane {
        let fleet = Fleet::generate(fleet_size, &default_mix(), 9);
        let mut p = ServePlane::new(cfg, fleet);
        p.install_family("kws", family("kws", 0));
        p.install_family("vision", family("vision", 100));
        p
    }

    fn plane(cfg: &ServeConfig) -> ServePlane {
        plane_with(cfg, 40)
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = ServeConfig::default();
        let p = plan(42, 800.0, 100_000);
        let a = run_plan(&mut plane(&cfg), &p, cfg.clone(), None).unwrap();
        let b = run_plan(&mut plane(&cfg), &p, cfg.clone(), None).unwrap();
        assert_eq!(a, b, "same seed, same everything");
        assert!(a.served > 500, "plenty of traffic served: {}", a.served);
    }

    #[test]
    fn quota_exhaustion_sheds_the_tail() {
        let cfg = ServeConfig::default();
        let p = plan(7, 500.0, 50);
        let mut pl = plane(&cfg);
        let report = run_plan(&mut pl, &p, cfg, None).unwrap();
        // Two tenants × 50 prepaid. Downstream sheds refund their query,
        // so the conservation law is: served == credited − leftover, and
        // every admitted-then-shed request shows up as a Refund entry.
        let leftover: u64 = pl.gateway.accounts().map(|(_, a)| a.quota.balance()).sum();
        assert_eq!(
            report.served + leftover,
            100,
            "prepaid queries are either served or still on balance"
        );
        let refunded: u64 = pl.gateway.accounts().map(|(_, a)| a.refunded).sum();
        assert_eq!(
            refunded,
            report.shed_by(ShedReason::DeadlineExpired) + report.shed_by(ShedReason::NoRoute),
            "no admitted-then-shed query is silently burned"
        );
        assert!(report.shed_by(ShedReason::QuotaExhausted) > 100);
        assert!(report.shed_rate > 0.5);
    }

    #[test]
    fn batching_amortizes_overhead_under_load() {
        // Open-loop overload, batch=1 vs batch=8. Micro-batching spends a
        // little waiting latency to amortize per-dispatch overhead, so at
        // saturation it must push more requests through and shed fewer.
        let p = plan(13, 20_000.0, 10_000_000);
        let mut cfg1 = ServeConfig::default();
        cfg1.batch.max_batch = 1;
        let mut cfg8 = ServeConfig::default();
        cfg8.batch.max_batch = 8;
        let r1 = run_plan(&mut plane_with(&cfg1, 12), &p, cfg1.clone(), None).unwrap();
        let r8 = run_plan(&mut plane_with(&cfg8, 12), &p, cfg8.clone(), None).unwrap();
        assert!(
            r8.mean_batch > 1.5,
            "batcher actually batches: {}",
            r8.mean_batch
        );
        assert!(
            r8.served > r1.served,
            "batch=8 served {} !> batch=1 served {}",
            r8.served,
            r1.served
        );
        assert!(
            r8.shed_rate <= r1.shed_rate,
            "batch=8 shed {} !<= batch=1 shed {}",
            r8.shed_rate,
            r1.shed_rate
        );
    }

    #[test]
    fn telemetry_receives_serving_counters() {
        let telemetry = Telemetry::new();
        let cfg = ServeConfig::default();
        let p = plan(3, 300.0, 100_000);
        let report = run_plan(&mut plane(&cfg), &p, cfg, Some(&telemetry)).unwrap();
        assert_eq!(telemetry.counter("serve.served"), report.served);
        assert_eq!(telemetry.counter("serve.batches"), report.batches);
        let snap = telemetry.snapshot();
        assert!(snap.timers.contains_key("serve.latency_ms"));
    }

    #[test]
    fn cache_pressure_causes_evictions_and_hits() {
        // Budget fits one mid-sized variant only.
        let cfg = ServeConfig {
            cache_budget_bytes: 12_000,
            ..Default::default()
        };
        let p = plan(5, 600.0, 100_000);
        let mut pl = plane(&cfg);
        let report = run_plan(&mut pl, &p, cfg, None).unwrap();
        assert!(report.cache_hits > 0, "steady state hits");
        assert!(
            pl.cache.used_bytes() <= pl.cache.budget_bytes(),
            "budget holds"
        );
    }

    #[test]
    fn no_families_is_an_error() {
        let cfg = ServeConfig::default();
        let fleet = Fleet::generate(4, &default_mix(), 1);
        let mut empty = ServePlane::new(&cfg, fleet);
        let sim = ServeSim::new(cfg, None);
        assert!(matches!(
            sim.run(&mut empty, &[]),
            Err(ServeError::NoFamilies)
        ));
    }

    #[test]
    fn brownout_ladder_steps_down_under_pressure_and_recovers() {
        // A tiny global pending ceiling so a handful of admitted-but-
        // uncompleted requests crosses the high watermark; a long batch
        // delay keeps them pending.
        let cfg = ServeConfig {
            gateway: crate::gateway::GatewayConfig {
                max_pending_per_tenant: 64,
                max_total_pending: 8,
            },
            batch: crate::batcher::BatchPolicy {
                max_batch: 64,
                max_delay_us: 1_000_000,
            },
            ..Default::default()
        };
        let mut pl = plane(&cfg);
        pl.gateway.register_tenant(1, [1; 32]);
        pl.gateway.credit(1, 1_000, 7, 0).unwrap();
        let mut engine = ServeEngine::new(cfg, None);
        let fault_plan = crate::fault::FaultPlan {
            enabled: true,
            events: vec![],
            brownout: crate::fault::BrownoutConfig::enabled(),
        };
        engine.set_faults(NodeFaults::for_node(&fault_plan, 0, false));
        assert_eq!(engine.brownout_level(), 0);
        let req = |id: u64, at: u64| Request {
            id,
            tenant: 1,
            model: "kws".into(),
            arrival_us: at,
            deadline_us: 500_000,
            features: None,
        };
        // Pressure is sampled before each admission, so the 7th arrival
        // sees 6 pending / ceiling 8 = 0.75 — the high watermark — and
        // steps one level per arrival down to max_level.
        for i in 0..6 {
            let _ = engine.on_arrival(&mut pl, &req(i, 1_000 + i));
        }
        assert_eq!(engine.brownout_level(), 0, "below watermark, no step");
        let _ = engine.on_arrival(&mut pl, &req(6, 1_010));
        assert_eq!(engine.brownout_level(), 1, "high watermark steps down");
        let _ = engine.on_arrival(&mut pl, &req(7, 1_011));
        assert_eq!(engine.brownout_level(), 2);
        let _ = engine.on_arrival(&mut pl, &req(8, 1_012));
        assert_eq!(engine.brownout_level(), 2, "max_level caps the ladder");
        // Recovery: drain everything, then pressure 0 steps back up one
        // level per arrival (hysteresis, not a cliff).
        engine.run_timers_through(&mut pl, 2_000_000, true);
        let _ = engine.on_arrival(&mut pl, &req(11, 2_000_001));
        assert_eq!(engine.brownout_level(), 1);
        let _ = engine.on_arrival(&mut pl, &req(12, 2_000_002));
        assert_eq!(engine.brownout_level(), 0, "ladder fully recovers");
    }
}
