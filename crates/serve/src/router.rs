//! Constraint-aware fleet routing.
//!
//! The router shards batches across the device fleet: for each device it
//! keeps the `deploy::select` choice of model variant (recomputed when
//! fleet state churns — battery, connectivity), and dispatches each batch
//! to the least-loaded healthy device that can run any feasible variant
//! of the requested family. §IV fragmentation shows up directly: an M0
//! node never receives f32 work, an offline node receives nothing.

use crate::cache::ModelCache;
use std::collections::BTreeMap;
use std::sync::Arc;
use tinymlops_deploy::{select_variant, Requirements, Selection};
use tinymlops_device::Fleet;
use tinymlops_registry::ModelRecord;

/// A routing decision for one batch.
#[derive(Debug, Clone)]
pub struct Route {
    /// Chosen device id.
    pub device: u32,
    /// Index into `fleet.devices`.
    pub device_index: usize,
    /// The variant selection that device will run — shared with the plan
    /// cache, so routing a batch costs one refcount bump instead of a deep
    /// copy of the record's name/tags/metrics.
    pub selection: Arc<Selection>,
}

/// One family's cached routing plan: the selected variant per device
/// index (`None` = no feasible variant on that device).
type FamilyPlan = Vec<Option<Arc<Selection>>>;

/// Least-loaded constraint-aware router over a [`Fleet`].
pub struct Router {
    /// The device population being served against.
    pub fleet: Fleet,
    requirements: Requirements,
    /// Cached per-device selection per family; rebuilt on `refresh`.
    plans: BTreeMap<String, FamilyPlan>,
    /// Brownout ladder: per-device selections computed over a *reduced*
    /// record set (the `level` most expensive variants removed), keyed by
    /// family then `level ≥ 1`. Level 0 lives in `plans`.
    degraded: BTreeMap<String, BTreeMap<usize, FamilyPlan>>,
    /// Device busy-until times (simulated microseconds).
    free_at_us: Vec<u64>,
    /// Batches dispatched per device (for the report's balance view).
    dispatched: Vec<u64>,
}

impl Router {
    /// New router. `requirements` are the serving-wide SLO constraints
    /// fed into variant selection.
    #[must_use]
    pub fn new(fleet: Fleet, requirements: Requirements) -> Self {
        let n = fleet.devices.len();
        Router {
            fleet,
            requirements,
            plans: BTreeMap::new(),
            degraded: BTreeMap::new(),
            free_at_us: vec![0; n],
            dispatched: vec![0; n],
        }
    }

    /// The serving requirements in force.
    #[must_use]
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// Recompute per-device selections for `family` (call after
    /// `fleet.step()` or when a new family version lands). Uses the
    /// fleet-sweep primitive, so it parallelizes across devices.
    pub fn refresh_family(&mut self, family: &str, records: &[ModelRecord]) {
        let req = self.requirements.clone();
        let plan = self
            .fleet
            .par_map(|device| select_variant(records, device, &req).ok().map(Arc::new));
        self.plans.insert(family.to_string(), plan);
    }

    /// Recompute the brownout plan for `family` at degradation `level ≥ 1`
    /// from an already-reduced record set (see
    /// [`crate::fault::degrade_records`]). Level 0 is
    /// [`Router::refresh_family`].
    pub fn refresh_family_level(&mut self, family: &str, records: &[ModelRecord], level: usize) {
        if level == 0 {
            self.refresh_family(family, records);
            return;
        }
        let req = self.requirements.clone();
        let plan = self
            .fleet
            .par_map(|device| select_variant(records, device, &req).ok().map(Arc::new));
        self.degraded
            .entry(family.to_string())
            .or_default()
            .insert(level, plan);
    }

    /// Drop all cached plans (fleet state churned).
    pub fn invalidate_plans(&mut self) {
        self.plans.clear();
        self.degraded.clear();
    }

    /// Whether a plan exists for `family`.
    #[must_use]
    pub fn has_plan(&self, family: &str) -> bool {
        self.plans.contains_key(family)
    }

    /// Whether a plan exists for `family` at brownout `level`.
    #[must_use]
    pub fn has_plan_level(&self, family: &str, level: usize) -> bool {
        if level == 0 {
            return self.has_plan(family);
        }
        self.degraded
            .get(family)
            .is_some_and(|m| m.contains_key(&level))
    }

    /// Advance fleet dynamics one step and invalidate cached plans.
    pub fn step_fleet(&mut self) {
        self.fleet.step();
        self.invalidate_plans();
    }

    /// Route a batch of `family` work at `now_us`: the feasible, healthy
    /// device whose queue frees earliest (ties → lowest device id, so
    /// routing is deterministic). Returns `None` when no device fits.
    pub fn route(&self, family: &str, now_us: u64) -> Option<Route> {
        self.route_level(family, now_us, 0)
    }

    /// Affinity-aware routing: like [`Router::route`], but a device whose
    /// selected variant is *not* resident in this node's [`ModelCache`] is
    /// charged the artifact-load time it would actually cost
    /// (`size_bytes / load_bytes_per_ms`). The dispatcher then prefers a
    /// slightly-busier device that can start on a cache hit over an idle
    /// one that would trigger an eviction-reload cycle — which is exactly
    /// the LRU churn E15c exposed when device classes disagree on the
    /// variant to run under a small byte budget.
    pub fn route_affine(
        &self,
        family: &str,
        now_us: u64,
        cache: &ModelCache,
        load_bytes_per_ms: u64,
    ) -> Option<Route> {
        self.route_affine_level(family, now_us, cache, load_bytes_per_ms, 0)
    }

    /// [`Router::route`] against the brownout plan for `level` (0 = the
    /// normal plan).
    pub fn route_level(&self, family: &str, now_us: u64, level: usize) -> Option<Route> {
        let plan = self.plan_for(family, level)?;
        self.route_scored(plan, now_us, |_| 0)
    }

    /// [`Router::route_affine`] against the brownout plan for `level`
    /// (0 = the normal plan).
    pub fn route_affine_level(
        &self,
        family: &str,
        now_us: u64,
        cache: &ModelCache,
        load_bytes_per_ms: u64,
        level: usize,
    ) -> Option<Route> {
        let plan = self.plan_for(family, level)?;
        self.route_scored(plan, now_us, |selection| {
            if cache.contains(selection.record.id) {
                0
            } else {
                let ms = selection.record.size_bytes as f64 / load_bytes_per_ms.max(1) as f64;
                (ms * 1000.0) as u64
            }
        })
    }

    fn plan_for(&self, family: &str, level: usize) -> Option<&[Option<Arc<Selection>>]> {
        if level == 0 {
            return self.plans.get(family).map(Vec::as_slice);
        }
        self.degraded
            .get(family)
            .and_then(|m| m.get(&level))
            .map(Vec::as_slice)
    }

    /// Shared core of the routing policies: minimize estimated start time
    /// (`free_at` plus a policy-supplied penalty), ties → lowest index.
    fn route_scored(
        &self,
        plan: &[Option<Arc<Selection>>],
        now_us: u64,
        penalty_us: impl Fn(&Selection) -> u64,
    ) -> Option<Route> {
        let mut best: Option<(u64, usize)> = None;
        for (idx, (device, selection)) in self.fleet.devices.iter().zip(plan.iter()).enumerate() {
            let Some(selection) = selection else {
                continue;
            };
            // Health gates: reachable, and not about to die unplugged.
            if !device.online() {
                continue;
            }
            if device.state.battery.is_low() && !device.state.battery.plugged {
                continue;
            }
            let score = self.free_at_us[idx].max(now_us) + penalty_us(selection);
            if best.is_none_or(|(t, _)| score < t) {
                best = Some((score, idx));
            }
        }
        let (_, idx) = best?;
        let selection = Arc::clone(plan[idx].as_ref().expect("feasible by filter"));
        Some(Route {
            device: self.fleet.devices[idx].id,
            device_index: idx,
            selection,
        })
    }

    /// Mark a device busy until `done_us` (called by the dispatcher).
    pub fn occupy(&mut self, device_index: usize, done_us: u64) {
        self.free_at_us[device_index] = done_us;
        self.dispatched[device_index] += 1;
    }

    /// When the device's queue frees (≥ `now_us` after `max`).
    #[must_use]
    pub fn free_at(&self, device_index: usize, now_us: u64) -> u64 {
        self.free_at_us[device_index].max(now_us)
    }

    /// Count of devices that received at least one batch.
    #[must_use]
    pub fn devices_used(&self) -> usize {
        self.dispatched.iter().filter(|&&n| n > 0).count()
    }

    /// Batches dispatched per device id (deterministic order).
    #[must_use]
    pub fn dispatch_census(&self) -> Vec<(u32, u64)> {
        self.fleet
            .devices
            .iter()
            .map(|d| d.id)
            .zip(self.dispatched.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tinymlops_device::default_mix;
    use tinymlops_registry::{ModelFormat, ModelId, SemVer};

    fn family() -> Vec<ModelRecord> {
        let mut records = Vec::new();
        for (id, format, size, acc) in [
            (0u64, ModelFormat::F32, 40_000u64, 0.96),
            (1, ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
            (2, ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
        ] {
            let mut metrics = BTreeMap::new();
            metrics.insert("accuracy".into(), acc);
            records.push(ModelRecord {
                id: ModelId(id),
                name: "m".into(),
                version: SemVer::new(1, 0, 0),
                format,
                parent: None,
                artifact: [0; 32],
                size_bytes: size,
                macs: 1_000_000,
                metrics,
                tags: vec![],
                created_ms: 0,
            });
        }
        records
    }

    fn requirements() -> Requirements {
        Requirements {
            max_latency_ms: 1e9,
            max_download_ms: f64::INFINITY,
            min_accuracy: 0.0,
            max_energy_mj: f64::INFINITY,
        }
    }

    #[test]
    fn routes_prefer_idle_devices() {
        let fleet = Fleet::generate(30, &default_mix(), 3);
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        let first = router.route("m", 0).expect("some device fits");
        router.occupy(first.device_index, 10_000);
        let second = router.route("m", 0).expect("another device fits");
        assert_ne!(
            first.device_index, second.device_index,
            "busy device is deprioritized"
        );
    }

    #[test]
    fn affinity_routing_prefers_resident_variant_over_idle_miss() {
        let fleet = Fleet::generate(30, &default_mix(), 3);
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        // Dispatch once least-loaded to learn a concrete (device, variant).
        let first = router.route("m", 0).expect("some device fits");
        let resident_id = first.selection.record.id;
        let mut cache = ModelCache::new(1 << 20);
        cache.admit(first.selection.record.clone());
        // Busy the warm device by less than the smallest possible miss
        // penalty (the 2 500-byte int2 variant loads in 1 250 µs): affinity
        // routing must still land on a resident variant, while least-loaded
        // routing walks to whatever idle device is cheapest by queue alone.
        let load_bytes_per_ms = 2_000;
        router.occupy(first.device_index, 600);
        let affine = router
            .route_affine("m", 0, &cache, load_bytes_per_ms)
            .expect("route exists");
        assert_eq!(
            affine.selection.record.id, resident_id,
            "affinity routes onto the resident variant"
        );
        // Once the warm device's backlog dwarfs any artifact-load cost,
        // load wins again: affinity is a bounded preference, not pinning.
        router.occupy(first.device_index, 10_000_000);
        let rebalanced = router
            .route_affine("m", 0, &cache, load_bytes_per_ms)
            .expect("route exists");
        assert_ne!(
            rebalanced.device_index, first.device_index,
            "overloaded warm device is abandoned"
        );
    }

    #[test]
    fn unknown_family_has_no_route() {
        let fleet = Fleet::generate(10, &default_mix(), 3);
        let router = Router::new(fleet, requirements());
        assert!(router.route("ghost", 0).is_none());
    }

    #[test]
    fn offline_and_critical_devices_are_skipped() {
        let mut fleet = Fleet::generate(20, &default_mix(), 1);
        for d in &mut fleet.devices {
            d.state.network = tinymlops_device::NetworkKind::Offline;
        }
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        assert!(router.route("m", 0).is_none(), "whole fleet offline");
    }

    #[test]
    fn step_fleet_invalidates_plans() {
        let fleet = Fleet::generate(10, &default_mix(), 3);
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        assert!(router.has_plan("m"));
        router.step_fleet();
        assert!(!router.has_plan("m"));
    }

    #[test]
    fn degraded_plans_route_cheaper_variants() {
        let fleet = Fleet::generate(20, &default_mix(), 3);
        let mut router = Router::new(fleet, requirements());
        let records = family();
        router.refresh_family("m", &records);
        // Level 1 drops the fat f32 record: no level-1 route may select it.
        let reduced: Vec<ModelRecord> = records
            .iter()
            .filter(|r| r.format != ModelFormat::F32)
            .cloned()
            .collect();
        router.refresh_family_level("m", &reduced, 1);
        assert!(router.has_plan_level("m", 1));
        assert!(!router.has_plan_level("m", 2));
        let degraded = router.route_level("m", 0, 1).expect("route exists");
        assert_ne!(degraded.selection.record.format, ModelFormat::F32);
        assert!(
            degraded.selection.record.size_bytes <= 10_000,
            "level 1 serves a quantized variant"
        );
        // Level 0 is untouched by degraded refreshes.
        assert!(router.has_plan("m"));
        router.step_fleet();
        assert!(!router.has_plan_level("m", 1), "churn invalidates levels");
    }
}
