//! Constraint-aware fleet routing.
//!
//! The router shards batches across the device fleet: for each device it
//! keeps the `deploy::select` choice of model variant (recomputed when
//! fleet state churns — battery, connectivity), and dispatches each batch
//! to the least-loaded healthy device that can run any feasible variant
//! of the requested family. §IV fragmentation shows up directly: an M0
//! node never receives f32 work, an offline node receives nothing.

use std::collections::BTreeMap;
use std::sync::Arc;
use tinymlops_deploy::{select_variant, Requirements, Selection};
use tinymlops_device::Fleet;
use tinymlops_registry::ModelRecord;

/// A routing decision for one batch.
#[derive(Debug, Clone)]
pub struct Route {
    /// Chosen device id.
    pub device: u32,
    /// Index into `fleet.devices`.
    pub device_index: usize,
    /// The variant selection that device will run — shared with the plan
    /// cache, so routing a batch costs one refcount bump instead of a deep
    /// copy of the record's name/tags/metrics.
    pub selection: Arc<Selection>,
}

/// Least-loaded constraint-aware router over a [`Fleet`].
pub struct Router {
    /// The device population being served against.
    pub fleet: Fleet,
    requirements: Requirements,
    /// Cached per-device selection per family; rebuilt on `refresh`.
    plans: BTreeMap<String, Vec<Option<Arc<Selection>>>>,
    /// Device busy-until times (simulated microseconds).
    free_at_us: Vec<u64>,
    /// Batches dispatched per device (for the report's balance view).
    dispatched: Vec<u64>,
}

impl Router {
    /// New router. `requirements` are the serving-wide SLO constraints
    /// fed into variant selection.
    #[must_use]
    pub fn new(fleet: Fleet, requirements: Requirements) -> Self {
        let n = fleet.devices.len();
        Router {
            fleet,
            requirements,
            plans: BTreeMap::new(),
            free_at_us: vec![0; n],
            dispatched: vec![0; n],
        }
    }

    /// The serving requirements in force.
    #[must_use]
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// Recompute per-device selections for `family` (call after
    /// `fleet.step()` or when a new family version lands). Uses the
    /// fleet-sweep primitive, so it parallelizes across devices.
    pub fn refresh_family(&mut self, family: &str, records: &[ModelRecord]) {
        let req = self.requirements.clone();
        let plan = self
            .fleet
            .par_map(|device| select_variant(records, device, &req).ok().map(Arc::new));
        self.plans.insert(family.to_string(), plan);
    }

    /// Drop all cached plans (fleet state churned).
    pub fn invalidate_plans(&mut self) {
        self.plans.clear();
    }

    /// Whether a plan exists for `family`.
    #[must_use]
    pub fn has_plan(&self, family: &str) -> bool {
        self.plans.contains_key(family)
    }

    /// Advance fleet dynamics one step and invalidate cached plans.
    pub fn step_fleet(&mut self) {
        self.fleet.step();
        self.invalidate_plans();
    }

    /// Route a batch of `family` work at `now_us`: the feasible, healthy
    /// device whose queue frees earliest (ties → lowest device id, so
    /// routing is deterministic). Returns `None` when no device fits.
    pub fn route(&self, family: &str, now_us: u64) -> Option<Route> {
        let plan = self.plans.get(family)?;
        let mut best: Option<(u64, usize)> = None;
        for (idx, (device, selection)) in self.fleet.devices.iter().zip(plan.iter()).enumerate() {
            let Some(_selection) = selection else {
                continue;
            };
            // Health gates: reachable, and not about to die unplugged.
            if !device.online() {
                continue;
            }
            if device.state.battery.is_low() && !device.state.battery.plugged {
                continue;
            }
            let free_at = self.free_at_us[idx].max(now_us);
            if best.is_none_or(|(t, _)| free_at < t) {
                best = Some((free_at, idx));
            }
        }
        let (_, idx) = best?;
        let selection = Arc::clone(
            self.plans[family][idx]
                .as_ref()
                .expect("feasible by filter"),
        );
        Some(Route {
            device: self.fleet.devices[idx].id,
            device_index: idx,
            selection,
        })
    }

    /// Mark a device busy until `done_us` (called by the dispatcher).
    pub fn occupy(&mut self, device_index: usize, done_us: u64) {
        self.free_at_us[device_index] = done_us;
        self.dispatched[device_index] += 1;
    }

    /// When the device's queue frees (≥ `now_us` after `max`).
    #[must_use]
    pub fn free_at(&self, device_index: usize, now_us: u64) -> u64 {
        self.free_at_us[device_index].max(now_us)
    }

    /// Count of devices that received at least one batch.
    #[must_use]
    pub fn devices_used(&self) -> usize {
        self.dispatched.iter().filter(|&&n| n > 0).count()
    }

    /// Batches dispatched per device id (deterministic order).
    #[must_use]
    pub fn dispatch_census(&self) -> Vec<(u32, u64)> {
        self.fleet
            .devices
            .iter()
            .map(|d| d.id)
            .zip(self.dispatched.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tinymlops_device::default_mix;
    use tinymlops_registry::{ModelFormat, ModelId, SemVer};

    fn family() -> Vec<ModelRecord> {
        let mut records = Vec::new();
        for (id, format, size, acc) in [
            (0u64, ModelFormat::F32, 40_000u64, 0.96),
            (1, ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
            (2, ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
        ] {
            let mut metrics = BTreeMap::new();
            metrics.insert("accuracy".into(), acc);
            records.push(ModelRecord {
                id: ModelId(id),
                name: "m".into(),
                version: SemVer::new(1, 0, 0),
                format,
                parent: None,
                artifact: [0; 32],
                size_bytes: size,
                macs: 1_000_000,
                metrics,
                tags: vec![],
                created_ms: 0,
            });
        }
        records
    }

    fn requirements() -> Requirements {
        Requirements {
            max_latency_ms: 1e9,
            max_download_ms: f64::INFINITY,
            min_accuracy: 0.0,
            max_energy_mj: f64::INFINITY,
        }
    }

    #[test]
    fn routes_prefer_idle_devices() {
        let fleet = Fleet::generate(30, &default_mix(), 3);
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        let first = router.route("m", 0).expect("some device fits");
        router.occupy(first.device_index, 10_000);
        let second = router.route("m", 0).expect("another device fits");
        assert_ne!(
            first.device_index, second.device_index,
            "busy device is deprioritized"
        );
    }

    #[test]
    fn unknown_family_has_no_route() {
        let fleet = Fleet::generate(10, &default_mix(), 3);
        let router = Router::new(fleet, requirements());
        assert!(router.route("ghost", 0).is_none());
    }

    #[test]
    fn offline_and_critical_devices_are_skipped() {
        let mut fleet = Fleet::generate(20, &default_mix(), 1);
        for d in &mut fleet.devices {
            d.state.network = tinymlops_device::NetworkKind::Offline;
        }
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        assert!(router.route("m", 0).is_none(), "whole fleet offline");
    }

    #[test]
    fn step_fleet_invalidates_plans() {
        let fleet = Fleet::generate(10, &default_mix(), 3);
        let mut router = Router::new(fleet, requirements());
        router.refresh_family("m", &family());
        assert!(router.has_plan("m"));
        router.step_fleet();
        assert!(!router.has_plan("m"));
    }
}
