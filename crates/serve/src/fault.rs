//! Deterministic fault injection and the self-healing vocabulary.
//!
//! A [`FaultPlan`] schedules node failures on *logical* timestamps — the
//! same time base both serving backends already run on — so an
//! `ExecMode::Replay` fault run is bit-identical between the simulator
//! and the threaded backend, exactly like PR 6's observer. The plan is
//! off by default and the engine carries no fault state when it is
//! disabled, so a disabled plan is byte-identical to no plan at all.
//!
//! Four fault kinds cover the failure modes §III/§V of the paper ascribe
//! to edge fleets:
//!
//! * [`FaultKind::Crash`] — the node dies at time T. Queued and in-flight
//!   work is resolved as refunded [`ShedReason::Failover`] sheds, every
//!   account is exported as a `FailoverPackage` (the quota census row +
//!   sealed audit chain), and surviving nodes adopt the accounts under
//!   bounded load (`plan_evacuation`; both are crate-internal).
//! * [`FaultKind::Stall`] — a transient freeze: every engine timer due
//!   inside the window slides to the window's end (GC pause, radio
//!   dropout).
//! * [`FaultKind::SlowNode`] — a degraded node: device service times are
//!   multiplied from T onward (thermal throttling, brownout).
//! * [`FaultKind::DispatchPanic`] — a genuine `panic!` in the node worker
//!   at its next dispatch after T. Only armed on the threaded backend
//!   (a panic in the single-threaded simulator would kill the whole
//!   process); the live feeder survives it and reports a structured
//!   `NodeFailure` instead of poisoning the run.
//!
//! The module also carries the two *recovery* policies the fault plane
//! exercises: a deadline-aware per-tenant retry budget with jittered
//! exponential backoff ([`RetryPolicy`]), and the brownout degradation
//! ladder ([`BrownoutConfig`]) that steps overloaded tenants down to
//! cheaper quantized variants before shedding them.

use crate::request::{Request, ShedReason, TenantId};
use crate::shard::{NodeId, ShardRouter, TrafficLedger};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use tinymlops_meter::QuotaManager;
use tinymlops_registry::ModelRecord;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The node dies at `at_us`: in-flight and queued work is resolved as
    /// refunded failover sheds and every tenant account is evacuated to a
    /// surviving node.
    Crash,
    /// The node freezes until `until_us`: timers due inside
    /// `[at_us, until_us)` fire at `until_us` instead.
    Stall {
        /// End of the stall window (logical µs).
        until_us: u64,
    },
    /// Device service times on the node are multiplied by `multiplier`
    /// from `at_us` onward.
    SlowNode {
        /// Service-time multiplier (≥ 1.0 slows the node down).
        multiplier: f64,
    },
    /// The node worker panics at its first dispatch at or after `at_us`
    /// (threaded backend only — the simulator ignores this kind).
    DispatchPanic,
}

/// One fault bound to a node and a logical trigger time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Target node.
    pub node: NodeId,
    /// Logical trigger time in microseconds.
    pub at_us: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Brownout degradation ladder configuration.
///
/// The signal is gateway pressure: `total_pending / max_total_pending`.
/// When it crosses `high_watermark` the node steps one level down the
/// ladder — the router replans the family over a record set with the
/// level's most expensive variants removed (f32 → int8 → int4/int2), so
/// batches run faster, queues drain, and fewer requests die at the
/// deadline. When pressure falls below `low_watermark` the node steps
/// back up. The watermark gap is the hysteresis that keeps the ladder
/// from oscillating. Disabled by default; level decisions read only
/// engine-local state, so replay parity holds with brownout on.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// Master switch; the ladder is inert when false.
    pub enabled: bool,
    /// Pending fraction at which to step down (degrade).
    pub high_watermark: f64,
    /// Pending fraction at which to step back up (recover).
    pub low_watermark: f64,
    /// Deepest degradation level (each level removes one more of the
    /// family's most expensive variants, always keeping at least one).
    pub max_level: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enabled: false,
            high_watermark: 0.75,
            low_watermark: 0.25,
            max_level: 2,
        }
    }
}

impl BrownoutConfig {
    /// An enabled ladder with default watermarks.
    #[must_use]
    pub fn enabled() -> Self {
        BrownoutConfig {
            enabled: true,
            ..BrownoutConfig::default()
        }
    }
}

/// A whole run's fault schedule. Disabled by default: a default plan adds
/// no faults and a fabric run under it is byte-identical to one with no
/// plan at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Scheduled faults, in schedule order.
    pub events: Vec<FaultEvent>,
    /// Brownout degradation ladder (applies fleet-wide).
    pub brownout: BrownoutConfig,
}

impl FaultPlan {
    /// An enabled plan carrying `events` (brownout stays off).
    #[must_use]
    pub fn with_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            enabled: true,
            events,
            brownout: BrownoutConfig::default(),
        }
    }

    /// An enabled, empty plan (used to prove the armed-but-idle plane
    /// changes nothing).
    #[must_use]
    pub fn armed() -> Self {
        FaultPlan::with_events(Vec::new())
    }

    /// Crash events in schedule order (the drivers execute these).
    pub(crate) fn crashes(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            FaultKind::Crash => Some((e.node, e.at_us)),
            _ => None,
        })
    }
}

/// One node's view of the plan: the engine-side faults (stall windows,
/// slowdown, dispatch panic) plus the fleet-wide brownout ladder. Crash
/// events are executed by the *drivers* (sim loop / live feeder), not the
/// engine, so they are not carried here.
#[derive(Debug, Clone)]
pub(crate) struct NodeFaults {
    /// Stall windows `[at, until)`, in schedule order.
    stalls: Vec<(u64, u64)>,
    /// Service-time multipliers active from their start time onward.
    slowdowns: Vec<(u64, f64)>,
    /// Earliest pending dispatch-panic trigger (threaded backend only).
    panic_at: Option<u64>,
    /// Fleet-wide brownout ladder.
    pub(crate) brownout: BrownoutConfig,
}

impl NodeFaults {
    /// Build `node`'s view of `plan`. Returns `None` when the plan is
    /// disabled — the engine then carries no fault state at all.
    /// `allow_panics` is set only by the threaded backend.
    pub(crate) fn for_node(plan: &FaultPlan, node: NodeId, allow_panics: bool) -> Option<Self> {
        if !plan.enabled {
            return None;
        }
        let mut faults = NodeFaults {
            stalls: Vec::new(),
            slowdowns: Vec::new(),
            panic_at: None,
            brownout: plan.brownout.clone(),
        };
        for event in plan.events.iter().filter(|e| e.node == node) {
            match event.kind {
                FaultKind::Stall { until_us } if until_us > event.at_us => {
                    faults.stalls.push((event.at_us, until_us));
                }
                FaultKind::Stall { .. } | FaultKind::Crash => {}
                FaultKind::SlowNode { multiplier } => {
                    faults.slowdowns.push((event.at_us, multiplier));
                }
                FaultKind::DispatchPanic => {
                    if allow_panics {
                        let at = faults.panic_at.get_or_insert(event.at_us);
                        *at = (*at).min(event.at_us);
                    }
                }
            }
        }
        Some(faults)
    }

    /// Slide a timer due inside a stall window to the window's end.
    /// Idempotent: a window end maps to itself.
    pub(crate) fn stall_adjusted(&self, due_us: u64) -> u64 {
        let mut t = due_us;
        for &(at, until) in &self.stalls {
            if t >= at && t < until {
                t = until;
            }
        }
        t
    }

    /// The service-time multiplier in force at `now_us` (product of all
    /// active slowdowns; 1.0 when none).
    pub(crate) fn slow_multiplier(&self, now_us: u64) -> f64 {
        self.slowdowns
            .iter()
            .filter(|(at, _)| now_us >= *at)
            .map(|(_, m)| *m)
            .product()
    }

    /// Consume a due dispatch panic: true exactly once, at the first
    /// dispatch at or after the trigger.
    pub(crate) fn take_panic(&mut self, now_us: u64) -> bool {
        if self.panic_at.is_some_and(|at| now_us >= at) {
            self.panic_at = None;
            return true;
        }
        false
    }
}

/// Everything the dying node exports per tenant: the sealed quota
/// partition (balance + audit chain) and the census counters the
/// surviving node needs to *reconstruct* the account. Pending work never
/// travels — it was already resolved as refunded failover sheds on the
/// source, so the rebuilt account starts with `pending == 0` and the
/// fleet-wide conservation law (`unrefunded_sheds() == 0`, census exact)
/// holds across the failover.
#[derive(Debug)]
pub(crate) struct FailoverPackage {
    /// The evacuated tenant.
    pub(crate) tenant: TenantId,
    /// Quota partition: balance plus the sealed audit chain.
    pub(crate) quota: QuotaManager,
    /// Lifetime admitted count on the dead node.
    pub(crate) admitted: u64,
    /// Lifetime shed count on the dead node.
    pub(crate) shed: u64,
    /// Lifetime refunded count on the dead node.
    pub(crate) refunded: u64,
    /// The node that died.
    pub(crate) from: NodeId,
    /// Logical time of death.
    pub(crate) at_us: u64,
}

/// Deterministically choose a surviving home for every tenant of a dead
/// node: bounded-load rendezvous placement over the remaining nodes,
/// seeded with the survivors' current loads so the evacuees spread
/// instead of piling onto one node. Loads and the population total are
/// in `traffic` units ([`crate::TrafficLedger`]) — an empty ledger
/// degrades to the old tenant-count measure exactly. `shard` must
/// already have the dead node removed (which also dropped its pins). A
/// pure function of (topology, assignments, ledger, load factor), so
/// the sim loop and the live feeder compute identical placements — the
/// parity of crash recovery rests on this.
pub(crate) fn plan_evacuation(
    shard: &ShardRouter,
    assignments: &BTreeMap<TenantId, (NodeId, String)>,
    traffic: &TrafficLedger,
    dead: NodeId,
    load_factor: f64,
) -> Vec<(TenantId, String, NodeId)> {
    let mut loads: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (tenant, (node, _)) in assignments {
        if *node != dead {
            *loads.entry(*node).or_default() += traffic.weight(*tenant) as usize;
        }
    }
    let total = traffic.total(assignments.keys().copied()) as usize;
    let mut moves = Vec::new();
    for (tenant, (node, family)) in assignments {
        if *node != dead {
            continue;
        }
        let home = shard.assign_bounded(*tenant, family, total, load_factor, |id| {
            loads.get(&id).copied().unwrap_or(0)
        });
        *loads.entry(home).or_default() += traffic.weight(*tenant) as usize;
        moves.push((*tenant, family.clone(), home));
    }
    moves
}

/// The brownout ladder's record set at `level`: the `level` largest
/// variants removed (ties broken by id), always keeping at least one.
/// Level 0 is the full family.
#[must_use]
pub fn degrade_records(records: &[ModelRecord], level: usize) -> Vec<ModelRecord> {
    if level == 0 || records.len() <= 1 {
        return records.to_vec();
    }
    let mut sorted: Vec<&ModelRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (std::cmp::Reverse(r.size_bytes), r.id));
    let drop = level.min(records.len() - 1);
    let dropped: Vec<_> = sorted[..drop].iter().map(|r| r.id).collect();
    records
        .iter()
        .filter(|r| !dropped.contains(&r.id))
        .cloned()
        .collect()
}

/// Whether a shed is worth retrying: transient pressure is, a hard quota
/// denial or a missed deadline is not.
#[must_use]
pub fn retryable(reason: ShedReason) -> bool {
    matches!(
        reason,
        ShedReason::Overload | ShedReason::TenantBackpressure
    )
}

/// Retry policy: per-tenant token-bucket budgets plus jittered
/// exponential backoff, deadline-aware — a retry that could not land
/// before the request's absolute deadline is never scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retry attempts per request (0 disables retries).
    pub max_attempts: u32,
    /// Token-bucket capacity per tenant (1 token per retry).
    pub bucket_capacity: f64,
    /// Bucket refill rate, tokens per second — the steady-state retry
    /// budget that keeps a retry storm bounded.
    pub refill_per_sec: f64,
    /// First-attempt backoff, microseconds.
    pub base_backoff_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_us: u64,
    /// Uniform jitter fraction in `[0, 1)`: the delay is scaled by a
    /// factor drawn from `[1 − jitter, 1 + jitter)` so synchronized sheds
    /// do not retry in lockstep.
    pub jitter: f64,
    /// Seed for the jitter stream (retries stay a pure function of the
    /// run inputs).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            bucket_capacity: 16.0,
            refill_per_sec: 8.0,
            base_backoff_us: 2_000,
            max_backoff_us: 64_000,
            jitter: 0.5,
            seed: 0x5eed_fa11,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay for retry `attempt` (1-based): exponential in
    /// the attempt, capped, jittered.
    pub fn backoff_us(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us.max(1));
        let jitter = self.jitter.clamp(0.0, 0.999);
        let factor = if jitter > 0.0 {
            1.0 + rng.gen_range(-jitter..jitter)
        } else {
            1.0
        };
        ((exp as f64 * factor) as u64).max(1)
    }
}

/// Per-tenant retry token bucket.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    capacity: f64,
    tokens: f64,
    refill_per_us: f64,
    last_us: u64,
}

impl RetryBudget {
    /// A full bucket under `policy`, opened at `now_us`.
    #[must_use]
    pub fn new(policy: &RetryPolicy, now_us: u64) -> Self {
        RetryBudget {
            capacity: policy.bucket_capacity.max(0.0),
            tokens: policy.bucket_capacity.max(0.0),
            refill_per_us: policy.refill_per_sec.max(0.0) / 1e6,
            last_us: now_us,
        }
    }

    /// Take one token at `now_us`; false when the bucket is dry.
    pub fn try_take(&mut self, now_us: u64) -> bool {
        let elapsed = now_us.saturating_sub(self.last_us);
        self.tokens = (self.tokens + elapsed as f64 * self.refill_per_us).min(self.capacity);
        self.last_us = self.last_us.max(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Why a retry was (or was not) scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry scheduled for the given logical time.
    At(u64),
    /// The request exhausted its per-request attempt allowance.
    AttemptsExhausted,
    /// The backoff delay would land past the request's absolute deadline
    /// — retries never outlive the deadline.
    DeadlineExceeded,
    /// The tenant's token bucket is dry (retry-storm limiter).
    BudgetExhausted,
}

/// Decide whether (and when) to retry `request` after its `attempt`-th
/// failure at `now_us`. Checks are ordered so doomed retries never burn
/// budget: attempts, then deadline, then the token bucket.
pub fn schedule_retry(
    policy: &RetryPolicy,
    budget: &mut RetryBudget,
    request: &Request,
    attempt: u32,
    now_us: u64,
    rng: &mut StdRng,
) -> RetryDecision {
    if attempt > policy.max_attempts {
        return RetryDecision::AttemptsExhausted;
    }
    let at = now_us.saturating_add(policy.backoff_us(attempt, rng));
    if at >= request.deadline_abs_us() {
        return RetryDecision::DeadlineExceeded;
    }
    if !budget.try_take(now_us) {
        return RetryDecision::BudgetExhausted;
    }
    RetryDecision::At(at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tinymlops_registry::{ModelFormat, ModelId, SemVer};

    fn record(id: u64, size: u64) -> ModelRecord {
        ModelRecord {
            id: ModelId(id),
            name: "m".into(),
            version: SemVer::new(1, 0, 0),
            format: ModelFormat::F32,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 1,
            metrics: std::collections::BTreeMap::new(),
            tags: vec![],
            created_ms: 0,
        }
    }

    fn request(arrival_us: u64, deadline_us: u64) -> Request {
        Request {
            id: 0,
            tenant: 1,
            model: "m".into(),
            arrival_us,
            deadline_us,
            features: None,
        }
    }

    #[test]
    fn default_plan_is_disabled() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled);
        assert!(NodeFaults::for_node(&plan, 0, true).is_none());
        assert!(FaultPlan::armed().enabled);
    }

    #[test]
    fn node_view_filters_by_node() {
        let plan = FaultPlan::with_events(vec![
            FaultEvent {
                node: 0,
                at_us: 100,
                kind: FaultKind::Stall { until_us: 200 },
            },
            FaultEvent {
                node: 1,
                at_us: 50,
                kind: FaultKind::SlowNode { multiplier: 3.0 },
            },
        ]);
        let n0 = NodeFaults::for_node(&plan, 0, true).unwrap();
        assert_eq!(n0.stall_adjusted(150), 200, "inside the window slides");
        assert_eq!(n0.stall_adjusted(200), 200, "window end is idempotent");
        assert_eq!(n0.stall_adjusted(99), 99, "before the window is free");
        assert_eq!(n0.slow_multiplier(1000), 1.0, "slowdown is node 1's");
        let n1 = NodeFaults::for_node(&plan, 1, true).unwrap();
        assert_eq!(n1.slow_multiplier(49), 1.0);
        assert_eq!(n1.slow_multiplier(50), 3.0);
        assert_eq!(n1.stall_adjusted(150), 150);
    }

    #[test]
    fn dispatch_panic_fires_once_and_only_when_allowed() {
        let plan = FaultPlan::with_events(vec![FaultEvent {
            node: 0,
            at_us: 500,
            kind: FaultKind::DispatchPanic,
        }]);
        let mut armed = NodeFaults::for_node(&plan, 0, true).unwrap();
        assert!(!armed.take_panic(499), "not due yet");
        assert!(armed.take_panic(500), "fires at the trigger");
        assert!(!armed.take_panic(10_000), "fires once");
        let mut sim_side = NodeFaults::for_node(&plan, 0, false).unwrap();
        assert!(
            !sim_side.take_panic(10_000),
            "the simulator never arms panics"
        );
    }

    #[test]
    fn crashes_iterate_in_schedule_order() {
        let plan = FaultPlan::with_events(vec![
            FaultEvent {
                node: 2,
                at_us: 900,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                node: 0,
                at_us: 400,
                kind: FaultKind::DispatchPanic,
            },
            FaultEvent {
                node: 1,
                at_us: 100,
                kind: FaultKind::Crash,
            },
        ]);
        let crashes: Vec<_> = plan.crashes().collect();
        assert_eq!(crashes, vec![(2, 900), (1, 100)]);
    }

    #[test]
    fn degrade_drops_largest_first_and_keeps_one() {
        let records = vec![record(0, 40_000), record(1, 10_000), record(2, 2_500)];
        let l0 = degrade_records(&records, 0);
        assert_eq!(l0.len(), 3);
        let l1 = degrade_records(&records, 1);
        assert_eq!(
            l1.iter().map(|r| r.id.0).collect::<Vec<_>>(),
            vec![1, 2],
            "level 1 drops the fat f32"
        );
        let l2 = degrade_records(&records, 2);
        assert_eq!(l2.iter().map(|r| r.id.0).collect::<Vec<_>>(), vec![2]);
        let l9 = degrade_records(&records, 9);
        assert_eq!(l9.len(), 1, "always keeps one variant");
    }

    #[test]
    fn retryable_is_transient_only() {
        assert!(retryable(ShedReason::Overload));
        assert!(retryable(ShedReason::TenantBackpressure));
        assert!(!retryable(ShedReason::QuotaExhausted));
        assert!(!retryable(ShedReason::DeadlineExpired));
        assert!(!retryable(ShedReason::NoRoute));
        assert!(!retryable(ShedReason::Failover));
    }

    #[test]
    fn backoff_grows_exponentially_within_cap() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let b1 = policy.backoff_us(1, &mut rng);
        let b2 = policy.backoff_us(2, &mut rng);
        let b3 = policy.backoff_us(3, &mut rng);
        assert_eq!(b1, policy.base_backoff_us);
        assert_eq!(b2, 2 * b1);
        assert_eq!(b3, 4 * b1);
        let b99 = policy.backoff_us(99, &mut rng);
        assert_eq!(b99, policy.max_backoff_us, "capped");
    }

    #[test]
    fn jittered_backoff_stays_bracketed_and_deterministic() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 1..=6 {
            let x = policy.backoff_us(attempt, &mut a);
            let y = policy.backoff_us(attempt, &mut b);
            assert_eq!(x, y, "same seed, same jitter");
            let base = policy
                .base_backoff_us
                .saturating_mul(1 << (attempt - 1))
                .min(policy.max_backoff_us) as f64;
            assert!((x as f64) >= base * (1.0 - policy.jitter) - 1.0);
            assert!((x as f64) <= base * (1.0 + policy.jitter) + 1.0);
        }
    }

    #[test]
    fn budget_refills_over_time() {
        let policy = RetryPolicy {
            bucket_capacity: 2.0,
            refill_per_sec: 1.0,
            ..RetryPolicy::default()
        };
        let mut bucket = RetryBudget::new(&policy, 0);
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(!bucket.try_take(0), "bucket dry");
        assert!(!bucket.try_take(500_000), "half a token is not one");
        assert!(bucket.try_take(1_600_000), "refilled after ~1.1 s more");
    }

    #[test]
    fn retries_never_outlive_the_deadline() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut bucket = RetryBudget::new(&policy, 0);
        let mut rng = StdRng::seed_from_u64(7);
        // Deadline at 1000 + 3000; first backoff is 2000 → retry at 3000
        // fits, but a request shed at 2500 cannot fit another.
        let r = request(1_000, 3_000);
        assert_eq!(
            schedule_retry(&policy, &mut bucket, &r, 1, 1_000, &mut rng),
            RetryDecision::At(3_000)
        );
        assert_eq!(
            schedule_retry(&policy, &mut bucket, &r, 1, 2_500, &mut rng),
            RetryDecision::DeadlineExceeded
        );
        assert_eq!(
            schedule_retry(&policy, &mut bucket, &r, 9, 1_000, &mut rng),
            RetryDecision::AttemptsExhausted
        );
    }

    #[test]
    fn dry_budget_blocks_retries_without_burning_attempts() {
        let policy = RetryPolicy {
            jitter: 0.0,
            bucket_capacity: 1.0,
            refill_per_sec: 0.0,
            ..RetryPolicy::default()
        };
        let mut bucket = RetryBudget::new(&policy, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let r = request(0, 1_000_000);
        assert!(matches!(
            schedule_retry(&policy, &mut bucket, &r, 1, 0, &mut rng),
            RetryDecision::At(_)
        ));
        assert_eq!(
            schedule_retry(&policy, &mut bucket, &r, 1, 0, &mut rng),
            RetryDecision::BudgetExhausted
        );
        // A doomed retry (past deadline) must not have taken a token.
        let mut fresh = RetryBudget::new(&policy, 0);
        let doomed = request(0, 1);
        let _ = schedule_retry(&policy, &mut fresh, &doomed, 1, 0, &mut rng);
        assert!((fresh.tokens() - 1.0).abs() < 1e-9, "deadline check first");
    }
}
