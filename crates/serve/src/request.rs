//! Request/response vocabulary of the serving plane.

/// Tenant identifier (one paying customer / API key).
pub type TenantId = u32;

/// Globally unique request identifier (assigned by the load generator or
/// gateway, monotone per run).
pub type RequestId = u64;

/// One inference request entering the gateway.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id (monotone in arrival order).
    pub id: RequestId,
    /// Issuing tenant.
    pub tenant: TenantId,
    /// Model family requested (registry name, e.g. `digits`).
    pub model: String,
    /// Arrival time, simulated microseconds.
    pub arrival_us: u64,
    /// Latency SLO: the request is worthless after
    /// `arrival_us + deadline_us`.
    pub deadline_us: u64,
    /// Optional input features (present when the plane executes real
    /// `nn`/`quant` inference rather than the virtual cost model).
    pub features: Option<Vec<f32>>,
}

impl Request {
    /// Absolute deadline in simulated microseconds.
    #[must_use]
    pub fn deadline_abs_us(&self) -> u64 {
        self.arrival_us.saturating_add(self.deadline_us)
    }
}

/// Why the plane refused or dropped a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedReason {
    /// Tenant has no prepaid quota left (§III-C denial).
    QuotaExhausted,
    /// Tenant exceeded its pending-request allowance.
    TenantBackpressure,
    /// The plane as a whole is saturated (global load shedding).
    Overload,
    /// No healthy device could run any feasible variant.
    NoRoute,
    /// The request missed its latency SLO before dispatch.
    DeadlineExpired,
    /// The request's home node died with the request queued or in flight;
    /// the work was resolved as a refunded shed during evacuation so the
    /// tenant is never billed for it.
    Failover,
}

impl ShedReason {
    /// Stable label for telemetry counters and report tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QuotaExhausted => "quota",
            ShedReason::TenantBackpressure => "tenant-backpressure",
            ShedReason::Overload => "overload",
            ShedReason::NoRoute => "no-route",
            ShedReason::DeadlineExpired => "deadline",
            ShedReason::Failover => "failover",
        }
    }

    /// Dense index of this reason within [`ShedReason::all`] — lets hot
    /// paths keep per-reason state in a fixed array instead of formatting
    /// metric names per event.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ShedReason::QuotaExhausted => 0,
            ShedReason::TenantBackpressure => 1,
            ShedReason::Overload => 2,
            ShedReason::NoRoute => 3,
            ShedReason::DeadlineExpired => 4,
            ShedReason::Failover => 5,
        }
    }

    /// All reasons, for report tables.
    #[must_use]
    pub fn all() -> [ShedReason; 6] {
        [
            ShedReason::QuotaExhausted,
            ShedReason::TenantBackpressure,
            ShedReason::Overload,
            ShedReason::NoRoute,
            ShedReason::DeadlineExpired,
            ShedReason::Failover,
        ]
    }
}

/// Terminal outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disposition {
    /// Served: end-to-end latency in microseconds, on this device.
    Served {
        /// Queueing + batching + execution latency.
        latency_us: u64,
        /// Serving device id.
        device: u32,
    },
    /// Dropped for the given reason.
    Shed(ShedReason),
}

impl Disposition {
    /// `true` for a served outcome.
    #[must_use]
    pub fn is_served(&self) -> bool {
        matches!(self, Disposition::Served { .. })
    }
}

/// One resolved request as observed by the engine's completion tap —
/// the response leg of the closed loop. The serving plane resolves a
/// request exactly once (completion, admission shed, downstream shed,
/// or crash failover), so a closed-loop driver sees exactly one
/// `Completion` per delivered arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The resolved request.
    pub id: RequestId,
    /// Its issuing tenant.
    pub tenant: TenantId,
    /// How it ended.
    pub disposition: Disposition,
    /// Resolution timestamp, microseconds (logical in replay, real
    /// elapsed in wall mode).
    pub at_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_saturates() {
        let r = Request {
            id: 0,
            tenant: 1,
            model: "m".into(),
            arrival_us: u64::MAX - 5,
            deadline_us: 100,
            features: None,
        };
        assert_eq!(r.deadline_abs_us(), u64::MAX);
    }

    #[test]
    fn shed_reason_index_matches_all_order() {
        for (i, r) in ShedReason::all().iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn shed_reason_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            ShedReason::all().iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), ShedReason::all().len());
    }
}
