//! Byte-budgeted LRU cache of model variants.
//!
//! §III-A keeps every optimized instance of every model in the registry;
//! a serving node cannot hold them all. The cache keeps hot variants
//! resident under a strict byte budget with exact LRU eviction, so the
//! router pays the (simulated) artifact-load cost only on misses.

use std::collections::BTreeMap;
use std::sync::Arc;
use tinymlops_registry::{ModelId, ModelRecord};

/// Outcome of a cache admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Entry resident (evicted `usize` colder entries to make room).
    Inserted(usize),
    /// Already resident; recency refreshed.
    AlreadyResident,
    /// Larger than the whole budget; served uncached.
    TooLarge,
}

/// Byte-budgeted exact-LRU cache of [`ModelRecord`] variants.
#[derive(Debug)]
pub struct ModelCache {
    budget_bytes: u64,
    used_bytes: u64,
    /// Recency list, coldest first. Deterministic and small (tens of
    /// variants), so O(n) maintenance beats pointer-chasing here.
    lru: Vec<ModelId>,
    /// Entries are shared, not owned: admission takes an `Arc` so the hot
    /// path never deep-copies a record's name/tags/metrics.
    entries: BTreeMap<ModelId, Arc<ModelRecord>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelCache {
    /// New cache with the given byte budget.
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        ModelCache {
            budget_bytes,
            used_bytes: 0,
            lru: Vec::new(),
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently resident. Invariant: `used_bytes() <= budget_bytes()`.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate over all lookups (0 when never queried).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resident ids, coldest → hottest (exposed so tests and debug tables
    /// can assert exact LRU order). A borrow — callers that need ownership
    /// copy explicitly instead of every caller paying for a clone.
    #[must_use]
    pub fn resident_lru_order(&self) -> &[ModelId] {
        &self.lru
    }

    /// Whether `id` is resident (does not touch recency).
    #[must_use]
    pub fn contains(&self, id: ModelId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Look up a resident variant, refreshing its recency and counting a
    /// hit or miss.
    pub fn get(&mut self, id: ModelId) -> Option<&Arc<ModelRecord>> {
        if self.entries.contains_key(&id) {
            self.hits += 1;
            self.touch(id);
            self.entries.get(&id)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Admit a record, evicting coldest entries until it fits. A record
    /// larger than the whole budget is never admitted. Accepts anything
    /// convertible to `Arc<ModelRecord>`, so callers already holding a
    /// shared record admit it without a deep copy.
    pub fn admit(&mut self, record: impl Into<Arc<ModelRecord>>) -> Admission {
        let record: Arc<ModelRecord> = record.into();
        let id = record.id;
        if self.entries.contains_key(&id) {
            self.touch(id);
            return Admission::AlreadyResident;
        }
        let size = record.size_bytes;
        if size > self.budget_bytes {
            return Admission::TooLarge;
        }
        let mut evicted = 0;
        while self.used_bytes + size > self.budget_bytes {
            let coldest = self.lru.remove(0);
            let gone = self
                .entries
                .remove(&coldest)
                .expect("lru list and entry map stay in sync");
            self.used_bytes -= gone.size_bytes;
            self.evictions += 1;
            evicted += 1;
        }
        self.used_bytes += size;
        self.lru.push(id);
        self.entries.insert(id, record);
        Admission::Inserted(evicted)
    }

    fn touch(&mut self, id: ModelId) {
        if let Some(pos) = self.lru.iter().position(|x| *x == id) {
            self.lru.remove(pos);
            self.lru.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tinymlops_registry::{ModelFormat, SemVer};

    fn record(id: u64, size: u64) -> ModelRecord {
        ModelRecord {
            id: ModelId(id),
            name: "m".into(),
            version: SemVer::new(1, 0, 0),
            format: ModelFormat::F32,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 1000,
            metrics: BTreeMap::new(),
            tags: vec![],
            created_ms: 0,
        }
    }

    #[test]
    fn evicts_coldest_first() {
        let mut c = ModelCache::new(100);
        c.admit(record(1, 40));
        c.admit(record(2, 40));
        assert!(c.get(ModelId(1)).is_some(), "1 becomes hottest");
        assert_eq!(c.admit(record(3, 40)), Admission::Inserted(1));
        assert!(!c.contains(ModelId(2)), "2 was coldest");
        assert!(c.contains(ModelId(1)));
        assert_eq!(c.used_bytes(), 80);
    }

    #[test]
    fn oversized_record_is_bypassed() {
        let mut c = ModelCache::new(100);
        assert_eq!(c.admit(record(1, 101)), Admission::TooLarge);
        assert_eq!(c.used_bytes(), 0);
        assert!(!c.contains(ModelId(1)));
    }

    #[test]
    fn readmission_refreshes_recency() {
        let mut c = ModelCache::new(100);
        c.admit(record(1, 50));
        c.admit(record(2, 50));
        assert_eq!(c.admit(record(1, 50)), Admission::AlreadyResident);
        // 2 is now coldest; admitting 3 evicts it.
        c.admit(record(3, 50));
        assert!(c.contains(ModelId(1)));
        assert!(!c.contains(ModelId(2)));
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut c = ModelCache::new(100);
        c.admit(record(1, 10));
        assert!(c.get(ModelId(1)).is_some());
        assert!(c.get(ModelId(9)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
