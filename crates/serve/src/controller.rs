//! Autonomous fleet controller: the closed loop over the actuators.
//!
//! Everything a self-managing fleet needs already exists as an
//! operator-triggered primitive — live migration
//! ([`crate::ServeFabric::run_migrating`]), node join/drain (e18),
//! brownout degradation ([`crate::fault::degrade_records`]) — and the
//! observability plane computes every signal (queue depths, shed rates,
//! p99, per-tenant served work). The [`FleetController`] closes the
//! loop: at a fixed logical control interval both backends sample every
//! live node ([`ControlSample`], the control-plane analogue of
//! `observe::WindowSample`), fold per-tenant served work into the
//! [`TrafficLedger`], and ask the controller for actions. The
//! controller emits the *existing* primitives only:
//!
//! * **Hot-tenant rebalance** — a [`MigrationSpec`]-shaped move of the
//!   busiest tenant off an overloaded node onto the least-loaded peer.
//! * **Elastic scale-up/down** — node join from a standby pool when
//!   overload persists, whole-node drain + decommission back to standby
//!   when the fleet idles.
//! * **Brownout nudges** — a per-node floor on the degradation ladder
//!   while a node is hot, lifted when it cools.
//!
//! **Determinism is the design constraint.** `tick` is a pure function
//! of (logical time, node samples, topology view, ledger, controller
//! state): no wall clock, no randomness, integer/stable-sort arithmetic
//! only. The sim loop and the live feeder call it at the same logical
//! instants with bit-identical samples under [`crate::ExecMode::Replay`],
//! so controller decisions — and therefore reports and migration
//! records — are bit-identical across backends. A disabled controller
//! installs nothing (no tap, no ticks), keeping runs byte-identical to
//! a build without this module.
//!
//! **Hysteresis + cooldown so it never oscillates.** Scaling requires
//! `hysteresis_ticks` *consecutive* hot (or cool) intervals and a
//! fleet-wide `scale_cooldown_us` between topology changes; a migrated
//! tenant is untouchable for `tenant_cooldown_us` (no ping-pong); and
//! the hot/cool watermarks are separated so a node flapping around one
//! threshold triggers nothing.

use crate::fabric::MigrationSpec;
use crate::request::TenantId;
use crate::shard::{NodeId, ShardNode, TrafficLedger};
use std::collections::BTreeMap;

/// Fleet-controller policy. Default is **disabled** (a fabric without a
/// controller behaves byte-identically to one built before the
/// controller existed). [`ControllerConfig::enabled`] arms the loop
/// with the default policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Master switch: when false, no tap is installed, no ticks fire.
    pub enabled: bool,
    /// Control interval on the logical clock (µs between ticks).
    pub interval_us: u64,
    /// A node whose gateway queue occupancy (`total_pending /
    /// max_total_pending`) is at or above this is **hot**.
    pub high_pressure: f64,
    /// A node at or below this occupancy with zero sheds in the
    /// interval is **cool** (hysteresis: the gap to `high_pressure`
    /// absorbs flapping).
    pub low_pressure: f64,
    /// A node shedding at least this fraction of its interval arrivals
    /// is hot regardless of queue occupancy (per-tenant backpressure
    /// sheds without filling the global queue).
    pub high_shed_rate: f64,
    /// Consecutive hot (cool) ticks required before scaling up (down).
    pub hysteresis_ticks: u32,
    /// A tenant the controller moved is untouchable for this long.
    pub tenant_cooldown_us: u64,
    /// Minimum logical time between topology changes (join or drain).
    pub scale_cooldown_us: u64,
    /// Migration budget per tick (hot-tenant moves or join relief).
    pub max_moves_per_tick: usize,
    /// Standby pool: node weights provisioned but outside the routing
    /// topology until the controller joins them. Empty = no elasticity.
    pub standby_weights: Vec<f64>,
    /// Brownout-ladder floor applied to hot nodes (0 disables nudges).
    pub brownout_floor_level: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            enabled: false,
            interval_us: 100_000,
            high_pressure: 0.6,
            low_pressure: 0.15,
            high_shed_rate: 0.05,
            hysteresis_ticks: 2,
            tenant_cooldown_us: 300_000,
            scale_cooldown_us: 400_000,
            max_moves_per_tick: 2,
            standby_weights: Vec::new(),
            brownout_floor_level: 0,
        }
    }
}

impl ControllerConfig {
    /// The default policy, armed.
    #[must_use]
    pub fn enabled() -> Self {
        ControllerConfig {
            enabled: true,
            ..ControllerConfig::default()
        }
    }
}

/// One node's control-interval counters, sampled (and reset) at each
/// controller tick by the engine's control tap. The control-plane
/// analogue of `observe::WindowSample`, but engine-internal so the
/// controller works with the observability plane off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlSample {
    /// Requests that arrived at this node during the interval.
    pub arrivals: u64,
    /// Requests completed during the interval.
    pub served: u64,
    /// Requests shed during the interval (any reason).
    pub shed: u64,
    /// Served work by tenant — the signal the [`TrafficLedger`] folds.
    pub served_by_tenant: BTreeMap<TenantId, u64>,
    /// Gateway queue depth (total pending) at the tick instant.
    pub queue_depth: usize,
    /// Dispatched batches still in flight at the tick instant.
    pub inflight: usize,
    /// p99 latency over the interval's completions (µs; 0 if none).
    pub p99_us: u64,
    /// Effective brownout level at the tick instant.
    pub brownout_level: usize,
}

/// What the controller can see of the fabric at a tick: the live
/// routing topology and the tenant → home map. Both backends build this
/// from the same state, so the view is bit-identical under replay.
pub struct ControllerView<'a> {
    /// Nodes currently in the routing topology (dead nodes excluded —
    /// the controller can never target an offline node).
    pub active: &'a [ShardNode],
    /// Tenant → (home node, family).
    pub assignments: &'a BTreeMap<TenantId, (NodeId, String)>,
    /// The per-node gateway queue ceiling (pressure denominator).
    pub max_total_pending: usize,
}

/// One controller decision. `Join` and `Drain` carry their tenant moves
/// so both backends execute mechanically identical plans.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlAction {
    /// Move one hot tenant off an overloaded node.
    Migrate {
        /// The tenant to move.
        tenant: TenantId,
        /// Its overloaded home.
        from: NodeId,
        /// The least-loaded destination.
        to: NodeId,
    },
    /// Activate a standby node and shift load onto it.
    Join {
        /// The standby node entering the routing topology.
        node: NodeId,
        /// Its capacity weight.
        weight: f64,
        /// Relief moves executed right after the join, in order.
        moves: Vec<(TenantId, NodeId)>,
    },
    /// Evacuate a controller-joined node and return it to standby.
    Drain {
        /// The node leaving the routing topology.
        node: NodeId,
        /// Every tenant move off the node, in tenant-id order.
        moves: Vec<(TenantId, NodeId)>,
    },
    /// Set a node's brownout-ladder floor (0 lifts the nudge).
    Brownout {
        /// The nudged node.
        node: NodeId,
        /// New floor level.
        floor: usize,
    },
}

/// One logged controller decision with the tick that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlRecord {
    /// Logical tick time.
    pub at_us: u64,
    /// The decision.
    pub action: ControlAction,
}

/// The closed-loop fleet controller. Create one per run via
/// [`FleetController::new`]; drive it with [`FleetController::tick`] at
/// every control interval; read the decision log back with
/// [`FleetController::into_parts`].
#[derive(Debug, Clone)]
pub struct FleetController {
    cfg: ControllerConfig,
    /// Standby nodes not yet in the topology, id-sorted (lowest joins
    /// first).
    standby: Vec<ShardNode>,
    /// Controller-joined nodes, join order (drained LIFO back to
    /// standby). Only nodes the controller added are ever drained — the
    /// operator-provisioned fleet is not the controller's to shrink.
    joined: Vec<ShardNode>,
    /// Tenant → logical time of its last controller-initiated move.
    last_move: BTreeMap<TenantId, u64>,
    /// Logical time of the last topology change.
    last_scale_us: Option<u64>,
    /// Consecutive ticks with at least one hot node.
    high_streak: u32,
    /// Consecutive ticks with every node cool.
    low_streak: u32,
    /// Current brownout floor per node (what the engine was last told).
    floors: BTreeMap<NodeId, usize>,
    /// Every decision, in tick order.
    log: Vec<ControlRecord>,
    /// Ticks executed.
    ticks: u64,
}

impl FleetController {
    /// A controller over `standby` spare capacity (id-sorted
    /// internally; ids must not collide with active nodes — the fabric
    /// allocates them).
    #[must_use]
    pub fn new(cfg: ControllerConfig, mut standby: Vec<ShardNode>) -> Self {
        standby.sort_by_key(|n| n.id);
        FleetController {
            cfg,
            standby,
            joined: Vec::new(),
            last_move: BTreeMap::new(),
            last_scale_us: None,
            high_streak: 0,
            low_streak: 0,
            floors: BTreeMap::new(),
            log: Vec::new(),
            ticks: 0,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Ticks executed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The decision log so far.
    #[must_use]
    pub fn log(&self) -> &[ControlRecord] {
        &self.log
    }

    /// Consume the controller, returning (decision log, remaining
    /// standby pool) — the fabric stores the pool back so topology
    /// changes persist across runs.
    #[must_use]
    pub fn into_parts(self) -> (Vec<ControlRecord>, Vec<ShardNode>) {
        let mut standby = self.standby;
        standby.sort_by_key(|n| n.id);
        (self.log, standby)
    }

    /// One control interval: fold `snapshots` into the ledger, classify
    /// every node, and decide. Pure given (state, arguments) — no clock,
    /// no randomness — so both backends compute identical actions from
    /// identical samples. `snapshots` must be node-id-sorted and cover
    /// exactly the live topology in `view.active`.
    pub fn tick(
        &mut self,
        at_us: u64,
        snapshots: &[(NodeId, ControlSample)],
        view: &ControllerView<'_>,
        ledger: &mut TrafficLedger,
    ) -> Vec<ControlAction> {
        self.ticks += 1;
        fold_samples(ledger, snapshots, view.assignments);
        let mut actions = Vec::new();
        if snapshots.is_empty() {
            return actions;
        }

        let ceiling = view.max_total_pending.max(1) as f64;
        let (high_pressure, low_pressure, high_shed_rate) = (
            self.cfg.high_pressure,
            self.cfg.low_pressure,
            self.cfg.high_shed_rate,
        );
        let hot = move |s: &ControlSample| {
            let pressure = s.queue_depth as f64 / ceiling;
            let shed_rate = if s.arrivals > 0 {
                s.shed as f64 / s.arrivals as f64
            } else {
                0.0
            };
            pressure >= high_pressure || shed_rate >= high_shed_rate
        };
        let cool =
            move |s: &ControlSample| s.queue_depth as f64 / ceiling <= low_pressure && s.shed == 0;
        let any_hot = snapshots.iter().any(|(_, s)| hot(s));
        let all_cool = snapshots.iter().all(|(_, s)| cool(s));
        self.high_streak = if any_hot { self.high_streak + 1 } else { 0 };
        self.low_streak = if all_cool { self.low_streak + 1 } else { 0 };

        // Brownout nudges: floor hot nodes, lift cool ones. Emitted only
        // on change, so an armed-but-idle controller nudges nothing.
        if self.cfg.brownout_floor_level > 0 {
            for (node, sample) in snapshots {
                let current = self.floors.get(node).copied().unwrap_or(0);
                let want = if hot(sample) {
                    self.cfg.brownout_floor_level
                } else if cool(sample) {
                    0
                } else {
                    current
                };
                if want != current {
                    self.floors.insert(*node, want);
                    let action = ControlAction::Brownout {
                        node: *node,
                        floor: want,
                    };
                    self.log.push(ControlRecord {
                        at_us,
                        action: action.clone(),
                    });
                    actions.push(action);
                }
            }
        }

        // Traffic-weighted load per live node (the controller's placement
        // measure — the same units the bounded-load caps use).
        let mut loads: BTreeMap<NodeId, u64> = view.active.iter().map(|n| (n.id, 0)).collect();
        for (tenant, (node, _)) in view.assignments {
            if let Some(load) = loads.get_mut(node) {
                *load += ledger.weight(*tenant);
            }
        }

        let scale_ok = self
            .last_scale_us
            .is_none_or(|t| at_us.saturating_sub(t) >= self.cfg.scale_cooldown_us);
        let tenant_cooldown = self.cfg.tenant_cooldown_us;
        let movable = move |last_move: &BTreeMap<TenantId, u64>, tenant: TenantId| {
            last_move
                .get(&tenant)
                .is_none_or(|t| at_us.saturating_sub(*t) >= tenant_cooldown)
        };

        // Scale-up: persistent overload + spare capacity → join the
        // lowest-id standby node and shift the heaviest movable tenants
        // from the most loaded nodes onto it.
        if self.high_streak >= self.cfg.hysteresis_ticks && scale_ok && !self.standby.is_empty() {
            let node = self.standby.remove(0);
            let mut moves = Vec::new();
            let total: u64 = loads.values().sum();
            let fair = total / (view.active.len() as u64 + 1);
            let mut new_load = 0u64;
            for _ in 0..self.cfg.max_moves_per_tick {
                // Most loaded donor still above fair share (ties: lowest id).
                let Some((&src, _)) = loads
                    .iter()
                    .filter(|(_, load)| **load > fair)
                    .max_by_key(|(id, load)| (**load, std::cmp::Reverse(**id)))
                else {
                    break;
                };
                // Its heaviest movable tenant (ties: lowest tenant id).
                let Some((tenant, weight)) = view
                    .assignments
                    .iter()
                    .filter(|(t, (home, _))| *home == src && movable(&self.last_move, **t))
                    .map(|(t, _)| (*t, ledger.weight(*t)))
                    .max_by_key(|(t, w)| (*w, std::cmp::Reverse(*t)))
                else {
                    break;
                };
                if new_load + weight > fair.max(weight) {
                    break; // the new node has taken its share
                }
                moves.push((tenant, node.id));
                self.last_move.insert(tenant, at_us);
                *loads.get_mut(&src).expect("donor is live") -= weight;
                new_load += weight;
            }
            self.last_scale_us = Some(at_us);
            self.high_streak = 0;
            self.joined.push(node.clone());
            let action = ControlAction::Join {
                node: node.id,
                weight: node.weight,
                moves,
            };
            self.log.push(ControlRecord {
                at_us,
                action: action.clone(),
            });
            actions.push(action);
            return actions; // one topology change per tick
        }

        // Scale-down: a persistently cool fleet sheds its most recent
        // controller-joined node — drain every tenant to the least-loaded
        // survivor, then the node returns to standby. Crashed joined
        // nodes (no longer in the live view) just fall off the stack.
        if self.low_streak >= self.cfg.hysteresis_ticks && scale_ok {
            while let Some(top) = self.joined.last() {
                if view.active.iter().any(|n| n.id == top.id) {
                    break;
                }
                self.joined.pop();
            }
            if let Some(node) = self.joined.pop() {
                let mut moves = Vec::new();
                for (tenant, (home, _)) in view.assignments {
                    if *home != node.id {
                        continue;
                    }
                    let weight = ledger.weight(*tenant);
                    // Least-loaded survivor (ties: lowest id).
                    let (&dest, _) = loads
                        .iter()
                        .filter(|(id, _)| **id != node.id)
                        .min_by_key(|(id, load)| (**load, **id))
                        .expect("drain requires a surviving node");
                    moves.push((*tenant, dest));
                    self.last_move.insert(*tenant, at_us);
                    *loads.get_mut(&dest).expect("dest is live") += weight;
                }
                loads.remove(&node.id);
                self.last_scale_us = Some(at_us);
                self.low_streak = 0;
                self.standby.push(node.clone());
                self.standby.sort_by_key(|n| n.id);
                let action = ControlAction::Drain {
                    node: node.id,
                    moves,
                };
                self.log.push(ControlRecord {
                    at_us,
                    action: action.clone(),
                });
                actions.push(action);
                return actions; // one topology change per tick
            }
        }

        // Hot-tenant rebalance: for each hot node (id order) move its
        // busiest movable tenant to the least-loaded node that is not
        // hot, while that does not leave the destination heavier than
        // the donor was.
        let mut budget = self.cfg.max_moves_per_tick;
        for (src, sample) in snapshots {
            if budget == 0 {
                break;
            }
            if !hot(sample) {
                continue;
            }
            // Busiest tenant on the node this interval (ties: lowest id),
            // falling back to ledger weight when the interval saw no
            // completions.
            let busiest = view
                .assignments
                .iter()
                .filter(|(t, (home, _))| *home == *src && movable(&self.last_move, **t))
                .map(|(t, _)| {
                    let interval = sample.served_by_tenant.get(t).copied().unwrap_or(0);
                    (*t, (interval, ledger.weight(*t)))
                })
                .max_by_key(|(t, key)| (*key, std::cmp::Reverse(*t)));
            let Some((tenant, _)) = busiest else { continue };
            let weight = ledger.weight(tenant);
            let src_load = loads.get(src).copied().unwrap_or(0);
            let dest = snapshots
                .iter()
                .filter(|(id, s)| *id != *src && !hot(s))
                .map(|(id, _)| (loads.get(id).copied().unwrap_or(0), *id))
                .min();
            let Some((dest_load, dest)) = dest else {
                continue;
            };
            // Never leave the destination heavier than the donor was —
            // that would just relocate the hotspot (ping-pong fuel).
            if dest_load + weight > src_load {
                continue;
            }
            self.last_move.insert(tenant, at_us);
            *loads.entry(*src).or_default() = src_load - weight;
            *loads.entry(dest).or_default() += weight;
            budget -= 1;
            let action = ControlAction::Migrate {
                tenant,
                from: *src,
                to: dest,
            };
            self.log.push(ControlRecord {
                at_us,
                action: action.clone(),
            });
            actions.push(action);
        }
        actions
    }
}

/// Fold one tick's samples into the traffic ledger: per-tenant served
/// counts are summed across nodes (a mid-interval migration splits a
/// tenant's work), and every *assigned* tenant is observed — including
/// zero-served ones, so idle tenants decay back toward one slot.
pub fn fold_samples(
    ledger: &mut TrafficLedger,
    snapshots: &[(NodeId, ControlSample)],
    assignments: &BTreeMap<TenantId, (NodeId, String)>,
) {
    let mut served: BTreeMap<TenantId, u64> = BTreeMap::new();
    for (_, sample) in snapshots {
        for (tenant, n) in &sample.served_by_tenant {
            *served.entry(*tenant).or_default() += n;
        }
    }
    for tenant in assignments.keys() {
        ledger.observe(*tenant, served.get(tenant).copied().unwrap_or(0));
    }
    // Unassigned tenants that served anyway (hash-routed strangers)
    // still feed the ledger — their next placement should see them.
    for (tenant, n) in &served {
        if !assignments.contains_key(tenant) {
            ledger.observe(*tenant, *n);
        }
    }
}

/// A [`MigrationSpec`] for a controller move (the same primitive an
/// operator would file).
#[must_use]
pub fn spec_of(tenant: TenantId, to: NodeId, at_us: u64) -> MigrationSpec {
    MigrationSpec {
        tenant,
        to,
        trigger_us: at_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: NodeId) -> ShardNode {
        ShardNode { id, weight: 1.0 }
    }

    fn sample(arrivals: u64, served: u64, shed: u64, queue_depth: usize) -> ControlSample {
        ControlSample {
            arrivals,
            served,
            shed,
            queue_depth,
            ..ControlSample::default()
        }
    }

    fn assignments(homes: &[(TenantId, NodeId)]) -> BTreeMap<TenantId, (NodeId, String)> {
        homes
            .iter()
            .map(|(t, n)| (*t, (*n, "kws".to_string())))
            .collect()
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            enabled: true,
            hysteresis_ticks: 2,
            tenant_cooldown_us: 250_000,
            scale_cooldown_us: 300_000,
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn overloaded_node_sheds_its_busiest_tenant_to_the_coolest_peer() {
        let active = [node(0), node(1)];
        let homes = assignments(&[(1, 0), (2, 0), (3, 1)]);
        let mut ledger = TrafficLedger::new();
        let mut c = FleetController::new(cfg(), vec![]);
        let mut hot = sample(100, 40, 20, 90);
        hot.served_by_tenant = [(1u32, 30u64), (2, 10)].into_iter().collect();
        let snaps = vec![(0u32, hot), (1u32, sample(10, 10, 0, 2))];
        let view = ControllerView {
            active: &active,
            assignments: &homes,
            max_total_pending: 100,
        };
        let actions = c.tick(100_000, &snaps, &view, &mut ledger);
        assert_eq!(
            actions,
            vec![ControlAction::Migrate {
                tenant: 1,
                from: 0,
                to: 1
            }],
            "the busiest tenant moves off the hot node"
        );
    }

    #[test]
    fn cooldown_blocks_ping_pong_of_the_same_tenant() {
        let active = [node(0), node(1)];
        let homes0 = assignments(&[(1, 0), (2, 0), (4, 1)]);
        let homes1 = assignments(&[(1, 1), (2, 0), (4, 1)]);
        let mut ledger = TrafficLedger::new();
        let mut c = FleetController::new(cfg(), vec![]);
        let mut hot = sample(100, 40, 20, 90);
        hot.served_by_tenant = [(1u32, 40u64)].into_iter().collect();
        let cool_node = sample(5, 5, 0, 1);
        let view0 = ControllerView {
            active: &active,
            assignments: &homes0,
            max_total_pending: 100,
        };
        let first = c.tick(
            100_000,
            &[(0, hot.clone()), (1, cool_node.clone())],
            &view0,
            &mut ledger,
        );
        assert!(
            first.iter().any(|a| matches!(
                a,
                ControlAction::Migrate {
                    tenant: 1,
                    from: 0,
                    to: 1
                }
            )),
            "tenant 1 moves 0 → 1: {first:?}"
        );
        // Next tick node 1 is hot (the tenant followed its traffic);
        // within the cooldown the controller must not bounce it back.
        let view1 = ControllerView {
            active: &active,
            assignments: &homes1,
            max_total_pending: 100,
        };
        let mut hot1 = sample(100, 60, 20, 90);
        hot1.served_by_tenant = [(1u32, 40u64), (4, 20)].into_iter().collect();
        let second = c.tick(
            200_000,
            &[(0, cool_node.clone()), (1, hot1.clone())],
            &view1,
            &mut ledger,
        );
        assert!(
            !second
                .iter()
                .any(|a| matches!(a, ControlAction::Migrate { tenant: 1, .. })),
            "tenant 1 is in cooldown: {second:?}"
        );
        // After the cooldown expires it may move again.
        let third = c.tick(500_000, &[(0, cool_node), (1, hot1)], &view1, &mut ledger);
        assert!(
            third.iter().any(|a| matches!(
                a,
                ControlAction::Migrate {
                    tenant: 1,
                    from: 1,
                    to: 0
                }
            )),
            "cooldown expired: {third:?}"
        );
    }

    #[test]
    fn hysteresis_gates_scale_up_and_standby_joins_lowest_id_first() {
        let active = [node(0)];
        let homes = assignments(&[(1, 0), (2, 0), (3, 0)]);
        let mut ledger = TrafficLedger::new();
        let mut c = FleetController::new(cfg(), vec![node(7), node(5)]);
        let hot = sample(100, 40, 30, 95);
        let view = ControllerView {
            active: &active,
            assignments: &homes,
            max_total_pending: 100,
        };
        let first = c.tick(100_000, &[(0, hot.clone())], &view, &mut ledger);
        assert!(
            !first
                .iter()
                .any(|a| matches!(a, ControlAction::Join { .. })),
            "one hot tick must not scale: {first:?}"
        );
        let second = c.tick(200_000, &[(0, hot.clone())], &view, &mut ledger);
        let joined: Vec<_> = second
            .iter()
            .filter_map(|a| match a {
                ControlAction::Join { node, moves, .. } => Some((*node, moves.len())),
                _ => None,
            })
            .collect();
        assert_eq!(joined.len(), 1, "two hot ticks scale up: {second:?}");
        assert_eq!(joined[0].0, 5, "lowest standby id joins first");
        assert!(joined[0].1 >= 1, "the join carries relief moves");
        // Immediately hot again: the scale cooldown blocks a second join.
        let third = c.tick(300_000, &[(0, hot)], &view, &mut ledger);
        assert!(
            !third
                .iter()
                .any(|a| matches!(a, ControlAction::Join { .. })),
            "scale cooldown holds: {third:?}"
        );
    }

    #[test]
    fn cool_fleet_drains_the_joined_node_back_to_standby() {
        let active_before = [node(0)];
        let homes = assignments(&[(1, 0), (2, 0), (3, 0)]);
        let mut ledger = TrafficLedger::new();
        let mut c = FleetController::new(cfg(), vec![node(5)]);
        let hot = sample(100, 40, 30, 95);
        let view = ControllerView {
            active: &active_before,
            assignments: &homes,
            max_total_pending: 100,
        };
        let _ = c.tick(100_000, &[(0, hot.clone())], &view, &mut ledger);
        let joined = c.tick(200_000, &[(0, hot)], &view, &mut ledger);
        assert!(joined
            .iter()
            .any(|a| matches!(a, ControlAction::Join { node: 5, .. })));
        // Now the fleet cools: two quiet ticks past the scale cooldown.
        let active_after = [node(0), node(5)];
        let homes_after = assignments(&[(1, 5), (2, 0), (3, 0)]);
        let view_after = ControllerView {
            active: &active_after,
            assignments: &homes_after,
            max_total_pending: 100,
        };
        let quiet = sample(2, 2, 0, 0);
        let _ = c.tick(
            600_000,
            &[(0, quiet.clone()), (5, quiet.clone())],
            &view_after,
            &mut ledger,
        );
        let drained = c.tick(
            700_000,
            &[(0, quiet.clone()), (5, quiet.clone())],
            &view_after,
            &mut ledger,
        );
        let drains: Vec<_> = drained
            .iter()
            .filter_map(|a| match a {
                ControlAction::Drain { node, moves } => Some((*node, moves.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(drains.len(), 1, "cool fleet drains: {drained:?}");
        assert_eq!(drains[0].0, 5);
        assert_eq!(
            drains[0].1,
            vec![(1, 0)],
            "every tenant moves to the survivor"
        );
        // And the node is available to join again later.
        let view_back = ControllerView {
            active: &active_before,
            assignments: &homes,
            max_total_pending: 100,
        };
        let hot2 = sample(100, 40, 30, 95);
        let _ = c.tick(1_200_000, &[(0, hot2.clone())], &view_back, &mut ledger);
        let rejoin = c.tick(1_300_000, &[(0, hot2)], &view_back, &mut ledger);
        assert!(
            rejoin
                .iter()
                .any(|a| matches!(a, ControlAction::Join { node: 5, .. })),
            "drained node returned to standby: {rejoin:?}"
        );
    }

    #[test]
    fn actions_never_target_offline_nodes() {
        // Node 2 crashed (not in the view): no migrate destination, no
        // drain target, no brownout nudge may reference it.
        let active = [node(0), node(1)];
        let homes = assignments(&[(1, 0), (2, 0), (3, 1)]);
        let mut ledger = TrafficLedger::new();
        let mut c = FleetController::new(
            ControllerConfig {
                brownout_floor_level: 1,
                ..cfg()
            },
            vec![],
        );
        // Pretend node 2 was a joined node that died.
        c.joined.push(node(2));
        let hot = sample(100, 20, 40, 95);
        let quiet = sample(2, 2, 0, 0);
        let view = ControllerView {
            active: &active,
            assignments: &homes,
            max_total_pending: 100,
        };
        for tick in 1..=8u64 {
            let snaps = if tick <= 4 {
                vec![(0, hot.clone()), (1, quiet.clone())]
            } else {
                vec![(0, quiet.clone()), (1, quiet.clone())]
            };
            let actions = c.tick(tick * 100_000, &snaps, &view, &mut ledger);
            for action in &actions {
                let targets: Vec<NodeId> = match action {
                    ControlAction::Migrate { from, to, .. } => vec![*from, *to],
                    ControlAction::Join { node, moves, .. } => std::iter::once(*node)
                        .chain(moves.iter().map(|(_, n)| *n))
                        .collect(),
                    ControlAction::Drain { node, moves } => std::iter::once(*node)
                        .chain(moves.iter().map(|(_, n)| *n))
                        .collect(),
                    ControlAction::Brownout { node, .. } => vec![*node],
                };
                for t in targets {
                    assert_ne!(t, 2, "action references the dead node: {action:?}");
                }
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_given_the_same_inputs() {
        let run = || {
            let active = [node(0), node(1)];
            let homes = assignments(&[(1, 0), (2, 0), (3, 1)]);
            let mut ledger = TrafficLedger::new();
            let mut c = FleetController::new(
                ControllerConfig {
                    brownout_floor_level: 2,
                    ..cfg()
                },
                vec![node(9)],
            );
            let view = ControllerView {
                active: &active,
                assignments: &homes,
                max_total_pending: 64,
            };
            let mut all = Vec::new();
            for tick in 1..=10u64 {
                let mut s0 = sample(50 + tick, 30, tick % 3, (tick * 9) as usize % 64);
                s0.served_by_tenant = [(1u32, 20u64), (2, 10)].into_iter().collect();
                let s1 = sample(10, 10, 0, 3);
                all.extend(c.tick(tick * 100_000, &[(0, s0), (1, s1)], &view, &mut ledger));
            }
            (all, c.into_parts().0, ledger)
        };
        let (a1, l1, g1) = run();
        let (a2, l2, g2) = run();
        assert_eq!(a1, a2);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn brownout_nudges_floor_hot_nodes_and_lift_on_cool() {
        let active = [node(0)];
        let homes = assignments(&[(1, 0)]);
        let mut ledger = TrafficLedger::new();
        let mut c = FleetController::new(
            ControllerConfig {
                brownout_floor_level: 2,
                ..cfg()
            },
            vec![],
        );
        let view = ControllerView {
            active: &active,
            assignments: &homes,
            max_total_pending: 100,
        };
        let up = c.tick(100_000, &[(0, sample(100, 40, 30, 95))], &view, &mut ledger);
        assert!(up.contains(&ControlAction::Brownout { node: 0, floor: 2 }));
        // Still hot: no duplicate nudge.
        let again = c.tick(200_000, &[(0, sample(100, 40, 30, 95))], &view, &mut ledger);
        assert!(!again
            .iter()
            .any(|a| matches!(a, ControlAction::Brownout { .. })));
        let down = c.tick(300_000, &[(0, sample(5, 5, 0, 1))], &view, &mut ledger);
        assert!(down.contains(&ControlAction::Brownout { node: 0, floor: 0 }));
    }

    #[test]
    fn ledger_folding_decays_idle_tenants_and_sums_across_nodes() {
        let homes = assignments(&[(1, 0), (2, 0)]);
        let mut ledger = TrafficLedger::new();
        let mut split_a = ControlSample::default();
        split_a.served_by_tenant.insert(1, 30);
        let mut split_b = ControlSample::default();
        split_b.served_by_tenant.insert(1, 10);
        fold_samples(&mut ledger, &[(0, split_a), (1, split_b)], &homes);
        let w1 = ledger.weight(1);
        let w2 = ledger.weight(2);
        assert!(w1 > w2, "tenant 1's split work summed to 40");
        // One quiet interval decays tenant 1 toward the idle slot.
        fold_samples(&mut ledger, &[], &homes);
        assert!(ledger.weight(1) < w1);
    }
}
