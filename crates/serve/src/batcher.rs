//! Micro-batching request queues.
//!
//! Per model family, admitted requests wait briefly so the runtime can
//! amortize per-dispatch overhead across a batch — the classic serving
//! trade (Edge-Impulse-style runtimes batch aggressively on gateways,
//! MCUs run batch 1). A batch flushes when it reaches `max_batch`
//! requests (size trigger) or when its oldest member has waited
//! `max_delay_us` (deadline trigger). Queues are FIFO, so per-tenant
//! order is preserved by construction.

use crate::request::Request;
use std::collections::{BTreeMap, VecDeque};

/// Batcher configuration.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Maximum requests per batch (size trigger).
    pub max_batch: usize,
    /// Maximum time the oldest request may wait before a forced flush.
    pub max_delay_us: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_delay_us: 2_000,
        }
    }
}

/// A flushed batch, ready for routing.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Model family every member requested.
    pub model: String,
    /// Members in arrival order.
    pub requests: Vec<Request>,
    /// Why the batch flushed (for stats).
    pub trigger: FlushTrigger,
}

/// What caused a flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// Queue reached `max_batch`.
    Size,
    /// Oldest member hit `max_delay_us`.
    Deadline,
    /// Explicit drain at end of run.
    Drain,
}

/// Per-family FIFO queues with size- and deadline-triggered flushing.
#[derive(Debug)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    queues: BTreeMap<String, VecDeque<Request>>,
    pending: usize,
}

impl MicroBatcher {
    /// New batcher under `policy`.
    #[must_use]
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "max_batch must be positive");
        MicroBatcher {
            policy,
            queues: BTreeMap::new(),
            pending: 0,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Requests currently queued across all families.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Enqueue an admitted request. Returns a full batch when this push
    /// hits the size trigger, else the deadline by which the caller must
    /// call [`MicroBatcher::flush_due`] for this family. The deadline is
    /// reported only when this push opened the queue (later pushes share
    /// the already-armed timer, which fires off the same oldest member).
    pub fn push(&mut self, request: Request) -> PushOutcome {
        let family = request.model.clone();
        let queue = self.queues.entry(family.clone()).or_default();
        queue.push_back(request);
        self.pending += 1;
        if queue.len() >= self.policy.max_batch {
            let batch = self.take_batch(&family, FlushTrigger::Size);
            return PushOutcome::Flushed(batch);
        }
        let queue = &self.queues[&family];
        let flush_at_us = if queue.len() == 1 {
            let oldest = queue.front().expect("just pushed").arrival_us;
            Some(oldest.saturating_add(self.policy.max_delay_us))
        } else {
            None
        };
        PushOutcome::Queued { flush_at_us }
    }

    /// Flush `family` if its oldest member has waited out the delay
    /// budget at `now_us` (deadline trigger). Stale timers (queue already
    /// flushed by the size trigger) return `None`.
    pub fn flush_due(&mut self, family: &str, now_us: u64) -> Option<Batch> {
        let queue = self.queues.get(family)?;
        let oldest = queue.front()?.arrival_us;
        if now_us < oldest.saturating_add(self.policy.max_delay_us) {
            return None;
        }
        Some(self.take_batch(family, FlushTrigger::Deadline))
    }

    /// Earliest forced-flush time across all families (for schedulers).
    #[must_use]
    pub fn next_deadline_us(&self) -> Option<(String, u64)> {
        self.queues
            .iter()
            .filter_map(|(family, q)| {
                q.front().map(|r| {
                    (
                        family.clone(),
                        r.arrival_us.saturating_add(self.policy.max_delay_us),
                    )
                })
            })
            .min_by_key(|(_, t)| *t)
    }

    /// Splice one tenant's queued requests out of every family queue,
    /// preserving their relative arrival order. Used by the live-migration
    /// drain: the spliced requests were already admitted (and charged) on
    /// the draining node, so they travel with the tenant's account and
    /// re-enter the destination node's queues without a second admission.
    ///
    /// Splicing can change a queue's oldest member; callers that armed a
    /// deadline timer for the old front must re-arm from
    /// [`MicroBatcher::next_deadline_us`] (stale timers are harmless, a
    /// missing one stalls the queue).
    pub fn splice_tenant(&mut self, tenant: crate::request::TenantId) -> Vec<Request> {
        let mut spliced = Vec::new();
        for queue in self.queues.values_mut() {
            let mut kept = VecDeque::with_capacity(queue.len());
            for request in queue.drain(..) {
                if request.tenant == tenant {
                    spliced.push(request);
                } else {
                    kept.push_back(request);
                }
            }
            *queue = kept;
        }
        self.pending -= spliced.len();
        spliced.sort_by_key(|r| (r.arrival_us, r.id));
        spliced
    }

    /// Deadline-trigger times per non-empty family queue (front arrival +
    /// delay budget) — what a scheduler must have armed for no queue to
    /// stall. Used to re-arm after a splice changed queue fronts.
    #[must_use]
    pub fn flush_deadlines(&self) -> Vec<(String, u64)> {
        self.queues
            .iter()
            .filter_map(|(family, q)| {
                q.front().map(|r| {
                    (
                        family.clone(),
                        r.arrival_us.saturating_add(self.policy.max_delay_us),
                    )
                })
            })
            .collect()
    }

    /// Drain every queue (end of run), preserving FIFO order.
    pub fn drain(&mut self) -> Vec<Batch> {
        let families: Vec<String> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(f, _)| f.clone())
            .collect();
        families
            .into_iter()
            .map(|f| self.take_batch(&f, FlushTrigger::Drain))
            .collect()
    }

    fn take_batch(&mut self, family: &str, trigger: FlushTrigger) -> Batch {
        let queue = self.queues.get_mut(family).expect("family exists");
        let n = queue.len().min(self.policy.max_batch);
        let requests: Vec<Request> = queue.drain(..n).collect();
        self.pending -= requests.len();
        Batch {
            model: family.to_string(),
            requests,
            trigger,
        }
    }
}

/// Result of [`MicroBatcher::push`].
#[derive(Debug)]
pub enum PushOutcome {
    /// Request queued.
    Queued {
        /// Absolute deadline-trigger time to arm for the family queue —
        /// `Some` only when this push opened the queue; `None` means a
        /// timer for the same oldest member is already armed.
        flush_at_us: Option<u64>,
    },
    /// The push completed a batch (size trigger).
    Flushed(Batch),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tenant: u32, model: &str, arrival_us: u64) -> Request {
        Request {
            id,
            tenant,
            model: model.into(),
            arrival_us,
            deadline_us: 50_000,
            features: None,
        }
    }

    #[test]
    fn size_trigger_flushes_exactly_max_batch() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 3,
            max_delay_us: 1_000,
        });
        assert!(matches!(
            b.push(req(0, 1, "m", 0)),
            PushOutcome::Queued { .. }
        ));
        assert!(matches!(
            b.push(req(1, 1, "m", 5)),
            PushOutcome::Queued { .. }
        ));
        let PushOutcome::Flushed(batch) = b.push(req(2, 1, "m", 9)) else {
            panic!("third push must flush");
        };
        assert_eq!(batch.trigger, FlushTrigger::Size);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn deadline_trigger_fires_only_when_due() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 8,
            max_delay_us: 1_000,
        });
        let PushOutcome::Queued { flush_at_us } = b.push(req(0, 1, "m", 100)) else {
            panic!("first push queues");
        };
        assert_eq!(flush_at_us, Some(1_100), "first push arms the timer");
        let PushOutcome::Queued { flush_at_us } = b.push(req(1, 1, "m", 200)) else {
            panic!("second push queues");
        };
        assert_eq!(flush_at_us, None, "timer already armed for this queue");
        assert!(b.flush_due("m", 1_099).is_none(), "not due yet");
        let batch = b.flush_due("m", 1_100).expect("due");
        assert_eq!(batch.trigger, FlushTrigger::Deadline);
        assert_eq!(batch.requests.len(), 2, "one deadline flush takes both");
        assert!(b.flush_due("m", 2_000).is_none(), "stale timer is a no-op");
    }

    #[test]
    fn families_batch_independently() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 2,
            max_delay_us: 1_000,
        });
        b.push(req(0, 1, "a", 0));
        b.push(req(1, 1, "b", 1));
        let PushOutcome::Flushed(batch) = b.push(req(2, 2, "a", 2)) else {
            panic!("family a reaches max_batch");
        };
        assert_eq!(batch.model, "a");
        assert_eq!(b.pending(), 1, "family b still queued");
    }

    #[test]
    fn per_tenant_fifo_is_preserved() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 4,
            max_delay_us: 1_000,
        });
        for (i, tenant) in [(0u64, 7u32), (1, 9), (2, 7), (3, 7)] {
            if let PushOutcome::Flushed(batch) = b.push(req(i, tenant, "m", i)) {
                let tenant7: Vec<u64> = batch
                    .requests
                    .iter()
                    .filter(|r| r.tenant == 7)
                    .map(|r| r.id)
                    .collect();
                assert_eq!(tenant7, vec![0, 2, 3], "tenant order follows arrival");
                return;
            }
        }
        panic!("batch never flushed");
    }

    #[test]
    fn splice_extracts_one_tenant_in_arrival_order() {
        let mut b = MicroBatcher::new(BatchPolicy {
            max_batch: 8,
            max_delay_us: 1_000,
        });
        b.push(req(0, 7, "a", 0));
        b.push(req(1, 9, "a", 5));
        b.push(req(2, 7, "b", 3));
        b.push(req(3, 7, "a", 9));
        let spliced = b.splice_tenant(7);
        let ids: Vec<u64> = spliced.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 2, 3], "tenant 7's requests, arrival order");
        assert_eq!(b.pending(), 1, "tenant 9 stays queued");
        // Family a's front changed (id 0 → id 1): the re-arm schedule
        // reflects the surviving front, family b is empty and absent.
        assert_eq!(b.flush_deadlines(), vec![("a".to_string(), 1_005)]);
        assert!(b.splice_tenant(7).is_empty(), "splice is idempotent");
    }

    #[test]
    fn drain_empties_every_family() {
        let mut b = MicroBatcher::new(BatchPolicy::default());
        b.push(req(0, 1, "a", 0));
        b.push(req(1, 1, "b", 0));
        let batches = b.drain();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|x| x.trigger == FlushTrigger::Drain));
        assert_eq!(b.pending(), 0);
    }
}
