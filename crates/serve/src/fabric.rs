//! The multi-node serving fabric: shard router over N serving planes.
//!
//! [`ServeFabric`] is the fleet-scale refactor of the single-node
//! [`ServePlane`]: a [`ShardRouter`] consistent-hashes every tenant onto a
//! home node (weighted by node capacity, with model-family affinity), each
//! node runs the full gateway → batcher → cache → device-router stack over
//! its own device fleet, and the fabric presents one pane of glass back:
//!
//! * **Partitioned quotas** — a tenant's prepaid balance and audit chain
//!   live on its home node's gateway only. Node join/leave rebalances by
//!   moving whole [`crate::TenantAccount`]s, so the chain stays intact and
//!   billing sync still verifies end-to-end.
//! * **Refunded sheds** — admission charges at the door; a downstream
//!   NoRoute/deadline shed refunds the query through an
//!   [`tinymlops_meter::EntryKind::Refund`] chain entry
//!   ([`crate::Gateway::resolve_shed`]), so prepaid queries are never
//!   silently burned by a shed the platform caused.
//! * **Merged telemetry** — each node records into its own
//!   [`Telemetry`] sink; a run drains them into one fleet-level
//!   [`TelemetryReport`] and merges per-node latency accumulators, so
//!   fleet percentiles are exact, not percentile-of-percentiles.
//! * **Live migration** — a [`MigrationSpec`] schedules a tenant's
//!   drain/handoff to another node *mid-stream*: queued work is spliced
//!   out of the source batcher, dispatched work drains in place, and
//!   the whole quota partition moves atomically with a
//!   [`tinymlops_meter::EntryKind::Handoff`] chain entry
//!   ([`ServeFabric::run_migrating`]; the threaded analogue is
//!   [`ServeFabric::run_live_migrating`]).
//! * **Bounded load** — placement caps each node's tenant count at
//!   [`FabricConfig::load_factor`] × its fair share; hot tenants
//!   overflow to their next-best rendezvous node.

use crate::controller::{
    ControlAction, ControlRecord, ControllerConfig, ControllerView, FleetController,
};
use crate::fault::{
    plan_evacuation, retryable, schedule_retry, FailoverPackage, FaultPlan, NodeFaults,
    RetryBudget, RetryDecision, RetryPolicy,
};
use crate::observer::{NodeObserver, ObserveConfig};
use crate::request::{Request, ShedReason, TenantId};
use crate::shard::{NodeId, ShardNode, ShardRouter, TrafficLedger};
use crate::sim::{ExecModel, ServeConfig, ServeEngine, ServePlane};
use crate::stats::{ServeReport, ServeStats};
use crate::ServeError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use tinymlops_device::Fleet;
use tinymlops_meter::MeterError;
use tinymlops_observe::{
    Alarm, LogHistogram, Telemetry, TelemetryReport, TraceEvent, WindowSample,
};
use tinymlops_registry::{ModelId, ModelRecord};

/// One node's replay context inside the interleaved fabric loop: its
/// serving stack plus the event engine driving it (the engine borrows
/// the node's telemetry sink for the duration of the run).
struct NodeCtx<'n> {
    id: NodeId,
    plane: &'n mut ServePlane,
    engine: ServeEngine<'n>,
}

/// Disjoint mutable borrows of two slice elements (source and
/// destination node of a migration).
fn two_muts<T>(xs: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "migration source and destination must differ");
    if i < j {
        let (a, b) = xs.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = xs.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

/// Execute one migration inside the simulator's interleaved loop,
/// walking the full drain/handoff state machine at logical time `at_us`.
fn execute_migration(
    ctxs: &mut [NodeCtx<'_>],
    index: &BTreeMap<NodeId, usize>,
    assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
    shard_router: &mut ShardRouter,
    spec: &MigrationSpec,
    at_us: u64,
) -> MigrationRecord {
    let (from, family) = assignments
        .get(&spec.tenant)
        .cloned()
        .expect("specs are validated before the run starts");
    let mut record = MigrationRecord::planned(spec, from, at_us);
    if from == spec.to {
        // Already home (e.g. a repeated migration of the same tenant):
        // nothing drains, nothing moves, the routing is already right.
        record.phase = MigrationPhase::Resumed;
        return record;
    }
    let (src, dst) = two_muts(ctxs, index[&from], index[&spec.to]);
    // Mark-source-draining: bring the source to the trigger instant.
    // New work cannot reach it past this point (the routing flip below
    // is atomic within this same event), so the drain set is closed.
    src.engine.run_timers_through(src.plane, at_us, true);
    record.phase = MigrationPhase::Draining;
    let package = drain_source(
        &mut src.engine,
        src.plane,
        spec.tenant,
        from,
        spec.to,
        at_us,
    )
    .expect("validated tenant has an account on its home node");
    record.absorb(&package);
    adopt_destination(&mut dst.engine, dst.plane, spec.tenant, package, at_us);
    record.phase = MigrationPhase::HandedOff;
    // Flip + pin the assignment; the tenant resumes on its new home.
    assignments.insert(spec.tenant, (spec.to, family));
    shard_router.pin(spec.tenant, spec.to);
    record.phase = MigrationPhase::Resumed;
    record
}

/// Fabric construction parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// One relative capacity weight per serving node (also fixes N).
    pub node_weights: Vec<f64>,
    /// Family-affinity blend for tenant placement (see [`ShardRouter`]).
    pub tenant_affinity: f64,
    /// Bounded-load factor for tenant placement: a node's tenant count is
    /// capped at `load_factor ×` its weight-proportional share, and a hot
    /// tenant overflows to its next-best rendezvous node
    /// ([`ShardRouter::assign_bounded`]). `f64::INFINITY` (the default)
    /// disables the bound (pure rendezvous); finite values must be ≥ 1.
    pub load_factor: f64,
    /// Per-node serving configuration (every node runs the same policy).
    pub serve: ServeConfig,
    /// Per-node observability (tracing, windowed series, detectors).
    /// Disabled by default; when disabled the fabric report's
    /// observability fields stay empty and runs are byte-identical to a
    /// build without the observer.
    pub observe: ObserveConfig,
    /// Deterministic fault schedule (crashes, stalls, slowdowns, dispatch
    /// panics) plus the brownout ladder. Disabled by default; a disabled
    /// plan is byte-identical to no plan at all, and an enabled plan
    /// replays bit-identically across both backends (crashes and stalls
    /// key on the same logical timestamps the engines already run on).
    pub fault: FaultPlan,
    /// Autonomous fleet controller (telemetry-driven migration, elastic
    /// scale-up/down against [`ControllerConfig::standby_weights`],
    /// brownout nudges). Disabled by default; a disabled controller arms
    /// no tap and fires no ticks, so runs are byte-identical to a build
    /// without the controller. `standby_weights` adds that many standby
    /// nodes — the fleet partition must cover `node_weights.len() +
    /// standby_weights.len()` nodes.
    pub controller: ControllerConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.5,
            load_factor: f64::INFINITY,
            serve: ServeConfig::default(),
            observe: ObserveConfig::default(),
            fault: FaultPlan::default(),
            controller: ControllerConfig::default(),
        }
    }
}

/// One scheduled live migration: move `tenant`'s account (and any
/// in-flight work) to node `to`, starting the drain at `trigger_us` in
/// the traffic stream's logical time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationSpec {
    /// The tenant to move.
    pub tenant: TenantId,
    /// Destination node (must be live when the run starts).
    pub to: NodeId,
    /// Logical time at which the source node stops admitting the
    /// tenant's new work and the drain begins. The migration executes
    /// just before the first stream arrival at or after this instant (or
    /// at end of stream if no arrival follows).
    pub trigger_us: u64,
}

/// Where a migration is in its drain/handoff protocol. Phases advance
/// strictly forward; a failed live node leaves the record frozen at the
/// last phase it reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigrationPhase {
    /// Scheduled, not yet triggered.
    Planned,
    /// Source marked draining: the tenant's new arrivals no longer reach
    /// the old home, queued work is being spliced out of its batcher.
    Draining,
    /// Quota partition + audit chain handed off atomically (sealed by a
    /// [`tinymlops_meter::EntryKind::Handoff`] entry); spliced work
    /// re-enqueued on the destination.
    HandedOff,
    /// Shard-router assignment flipped (and pinned); the tenant serves
    /// from its new home.
    Resumed,
}

/// What one executed migration did — the auditable trace of the
/// [`MigrationSpec`]'s drain/handoff state machine. In
/// [`crate::ExecMode::Replay`] these records are bit-identical between
/// the simulator and the threaded backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The migrated tenant.
    pub tenant: TenantId,
    /// Node the account left.
    pub from: NodeId,
    /// Node the account landed on.
    pub to: NodeId,
    /// Scheduled drain start (logical stream time).
    pub trigger_us: u64,
    /// When the handoff was sealed: `trigger_us` in replay, the real
    /// elapsed door time in [`crate::ExecMode::Wall`].
    pub handoff_us: u64,
    /// Admitted-but-not-dispatched requests spliced from the source
    /// batcher and re-enqueued on the destination (no drop, no re-bill).
    pub spliced: usize,
    /// Requests already dispatched on the source at the trigger: they
    /// drain in place (completing on the source), and the account's
    /// pending count sheds them before the handoff.
    pub drained_in_flight: usize,
    /// Wall-mode only: not-yet-ingested arrivals spliced out of the
    /// source node's live ingest queue and re-routed (always 0 in replay,
    /// where parity with the simulator pins ingested work to its node).
    pub queue_spliced: usize,
    /// The account's lifetime admitted counter at the handoff — the
    /// destination's subsequent admissions count up from here, which is
    /// how tests prove the tenant was *served on the new home*.
    pub admitted_before_handoff: u64,
    /// Furthest phase the protocol reached ([`MigrationPhase::Resumed`]
    /// on success).
    pub phase: MigrationPhase,
}

impl MigrationRecord {
    /// The record skeleton both backends start from: spec echoed, phase
    /// [`MigrationPhase::Planned`], nothing moved yet. Keeping this (and
    /// [`MigrationRecord::absorb`]) in one place is what keeps the
    /// simulator's and the live coordinator's records field-for-field
    /// identical as the struct evolves.
    pub(crate) fn planned(spec: &MigrationSpec, from: NodeId, at_us: u64) -> Self {
        MigrationRecord {
            tenant: spec.tenant,
            from,
            to: spec.to,
            trigger_us: spec.trigger_us,
            handoff_us: at_us,
            spliced: 0,
            drained_in_flight: 0,
            queue_spliced: 0,
            admitted_before_handoff: 0,
            phase: MigrationPhase::Planned,
        }
    }

    /// Copy what the source-side drain measured into the record.
    pub(crate) fn absorb(&mut self, package: &HandoffPackage) {
        self.handoff_us = package.handoff_us;
        self.spliced = package.spliced.len();
        self.drained_in_flight = package.drained_in_flight;
        self.admitted_before_handoff = package.admitted_before_handoff;
    }
}

/// Everything that travels in one atomic handoff: the whole tenant
/// account (balance, counters, sealed audit chain — with the
/// [`tinymlops_meter::EntryKind::Handoff`] entry already appended) plus
/// the spliced not-yet-dispatched requests.
pub(crate) struct HandoffPackage {
    pub(crate) account: crate::gateway::TenantAccount,
    pub(crate) spliced: Vec<Request>,
    pub(crate) from: NodeId,
    pub(crate) handoff_us: u64,
    pub(crate) drained_in_flight: usize,
    pub(crate) admitted_before_handoff: u64,
}

/// Source-side drain: splice queued work, shed in-flight dispatched
/// requests from the detaching account's pending count (they finish on
/// the source), seal the re-homing into the audit chain, and detach.
/// Shared verbatim by the simulator and the live node workers — the
/// protocol exists once. Returns `None` when the tenant has no account
/// here (a routing bug surfaced by the caller).
pub(crate) fn drain_source(
    engine: &mut ServeEngine<'_>,
    plane: &mut ServePlane,
    tenant: TenantId,
    from: NodeId,
    to: NodeId,
    handoff_us: u64,
) -> Option<HandoffPackage> {
    let spliced = engine.splice_tenant(plane, tenant);
    let drained_in_flight = engine.inflight_pending(tenant);
    let mut account = plane.gateway.remove_tenant(tenant)?;
    // Dispatched batches keep running on the source and resolve there
    // (as no-ops against the departed account), so the account leaves
    // carrying only the spliced requests as pending work.
    account.pending = account.pending.saturating_sub(drained_in_flight);
    let admitted_before_handoff = account.admitted;
    account.quota.handoff(from, to, handoff_us / 1000);
    engine.observe_handoff(handoff_us, tenant, to, true);
    Some(HandoffPackage {
        account,
        spliced,
        from,
        handoff_us,
        drained_in_flight,
        admitted_before_handoff,
    })
}

/// Destination-side adopt: bring the node to the handoff instant, attach
/// the account, and re-enqueue the spliced requests (pre-admitted — they
/// bypass the gateway, so nothing is billed twice). Shared by the
/// simulator and the live node workers.
pub(crate) fn adopt_destination(
    engine: &mut ServeEngine<'_>,
    plane: &mut ServePlane,
    tenant: TenantId,
    package: HandoffPackage,
    at_us: u64,
) {
    engine.run_timers_through(plane, at_us, true);
    engine.observe_handoff(at_us, tenant, package.from, false);
    plane.gateway.adopt_tenant(tenant, package.account);
    engine.adopt_spliced(plane, package.spliced, at_us);
}

/// Emergency-handoff landing side: reconstruct a crashed node's tenant
/// account on a survivor from its [`FailoverPackage`]. Unlike the
/// cooperative [`adopt_destination`] there is no source left to seal the
/// chain — the *survivor* extends it with a domain-separated
/// [`tinymlops_meter::EntryKind::Failover`] entry, then rebuilds the
/// account from the census counters with `pending == 0` (the dead node
/// resolved all pending work as refunded failover sheds before
/// exporting). Shared by the simulator loop and the live node workers.
pub(crate) fn absorb_failover(
    engine: &mut ServeEngine<'_>,
    plane: &mut ServePlane,
    package: FailoverPackage,
    to: NodeId,
    at_us: u64,
) {
    engine.run_timers_through(plane, at_us, true);
    engine.observe_handoff(at_us, package.tenant, package.from, false);
    let FailoverPackage {
        tenant,
        mut quota,
        admitted,
        shed,
        refunded,
        from,
        at_us: _,
    } = package;
    quota.failover(from, to, at_us / 1000);
    plane.gateway.adopt_tenant(
        tenant,
        crate::gateway::TenantAccount {
            quota,
            pending: 0,
            admitted,
            shed,
            refunded,
        },
    );
}

/// A cross-node event in the interleaved run loop: an injected node crash
/// or a scheduled live migration.
pub(crate) enum FleetTrigger<'s> {
    /// Injected [`crate::FaultKind::Crash`] of a node.
    Crash {
        /// The node that dies.
        node: NodeId,
    },
    /// A scheduled [`MigrationSpec`].
    Migrate(&'s MigrationSpec),
}

/// Merge a fault plan's crash events with the migration schedule into one
/// trigger sequence ordered by (time, crashes-first, schedule order).
/// Both drivers — the simulator's interleaved loop and the live ingest
/// feeder — consume this exact sequence, which is what makes crash
/// recovery replay bit-identically across backends.
pub(crate) fn merge_triggers<'s>(
    plan: &FaultPlan,
    specs: &'s [MigrationSpec],
) -> Vec<(u64, FleetTrigger<'s>)> {
    let mut keyed: Vec<(u64, u8, usize, FleetTrigger<'s>)> = Vec::new();
    for (i, (node, at_us)) in plan.crashes().enumerate() {
        keyed.push((at_us, 0, i, FleetTrigger::Crash { node }));
    }
    for (i, spec) in specs.iter().enumerate() {
        keyed.push((spec.trigger_us, 1, i, FleetTrigger::Migrate(spec)));
    }
    keyed.sort_by_key(|(at, rank, idx, _)| (*at, *rank, *idx));
    keyed.into_iter().map(|(at, _, _, t)| (at, t)).collect()
}

/// Execute one injected node crash inside the simulator's interleaved
/// loop: bring the dying node to the crash instant, evacuate it (pending
/// work resolved as refunded failover sheds, accounts exported), drop it
/// from the shard topology, re-home every evacuated tenant onto a
/// survivor under bounded load ([`plan_evacuation`]) and pin it there,
/// and route orphaned refunds — in-flight work of tenants that had
/// already migrated away — to their accounts' current homes. The live
/// feeder performs the same steps over the ingest queues; placement
/// parity rests on `plan_evacuation` being a pure function of the
/// surviving topology.
#[allow(clippy::too_many_arguments)]
fn execute_crash(
    ctxs: &mut [NodeCtx<'_>],
    index: &BTreeMap<NodeId, usize>,
    assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
    shard_router: &mut ShardRouter,
    traffic: &TrafficLedger,
    dead: &mut BTreeSet<NodeId>,
    load_factor: f64,
    node: NodeId,
    at_us: u64,
) {
    if !dead.insert(node) {
        return; // a duplicate crash of a dead node is a no-op
    }
    let ctx = &mut ctxs[index[&node]];
    ctx.engine.run_timers_through(ctx.plane, at_us, true);
    let (packages, orphans) = ctx.engine.evacuate(ctx.plane, node, at_us);
    shard_router.remove_node(node);
    let moves = plan_evacuation(shard_router, assignments, traffic, node, load_factor);
    debug_assert_eq!(moves.len(), packages.len(), "every account gets a home");
    for (package, (tenant, family, dest)) in packages.into_iter().zip(moves) {
        debug_assert_eq!(package.tenant, tenant, "both walk tenants in id order");
        let dst = &mut ctxs[index[&dest]];
        absorb_failover(&mut dst.engine, dst.plane, package, dest, at_us);
        assignments.insert(tenant, (dest, family));
        shard_router.pin(tenant, dest);
    }
    for orphan in orphans {
        if let Some((home, _)) = assignments.get(&orphan.tenant) {
            let hctx = &mut ctxs[index[home]];
            hctx.engine.refund_orphan(hctx.plane, orphan.tenant, at_us);
        }
    }
}

/// Execute one controller tick inside the simulator's interleaved loop:
/// advance every *live* node (the shard topology, id order) to the tick
/// instant, sample its control tap, ask the controller for actions, and
/// apply them with the same primitives an operator would use —
/// [`execute_migration`] for tenant moves, router add/remove for
/// join/drain, an engine brownout floor for nudges. The live ingest
/// feeder performs identical steps at the same logical instants, which
/// is what makes controller decisions (and the migration records they
/// produce) bit-identical across backends under replay.
#[allow(clippy::too_many_arguments)]
fn execute_control_tick(
    ctxs: &mut [NodeCtx<'_>],
    index: &BTreeMap<NodeId, usize>,
    assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
    shard_router: &mut ShardRouter,
    controller: &mut FleetController,
    traffic: &mut TrafficLedger,
    records: &mut Vec<MigrationRecord>,
    max_total_pending: usize,
    at_us: u64,
) {
    // Sample the live topology in id order. Dead nodes already left the
    // router; standby nodes have not entered it — neither is sampled,
    // so the controller can only ever see (and target) online nodes.
    let active: Vec<ShardNode> = shard_router.nodes().to_vec();
    let mut snapshots = Vec::with_capacity(active.len());
    for node in &active {
        let ctx = &mut ctxs[index[&node.id]];
        ctx.engine.run_timers_through(ctx.plane, at_us, true);
        snapshots.push((node.id, ctx.engine.take_control_sample(ctx.plane)));
    }
    let actions = {
        let view = ControllerView {
            active: &active,
            assignments: &*assignments,
            max_total_pending,
        };
        controller.tick(at_us, &snapshots, &view, traffic)
    };
    for action in actions {
        match action {
            ControlAction::Brownout { node, floor } => {
                ctxs[index[&node]].engine.set_brownout_floor(floor);
            }
            ControlAction::Migrate { tenant, to, .. } => {
                records.push(execute_migration(
                    ctxs,
                    index,
                    assignments,
                    shard_router,
                    &crate::controller::spec_of(tenant, to, at_us),
                    at_us,
                ));
            }
            ControlAction::Join {
                node,
                weight,
                moves,
            } => {
                shard_router.add_node(ShardNode { id: node, weight });
                for (tenant, dest) in moves {
                    records.push(execute_migration(
                        ctxs,
                        index,
                        assignments,
                        shard_router,
                        &crate::controller::spec_of(tenant, dest, at_us),
                        at_us,
                    ));
                }
            }
            ControlAction::Drain { node, moves } => {
                for (tenant, dest) in moves {
                    records.push(execute_migration(
                        ctxs,
                        index,
                        assignments,
                        shard_router,
                        &crate::controller::spec_of(tenant, dest, at_us),
                        at_us,
                    ));
                }
                shard_router.remove_node(node);
            }
        }
    }
}

/// One serving node: a full [`ServePlane`] plus its local telemetry sink.
pub struct FabricNode {
    /// Fabric-unique id (stable across join/leave).
    pub id: NodeId,
    /// The node's serving stack.
    pub plane: ServePlane,
    /// The node's local telemetry (drained and merged per run).
    pub telemetry: Telemetry,
}

/// One tenant's quota position, as seen by fleet-level billing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantQuota {
    /// The tenant.
    pub tenant: TenantId,
    /// Its current home node.
    pub node: NodeId,
    /// Remaining prepaid balance.
    pub balance: u64,
    /// Queries consumed (audit-chain `Query` entries).
    pub consumed: u64,
    /// Queries refunded (audit-chain `Refund` entries).
    pub refunded: u64,
}

/// Fleet-level run report: per-node views plus exact merged statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// Merged across all nodes; percentiles are computed over the union
    /// of per-node latency samples, so they are exact.
    pub fleet: ServeReport,
    /// Per-node reports, in node-id order.
    pub per_node: Vec<(NodeId, ServeReport)>,
    /// Per-node telemetry sinks drained and merged into one report.
    pub telemetry: TelemetryReport,
    /// Tenants homed per node at run time, in node-id order.
    pub tenants_per_node: Vec<(NodeId, usize)>,
    /// Refund chain entries appended during this run (across all nodes).
    pub refunds: u64,
    /// Fleet latency histogram: exact bucket-wise merge of every node's
    /// log-bucketed accumulator, so fleet quantiles stay mergeable and
    /// bounded-memory even when the raw sample union would not be.
    pub latency_hist: LogHistogram,
    /// Per-node windowed time series (queue depth, shed rate, batch
    /// occupancy, cache hit rate, latency quantiles), node-id order.
    /// Empty unless [`FabricConfig::observe`] is enabled.
    pub windows: Vec<(NodeId, Vec<WindowSample>)>,
    /// Alarms raised by the per-node detector banks (drift, window
    /// anomaly), tagged with the raising node. Empty when observability
    /// is disabled.
    pub alarms: Vec<(NodeId, Alarm)>,
    /// Per-node flight-recorder contents (bounded rings, oldest first).
    /// Empty when observability is disabled.
    pub traces: Vec<(NodeId, Vec<TraceEvent>)>,
    /// Controller decisions taken during the run, in tick order. Empty
    /// when the controller is disabled (or armed but idle), so a
    /// controller-off report is byte-identical to a pre-controller one.
    pub control: Vec<ControlRecord>,
}

impl FabricReport {
    /// Downstream sheds (admitted, then shed by the platform: NoRoute,
    /// deadline expiry, or node death) in this run. Every one of these
    /// owes the tenant a refund.
    #[must_use]
    pub fn downstream_sheds(&self) -> u64 {
        self.fleet.shed_by(ShedReason::NoRoute)
            + self.fleet.shed_by(ShedReason::DeadlineExpired)
            + self.fleet.shed_by(ShedReason::Failover)
    }

    /// Admitted-then-shed queries whose prepayment was *not* returned.
    /// The refund path exists precisely so this is always zero. Checked
    /// two-sided via [`FabricReport::refunds_balance`] in tests/benches so
    /// an over-refunding bug (minting free quota) cannot hide behind the
    /// saturation here.
    #[must_use]
    pub fn unrefunded_sheds(&self) -> u64 {
        self.downstream_sheds().saturating_sub(self.refunds)
    }

    /// `true` iff refunds exactly match downstream sheds — neither lost
    /// (burned) nor minted (over-refunded) prepaid queries.
    #[must_use]
    pub fn refunds_balance(&self) -> bool {
        self.refunds == self.downstream_sheds()
    }
}

/// What the retrying driver ([`ServeFabric::run_with_retries`]) did with
/// the run's retryable sheds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries scheduled (each re-enters admission at its backoff time).
    pub scheduled: u64,
    /// Retries that were admitted on re-delivery.
    pub succeeded: u64,
    /// Sheds not retried: per-request attempt allowance exhausted.
    pub attempts_exhausted: u64,
    /// Sheds not retried: the backoff would land past the request's
    /// absolute deadline (retries never outlive the deadline).
    pub deadline_denied: u64,
    /// Sheds not retried: the tenant's token bucket was dry.
    pub budget_denied: u64,
}

/// The assembled multi-node serving fabric.
pub struct ServeFabric {
    /// Tenant → node placement (weighted rendezvous + family affinity).
    pub shard_router: ShardRouter,
    nodes: Vec<FabricNode>,
    /// tenant → (home node, model family) — the fabric's routing table,
    /// updated on provision and rebalance.
    assignments: BTreeMap<TenantId, (NodeId, String)>,
    /// Installed families, kept so joining nodes get the same catalog.
    families: BTreeMap<String, Vec<ModelRecord>>,
    /// Installed executables, ditto.
    exec: BTreeMap<ModelId, ExecModel>,
    serve_cfg: ServeConfig,
    observe_cfg: ObserveConfig,
    fault_plan: FaultPlan,
    load_factor: f64,
    next_node_id: NodeId,
    /// Fleet-controller policy (disabled by default).
    controller_cfg: ControllerConfig,
    /// Standby pool: provisioned nodes (planes exist, catalog installed)
    /// outside the routing topology until the controller joins them.
    standby: Vec<ShardNode>,
    /// Per-tenant served-work EWMA driving traffic-weighted bounded
    /// load. Empty (the default) degrades placement to the old
    /// tenant-count measure *exactly*; only controller ticks feed it.
    traffic: TrafficLedger,
}

impl ServeFabric {
    /// Assemble a fabric with one node per `cfg.node_weights` entry plus
    /// one *standby* node per `cfg.controller.standby_weights` entry,
    /// each over its own device fleet (so `fleets.len()` must cover
    /// both). Standby nodes get full planes and the installed catalog
    /// but stay outside the routing topology until the controller joins
    /// them. Panics when the fleet count does not match (a wiring bug,
    /// not a load state).
    #[must_use]
    pub fn new(cfg: &FabricConfig, fleets: Vec<Fleet>) -> Self {
        assert_eq!(
            cfg.node_weights.len() + cfg.controller.standby_weights.len(),
            fleets.len(),
            "one fleet per node weight (active + standby)"
        );
        assert!(
            cfg.load_factor >= 1.0,
            "load_factor below 1.0 cannot place every tenant"
        );
        let shard_nodes: Vec<ShardNode> = cfg
            .node_weights
            .iter()
            .enumerate()
            .map(|(i, &weight)| ShardNode {
                id: i as NodeId,
                weight,
            })
            .collect();
        let standby: Vec<ShardNode> = cfg
            .controller
            .standby_weights
            .iter()
            .enumerate()
            .map(|(i, &weight)| ShardNode {
                id: (cfg.node_weights.len() + i) as NodeId,
                weight,
            })
            .collect();
        let nodes: Vec<FabricNode> = fleets
            .into_iter()
            .enumerate()
            .map(|(i, fleet)| FabricNode {
                id: i as NodeId,
                plane: ServePlane::new(&cfg.serve, fleet),
                telemetry: Telemetry::new(),
            })
            .collect();
        let next_node_id = nodes.len() as NodeId;
        ServeFabric {
            shard_router: ShardRouter::new(shard_nodes, cfg.tenant_affinity),
            nodes,
            assignments: BTreeMap::new(),
            families: BTreeMap::new(),
            exec: BTreeMap::new(),
            serve_cfg: cfg.serve.clone(),
            observe_cfg: cfg.observe.clone(),
            fault_plan: cfg.fault.clone(),
            load_factor: cfg.load_factor,
            next_node_id,
            controller_cfg: cfg.controller.clone(),
            standby,
            traffic: TrafficLedger::new(),
        }
    }

    /// Number of serving nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes, in id order.
    #[must_use]
    pub fn nodes(&self) -> &[FabricNode] {
        &self.nodes
    }

    /// Mutable node access (platform wiring, tests).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut FabricNode> {
        self.nodes.iter_mut().find(|n| n.id == id)
    }

    /// A tenant's current home node.
    #[must_use]
    pub fn home_node(&self, tenant: TenantId) -> Option<NodeId> {
        self.assignments.get(&tenant).map(|(node, _)| *node)
    }

    /// Install a model family on every node (and remember it for joiners).
    pub fn install_family(&mut self, name: &str, records: Vec<ModelRecord>) {
        for node in &mut self.nodes {
            node.plane.install_family(name, records.clone());
        }
        self.families.insert(name.to_string(), records);
    }

    /// Install a real executable on every node (and remember it for
    /// joiners).
    pub fn install_executable(&mut self, id: ModelId, model: ExecModel) {
        for node in &mut self.nodes {
            node.plane.install_executable(id, model.clone());
        }
        self.exec.insert(id, model);
    }

    /// Current tenant count per node (the load the bounded-load cap is
    /// measured against), in node-id order.
    #[must_use]
    pub fn tenant_loads(&self) -> Vec<(NodeId, usize)> {
        self.nodes
            .iter()
            .map(|n| {
                let count = self
                    .assignments
                    .values()
                    .filter(|(node, _)| *node == n.id)
                    .count();
                (n.id, count)
            })
            .collect()
    }

    /// Bounded-load placement for one more tenant given the current
    /// assignment table (pure rendezvous when `load_factor` is
    /// infinite). Loads and the population total are measured in
    /// [`crate::TRAFFIC_UNIT`]s from the traffic ledger: with no
    /// observed traffic every tenant weighs one unit and this is
    /// exactly the old tenant-count measure; once the controller feeds
    /// the ledger, a giant tenant occupies its real share of a node's
    /// cap instead of one slot.
    fn place(&self, tenant: TenantId, family: &str) -> NodeId {
        let total = (self.traffic.total(self.assignments.keys().copied())
            + self.traffic.weight(tenant)) as usize;
        self.shard_router
            .assign_bounded(tenant, family, total, self.load_factor, |id| {
                self.assignments
                    .iter()
                    .filter(|(_, (node, _))| *node == id)
                    .map(|(t, _)| self.traffic.weight(*t) as usize)
                    .sum()
            })
    }

    /// Open a tenant account on the tenant's home node (placement by the
    /// shard router, under the bounded-load cap) and record the
    /// assignment. Returns the home node.
    pub fn register_tenant(
        &mut self,
        tenant: TenantId,
        family: &str,
        meter_key: [u8; 32],
    ) -> NodeId {
        let home = self.place(tenant, family);
        self.assignments.insert(tenant, (home, family.to_string()));
        self.node_mut(home)
            .expect("assigned node exists")
            .plane
            .gateway
            .register_tenant(tenant, meter_key);
        home
    }

    /// Credit prepaid queries on the tenant's home shard.
    pub fn credit(
        &mut self,
        tenant: TenantId,
        queries: u64,
        serial: u64,
        now_ms: u64,
    ) -> Result<(), ServeError> {
        let home = self
            .home_node(tenant)
            .ok_or(ServeError::UnknownTenant(tenant))?;
        self.node_mut(home)
            .expect("assigned node exists")
            .plane
            .gateway
            .credit(tenant, queries, serial, now_ms)
    }

    /// Provision tenants from a plan with test-grade meter keys (serial =
    /// tenant id), mirroring [`crate::ServeSim::provision`];
    /// `core::Platform` wires real vouchers instead.
    pub fn provision(&mut self, plan: &crate::loadgen::LoadPlan) {
        for t in &plan.tenants {
            let mut key = [0u8; 32];
            key[..4].copy_from_slice(&t.id.to_le_bytes());
            self.register_tenant(t.id, &t.model, key);
            self.credit(t.id, t.prepaid_queries, u64::from(t.id), 0)
                .expect("account just opened");
        }
    }

    /// Add a serving node (join): installs the current catalog, registers
    /// the node with the shard router and rebalances. Returns the new
    /// node's id and how many tenants moved onto it.
    pub fn add_node(&mut self, weight: f64, fleet: Fleet) -> (NodeId, usize) {
        let id = self.next_node_id;
        self.next_node_id += 1;
        let mut plane = ServePlane::new(&self.serve_cfg, fleet);
        for (name, records) in &self.families {
            plane.install_family(name, records.clone());
        }
        for (mid, exec) in &self.exec {
            plane.install_executable(*mid, exec.clone());
        }
        self.nodes.push(FabricNode {
            id,
            plane,
            telemetry: Telemetry::new(),
        });
        self.shard_router.add_node(ShardNode { id, weight });
        let moved = self.rebalance();
        (id, moved)
    }

    /// Remove a serving node (leave): its tenants are rebalanced onto the
    /// survivors (whole accounts move, audit chains intact), then the node
    /// is dropped. Returns how many tenants moved.
    pub fn remove_node(&mut self, id: NodeId) -> Result<usize, ServeError> {
        let Some(pos) = self.nodes.iter().position(|n| n.id == id) else {
            return Err(ServeError::UnknownNode(id));
        };
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        self.shard_router.remove_node(id);
        let moved = self.rebalance();
        let node = self.nodes.remove(pos);
        debug_assert_eq!(
            node.plane.gateway.total_pending(),
            0,
            "rebalance happens between runs"
        );
        Ok(moved)
    }

    /// Re-derive every tenant's home from the current topology and move
    /// the accounts whose home changed. Balances, counters and audit
    /// chains travel with the account ([`crate::Gateway::remove_tenant`] /
    /// [`crate::Gateway::adopt_tenant`]). Migration pins hold (a pinned
    /// tenant only moves when its pinned node left); unpinned tenants
    /// re-place in tenant-id order under the bounded-load cap, counting
    /// the pinned population first. Returns the number of moves.
    fn rebalance(&mut self) -> usize {
        let mut moved = 0;
        let tenants: Vec<(TenantId, NodeId, String)> = self
            .assignments
            .iter()
            .map(|(t, (node, family))| (*t, *node, family.clone()))
            .collect();
        // Loads and the population total in traffic units (an empty
        // ledger makes this the tenant-count measure exactly).
        let total = self.traffic.total(tenants.iter().map(|(t, _, _)| *t)) as usize;
        // Pinned tenants occupy their load before anyone re-places.
        let mut placed: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (tenant, _, _) in &tenants {
            if let Some(node) = self.shard_router.pinned(*tenant) {
                *placed.entry(node).or_default() += self.traffic.weight(*tenant) as usize;
            }
        }
        for (tenant, old_home, family) in tenants {
            let new_home = if let Some(pin) = self.shard_router.pinned(tenant) {
                pin
            } else {
                let home = self.shard_router.assign_bounded(
                    tenant,
                    &family,
                    total,
                    self.load_factor,
                    |id| placed.get(&id).copied().unwrap_or(0),
                );
                *placed.entry(home).or_default() += self.traffic.weight(tenant) as usize;
                home
            };
            if new_home == old_home {
                continue;
            }
            self.move_account(tenant, old_home, new_home, family);
            moved += 1;
        }
        moved + self.enforce_caps()
    }

    /// Re-run bounded-cap enforcement over *pinned* tenants after a
    /// topology change. Pins bypass the cap at placement time (a
    /// migration or failover decision), which used to leave a node join
    /// unable to relieve an over-cap node whose tenants were all pinned
    /// — caps were only re-evaluated at registration. Any pinned tenant
    /// still sitting on a node above its bounded cap is unpinned and
    /// re-placed under the cap, in tenant-id order. No-op with an
    /// infinite factor (pure rendezvous has no caps). Returns the moves.
    fn enforce_caps(&mut self) -> usize {
        if !self.load_factor.is_finite() {
            return 0;
        }
        let total = self.traffic.total(self.assignments.keys().copied()) as usize;
        let caps: BTreeMap<NodeId, usize> = self
            .shard_router
            .bounded_caps(total, self.load_factor)
            .into_iter()
            .collect();
        let mut loads: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (tenant, (node, _)) in &self.assignments {
            *loads.entry(*node).or_default() += self.traffic.weight(*tenant) as usize;
        }
        let over = |loads: &BTreeMap<NodeId, usize>, node: NodeId| {
            loads.get(&node).copied().unwrap_or(0) > caps.get(&node).copied().unwrap_or(usize::MAX)
        };
        let pinned: Vec<(TenantId, NodeId, String)> = self
            .assignments
            .iter()
            .filter(|(t, (node, _))| self.shard_router.pinned(**t) == Some(*node))
            .map(|(t, (node, family))| (*t, *node, family.clone()))
            .collect();
        let mut moved = 0;
        for (tenant, old_home, family) in pinned {
            if !over(&loads, old_home) {
                continue; // earlier moves already relieved this node
            }
            let weight = self.traffic.weight(tenant) as usize;
            self.shard_router.unpin(tenant);
            *loads.get_mut(&old_home).expect("home carries load") -= weight;
            let new_home =
                self.shard_router
                    .assign_bounded(tenant, &family, total, self.load_factor, |id| {
                        loads.get(&id).copied().unwrap_or(0)
                    });
            *loads.entry(new_home).or_default() += weight;
            if new_home == old_home {
                continue;
            }
            self.move_account(tenant, old_home, new_home, family);
            moved += 1;
        }
        moved
    }

    /// Move one tenant's whole account between gateways and flip the
    /// routing table (balances, counters and audit chains travel).
    fn move_account(&mut self, tenant: TenantId, from: NodeId, to: NodeId, family: String) {
        let account = self
            .node_mut(from)
            .expect("old home exists during rebalance")
            .plane
            .gateway
            .remove_tenant(tenant)
            .expect("assigned tenant has an account");
        self.node_mut(to)
            .expect("new home exists")
            .plane
            .gateway
            .adopt_tenant(tenant, account);
        self.assignments.insert(tenant, (to, family));
    }

    /// Every tenant's quota position, in tenant order (fleet billing view).
    #[must_use]
    pub fn quota_census(&self) -> Vec<TenantQuota> {
        let mut out = Vec::with_capacity(self.assignments.len());
        for (tenant, (node, _)) in &self.assignments {
            let Some(fnode) = self.nodes.iter().find(|n| n.id == *node) else {
                continue;
            };
            if let Some(account) = fnode.plane.gateway.tenant(*tenant) {
                out.push(TenantQuota {
                    tenant: *tenant,
                    node: *node,
                    balance: account.quota.balance(),
                    consumed: account.quota.log().query_count(),
                    refunded: account.quota.log().refund_count(),
                });
            }
        }
        out
    }

    /// Verify every tenant's audit chain under `key_of(tenant)`. Returns
    /// the number of chains checked; the first broken chain aborts.
    pub fn verify_chains(
        &self,
        key_of: impl Fn(TenantId) -> [u8; 32],
    ) -> Result<usize, MeterError> {
        let mut checked = 0;
        for node in &self.nodes {
            for (tenant, account) in node.plane.gateway.accounts() {
                account.quota.log().verify(&key_of(tenant))?;
                checked += 1;
            }
        }
        Ok(checked)
    }

    /// Replay an arrival-ordered stream through the fabric. The shard
    /// router fans requests out to their tenants' home nodes; each node
    /// runs its own discrete-event simulation (nodes share nothing, so
    /// per-node replays compose deterministically); per-node stats and
    /// telemetry are merged into the fleet view.
    pub fn run(&mut self, stream: &[Request]) -> Result<FabricReport, ServeError> {
        self.run_migrating(stream, &[]).map(|(report, _)| report)
    }

    /// Replay an arrival-ordered stream while executing scheduled live
    /// migrations ([`MigrationSpec`]) at their trigger instants. One
    /// interleaved loop drives every node's event engine — each node
    /// still sees exactly its own (timers, arrival) sequence, so with no
    /// migrations this is bit-identical to the old per-node replay — and
    /// a migration is a cross-node event in that loop: drain the source,
    /// hand off atomically, adopt at the destination, flip + pin the
    /// routing. Specs execute in trigger order (spec order breaks ties);
    /// triggers past the last arrival execute at end of stream. Returns
    /// the fleet report plus one [`MigrationRecord`] per spec.
    pub fn run_migrating(
        &mut self,
        stream: &[Request],
        specs: &[MigrationSpec],
    ) -> Result<(FabricReport, Vec<MigrationRecord>), ServeError> {
        self.run_interleaved(stream, specs, None)
            .map(|(report, records, _)| (report, records))
    }

    /// Replay a stream with a closed retry loop at the driver: an
    /// admission-time shed with a transient reason ([`crate::retryable`])
    /// is re-delivered after a jittered exponential backoff, gated by the
    /// tenant's token bucket and the request's *absolute* deadline (a
    /// retry is never scheduled past it — see [`crate::schedule_retry`]).
    /// Retried deliveries re-enter admission as new arrivals at their
    /// backoff time, so the report's conservation law becomes
    /// `served + shed == arrivals` with arrivals counting retries.
    /// Deterministic: the jitter stream is seeded from the policy.
    pub fn run_with_retries(
        &mut self,
        stream: &[Request],
        policy: &RetryPolicy,
    ) -> Result<(FabricReport, RetryStats), ServeError> {
        self.run_interleaved(stream, &[], Some(policy))
            .map(|(report, _, retries)| (report, retries))
    }

    /// The interleaved multi-node replay loop behind [`ServeFabric::run`],
    /// [`ServeFabric::run_migrating`] and
    /// [`ServeFabric::run_with_retries`]: one event cursor drives every
    /// node's engine, cross-node triggers (injected crashes, scheduled
    /// migrations) fire in stream position, and an optional retry policy
    /// re-delivers transient sheds at their backoff times.
    fn run_interleaved(
        &mut self,
        stream: &[Request],
        specs: &[MigrationSpec],
        retry: Option<&RetryPolicy>,
    ) -> Result<(FabricReport, Vec<MigrationRecord>, RetryStats), ServeError> {
        for spec in specs {
            if !self.assignments.contains_key(&spec.tenant) {
                return Err(ServeError::UnknownTenant(spec.tenant));
            }
            if !self.nodes.iter().any(|n| n.id == spec.to) {
                return Err(ServeError::UnknownNode(spec.to));
            }
        }
        self.validate_fault_plan()?;
        if self.nodes.iter().any(|n| n.plane.family_names().is_empty()) {
            return Err(ServeError::NoFamilies);
        }
        let refunded_before: u64 = self.refunded_total();
        let serve_cfg = self.serve_cfg.clone();
        let observe_cfg = self.observe_cfg.clone();
        let fault_plan = self.fault_plan.clone();
        let load_factor = self.load_factor;
        let triggers = merge_triggers(&fault_plan, specs);
        let mut records: Vec<MigrationRecord> = Vec::with_capacity(specs.len());
        let mut retry_stats = RetryStats::default();
        // The controller runs on the fabric's logical clock: ticks at
        // k·interval interleave with the trigger sequence (triggers win
        // ties, so an operator event at a tick instant lands first on
        // both backends). Disabled, no tap is armed and no ticks fire.
        let controller_on = self.controller_cfg.enabled;
        let mut controller = FleetController::new(
            self.controller_cfg.clone(),
            std::mem::take(&mut self.standby),
        );
        let tick_interval = controller.config().interval_us.max(1);
        let mut next_tick = tick_interval;
        let max_total_pending = serve_cfg.gateway.max_total_pending;

        let per_node: Vec<(NodeId, ServeStats)> = {
            let ServeFabric {
                shard_router,
                nodes,
                assignments,
                traffic,
                ..
            } = self;
            let mut ctxs: Vec<NodeCtx> = nodes
                .iter_mut()
                .map(|node| {
                    let FabricNode {
                        id,
                        plane,
                        telemetry,
                    } = node;
                    let mut engine = ServeEngine::new(serve_cfg.clone(), Some(&*telemetry));
                    if observe_cfg.enabled {
                        engine.set_observer(Some(Box::new(NodeObserver::new(
                            *id,
                            observe_cfg.clone(),
                        ))));
                    }
                    // The simulator never arms dispatch panics: a panic in
                    // this single-threaded loop would kill the whole run
                    // instead of one worker.
                    engine.set_faults(NodeFaults::for_node(&fault_plan, *id, false));
                    engine.set_control_tap(controller_on);
                    NodeCtx {
                        id: *id,
                        plane,
                        engine,
                    }
                })
                .collect();
            let index: BTreeMap<NodeId, usize> =
                ctxs.iter().enumerate().map(|(i, c)| (c.id, i)).collect();
            let mut dead: BTreeSet<NodeId> = BTreeSet::new();

            // Retry machinery (inert without a policy): scheduled
            // re-deliveries keyed by (due time, insertion seq) so
            // same-instant retries pop in schedule order.
            let mut rng = retry.map(|p| StdRng::seed_from_u64(p.seed));
            let mut budgets: BTreeMap<TenantId, RetryBudget> = BTreeMap::new();
            let mut retry_queue: BTreeMap<(u64, u64), (Request, u32)> = BTreeMap::new();
            let mut retry_seq: u64 = 0;

            // One delivery: route to the home node, advance it to the
            // delivery instant, admit-or-shed, and (with a policy) turn a
            // transient shed into a scheduled re-delivery. `attempt` is
            // the number of retries this request already consumed.
            let mut deliver = |request: &Request,
                               attempt: u32,
                               ctxs: &mut [NodeCtx<'_>],
                               assignments: &BTreeMap<TenantId, (NodeId, String)>,
                               shard_router: &ShardRouter,
                               retry_queue: &mut BTreeMap<(u64, u64), (Request, u32)>,
                               retry_seq: &mut u64| {
                // Route at processing time (assignments move mid-stream).
                // Unknown tenants are still routed (by the same hash) so
                // the owning gateway records the denial, exactly like one
                // node handling an unprovisioned key; the admission-time
                // copy inside the engine stays the only per-request clone.
                let home = match assignments.get(&request.tenant) {
                    Some((node, _)) => *node,
                    None => shard_router.assign(request.tenant, &request.model),
                };
                let ctx = &mut ctxs[index[&home]];
                ctx.engine
                    .run_timers_through(ctx.plane, request.arrival_us, true);
                let shed = ctx.engine.on_arrival(ctx.plane, request);
                let (Some(policy), Some(rng)) = (retry, rng.as_mut()) else {
                    return;
                };
                let now_us = request.arrival_us;
                match shed {
                    None => {
                        if attempt > 0 {
                            retry_stats.succeeded += 1;
                        }
                    }
                    Some(reason) if retryable(reason) => {
                        let budget = budgets
                            .entry(request.tenant)
                            .or_insert_with(|| RetryBudget::new(policy, now_us));
                        match schedule_retry(policy, budget, request, attempt + 1, now_us, rng) {
                            RetryDecision::At(at) => {
                                let mut again = request.clone();
                                // Keep the *absolute* deadline: the clock
                                // does not restart because we retried.
                                again.deadline_us = request.deadline_abs_us() - at;
                                again.arrival_us = at;
                                retry_queue.insert((at, *retry_seq), (again, attempt + 1));
                                *retry_seq += 1;
                                retry_stats.scheduled += 1;
                            }
                            RetryDecision::AttemptsExhausted => {
                                retry_stats.attempts_exhausted += 1;
                            }
                            RetryDecision::DeadlineExceeded => {
                                retry_stats.deadline_denied += 1;
                            }
                            RetryDecision::BudgetExhausted => {
                                retry_stats.budget_denied += 1;
                            }
                        }
                    }
                    Some(_) => {}
                }
            };

            let mut pending = triggers.into_iter().peekable();
            for request in stream {
                loop {
                    let trig_at = pending
                        .peek()
                        .map(|(at, _)| *at)
                        .filter(|at| *at <= request.arrival_us);
                    let tick_at =
                        (controller_on && next_tick <= request.arrival_us).then_some(next_tick);
                    let fire_trigger = match (trig_at, tick_at) {
                        (Some(t), Some(k)) => t <= k, // triggers win ties
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    if !fire_trigger {
                        execute_control_tick(
                            &mut ctxs,
                            &index,
                            assignments,
                            shard_router,
                            &mut controller,
                            traffic,
                            &mut records,
                            max_total_pending,
                            next_tick,
                        );
                        next_tick += tick_interval;
                        continue;
                    }
                    let (at_us, trigger) = pending.next().expect("peeked");
                    match trigger {
                        FleetTrigger::Crash { node } => execute_crash(
                            &mut ctxs,
                            &index,
                            assignments,
                            shard_router,
                            traffic,
                            &mut dead,
                            load_factor,
                            node,
                            at_us,
                        ),
                        FleetTrigger::Migrate(spec) if dead.contains(&spec.to) => {
                            // The destination died before the trigger: the
                            // migration never starts (both backends freeze
                            // the record at Planned).
                            let (from, _) = assignments[&spec.tenant];
                            records.push(MigrationRecord::planned(spec, from, at_us));
                        }
                        FleetTrigger::Migrate(spec) => {
                            records.push(execute_migration(
                                &mut ctxs,
                                &index,
                                assignments,
                                shard_router,
                                spec,
                                at_us,
                            ));
                        }
                    }
                }
                // Re-deliveries due at or before this arrival go first
                // (they were shed earlier in stream time).
                while let Some((&(at, seq), _)) = retry_queue.iter().next() {
                    if at > request.arrival_us {
                        break;
                    }
                    let (again, attempt) = retry_queue.remove(&(at, seq)).expect("peeked");
                    deliver(
                        &again,
                        attempt,
                        &mut ctxs,
                        assignments,
                        shard_router,
                        &mut retry_queue,
                        &mut retry_seq,
                    );
                }
                deliver(
                    request,
                    0,
                    &mut ctxs,
                    assignments,
                    shard_router,
                    &mut retry_queue,
                    &mut retry_seq,
                );
            }
            // Triggers past the last arrival execute at end of stream —
            // the drain instant is the stream's final timestamp, not the
            // (possibly far-future) trigger, so timer replay stays
            // bounded and the record shows when the move really happened.
            let end_us = stream.last().map_or(0, |r| r.arrival_us);
            for (_, trigger) in pending {
                match trigger {
                    FleetTrigger::Crash { node } => execute_crash(
                        &mut ctxs,
                        &index,
                        assignments,
                        shard_router,
                        traffic,
                        &mut dead,
                        load_factor,
                        node,
                        end_us,
                    ),
                    FleetTrigger::Migrate(spec) if dead.contains(&spec.to) => {
                        let (from, _) = assignments[&spec.tenant];
                        records.push(MigrationRecord::planned(spec, from, end_us));
                    }
                    FleetTrigger::Migrate(spec) => {
                        records.push(execute_migration(
                            &mut ctxs,
                            &index,
                            assignments,
                            shard_router,
                            spec,
                            end_us,
                        ));
                    }
                }
            }
            // Drain re-deliveries scheduled past the last arrival.
            while let Some((&key, _)) = retry_queue.iter().next() {
                let (again, attempt) = retry_queue.remove(&key).expect("peeked");
                deliver(
                    &again,
                    attempt,
                    &mut ctxs,
                    assignments,
                    shard_router,
                    &mut retry_queue,
                    &mut retry_seq,
                );
            }
            ctxs.into_iter()
                .map(|ctx| {
                    let NodeCtx { id, plane, engine } = ctx;
                    (id, engine.finish(plane))
                })
                .collect()
        };
        // Topology changes persist: drained nodes returned to standby,
        // joined nodes stay in the router.
        let (control, standby) = controller.into_parts();
        self.standby = standby;
        Ok((
            self.assemble_report(per_node, refunded_before, control),
            records,
            retry_stats,
        ))
    }

    /// Run an arrival-ordered stream through the fabric's wall-clock
    /// backend ([`crate::exec`]): one OS thread per node behind bounded
    /// ingest queues. In [`crate::ExecMode::Replay`] the returned fleet
    /// report is bit-identical to [`ServeFabric::run`] on the same
    /// stream; the wall-clock side of the [`crate::LiveReport`] measures
    /// the real threaded pipeline.
    pub fn run_live(
        &mut self,
        stream: &[Request],
        cfg: &crate::exec::ExecConfig,
    ) -> Result<crate::exec::LiveReport, ServeError> {
        crate::exec::run_fabric_live(self, stream, cfg)
    }

    /// Run a stream on the wall-clock backend while executing scheduled
    /// live migrations across the running node *threads*: the ingest
    /// feeder coordinates the drain/handoff over the nodes' bounded
    /// queues (control entries ride in stream position), so accounts and
    /// spliced work move between live threads without stopping traffic.
    /// In [`crate::ExecMode::Replay`] both the fleet report and the
    /// migration records are bit-identical to
    /// [`ServeFabric::run_migrating`] on the same stream and specs.
    pub fn run_live_migrating(
        &mut self,
        stream: &[Request],
        cfg: &crate::exec::ExecConfig,
        specs: &[MigrationSpec],
    ) -> Result<(crate::exec::LiveReport, Vec<MigrationRecord>), ServeError> {
        crate::exec::run_fabric_live_migrating(self, stream, cfg, specs)
    }

    /// Merge per-node accumulators into the fleet report — shared by the
    /// simulated ([`ServeFabric::run`]) and live ([`crate::exec`])
    /// backends so both produce the same exact statistics: percentiles
    /// over the union of per-node latency samples, telemetry drained and
    /// merged, refunds counted against the pre-run baseline.
    pub(crate) fn assemble_report(
        &mut self,
        per_node: Vec<(NodeId, ServeStats)>,
        refunded_before: u64,
        control: Vec<ControlRecord>,
    ) -> FabricReport {
        let mut fleet_stats = ServeStats::new();
        let mut per_node_reports = Vec::with_capacity(per_node.len());
        let mut node_reports_telemetry = Vec::with_capacity(per_node.len());
        let mut fleet_hits = 0;
        let mut fleet_misses = 0;
        let mut fleet_devices = 0;
        let mut windows = Vec::new();
        let mut alarms = Vec::new();
        let mut traces = Vec::new();
        for (id, mut stats) in per_node {
            if let Some(obs) = stats.take_observation() {
                let obs = *obs;
                windows.push((id, obs.windows));
                alarms.extend(obs.alarms.into_iter().map(|a| (id, a)));
                traces.push((id, obs.events));
            }
            let node = self
                .nodes
                .iter()
                .find(|n| n.id == id)
                .expect("stats come from live nodes");
            let report = stats.report(
                node.plane.cache.hits(),
                node.plane.cache.misses(),
                node.plane.router.devices_used(),
            );
            fleet_hits += node.plane.cache.hits();
            fleet_misses += node.plane.cache.misses();
            fleet_devices += node.plane.router.devices_used();
            fleet_stats.merge(&stats);
            per_node_reports.push((id, report));
            node_reports_telemetry.push(node.telemetry.drain());
        }
        let fleet = fleet_stats.report(fleet_hits, fleet_misses, fleet_devices);
        let tenants_per_node = self
            .nodes
            .iter()
            .map(|n| {
                let count = self
                    .assignments
                    .values()
                    .filter(|(node, _)| *node == n.id)
                    .count();
                (n.id, count)
            })
            .collect();
        let latency_hist = fleet_stats.histogram().clone();
        FabricReport {
            fleet,
            per_node: per_node_reports,
            telemetry: TelemetryReport::merged(node_reports_telemetry),
            tenants_per_node,
            refunds: self.refunded_total() - refunded_before,
            latency_hist,
            windows,
            alarms,
            traces,
            control,
        }
    }

    /// Disjoint borrows for the live executor: mutable nodes (one per
    /// worker thread) alongside the routing state the ingest feeder owns
    /// for the duration of the run (mutable so migrations can flip and
    /// pin assignments mid-stream).
    #[allow(clippy::type_complexity)]
    pub(crate) fn split_live(
        &mut self,
    ) -> (
        &mut [FabricNode],
        &mut ShardRouter,
        &mut BTreeMap<TenantId, (NodeId, String)>,
        &mut TrafficLedger,
    ) {
        (
            &mut self.nodes,
            &mut self.shard_router,
            &mut self.assignments,
            &mut self.traffic,
        )
    }

    /// The fleet-controller policy in force.
    #[must_use]
    pub fn controller_config(&self) -> &ControllerConfig {
        &self.controller_cfg
    }

    /// The standby pool (nodes provisioned but outside the routing
    /// topology), id order.
    #[must_use]
    pub fn standby(&self) -> &[ShardNode] {
        &self.standby
    }

    /// The traffic ledger driving traffic-weighted bounded load.
    #[must_use]
    pub fn traffic(&self) -> &TrafficLedger {
        &self.traffic
    }

    /// Take the standby pool for the duration of a run (the live
    /// backend hands it to its controller); restore with
    /// [`ServeFabric::restore_standby`].
    pub(crate) fn take_standby(&mut self) -> Vec<ShardNode> {
        std::mem::take(&mut self.standby)
    }

    /// Store the (possibly changed) standby pool back after a run.
    pub(crate) fn restore_standby(&mut self, standby: Vec<ShardNode>) {
        self.standby = standby;
    }

    /// The per-node serving configuration every node runs.
    #[must_use]
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve_cfg
    }

    /// The per-node observability configuration.
    #[must_use]
    pub fn observe_config(&self) -> &ObserveConfig {
        &self.observe_cfg
    }

    /// The fault schedule both backends execute.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The bounded-load factor placements (including crash evacuations)
    /// run under.
    pub(crate) fn load_factor(&self) -> f64 {
        self.load_factor
    }

    /// Reject fault plans that reference unknown nodes or would crash the
    /// whole fleet (shared by both backends before a run starts).
    pub(crate) fn validate_fault_plan(&self) -> Result<(), ServeError> {
        let mut crashed = BTreeSet::new();
        for (node, _) in self.fault_plan.crashes() {
            if !self.nodes.iter().any(|n| n.id == node) {
                return Err(ServeError::UnknownNode(node));
            }
            crashed.insert(node);
        }
        assert!(
            crashed.len() < self.nodes.len() || self.nodes.is_empty(),
            "a fault plan cannot crash every node"
        );
        Ok(())
    }

    pub(crate) fn refunded_total(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                n.plane
                    .gateway
                    .accounts()
                    .map(|(_, a)| a.refunded)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{LoadPlan, TenantSpec};
    use std::collections::BTreeMap;
    use tinymlops_device::{default_mix, NetworkKind};
    use tinymlops_registry::{ModelFormat, SemVer};

    fn family(name: &str, base_id: u64) -> Vec<ModelRecord> {
        let mut records = Vec::new();
        for (i, (format, size, acc)) in [
            (ModelFormat::F32, 40_000u64, 0.96),
            (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
            (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
        ]
        .into_iter()
        .enumerate()
        {
            let mut metrics = BTreeMap::new();
            metrics.insert("accuracy".into(), acc);
            records.push(ModelRecord {
                id: ModelId(base_id + i as u64),
                name: name.into(),
                version: SemVer::new(1, 0, 0),
                format,
                parent: None,
                artifact: [0; 32],
                size_bytes: size,
                macs: 100_000,
                metrics,
                tags: vec![],
                created_ms: 0,
            });
        }
        records
    }

    fn plan(seed: u64, rps: f64, prepaid: u64, tenants: u32) -> LoadPlan {
        LoadPlan {
            tenants: (0..tenants)
                .map(|i| TenantSpec {
                    id: i + 1,
                    rate_rps: rps / f64::from(tenants),
                    model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                    prepaid_queries: prepaid,
                    deadline_us: 200_000,
                })
                .collect(),
            duration_us: 1_000_000,
            seed,
            feature_dim: 0,
        }
    }

    fn fabric(cfg: &FabricConfig, fleet_size: usize, seed: u64) -> ServeFabric {
        let fleets =
            Fleet::generate(fleet_size, &default_mix(), seed).partition(cfg.node_weights.len());
        let mut f = ServeFabric::new(cfg, fleets);
        f.install_family("kws", family("kws", 0));
        f.install_family("vision", family("vision", 100));
        f
    }

    #[test]
    fn fleet_report_is_the_sum_of_node_reports() {
        let cfg = FabricConfig::default();
        let p = plan(11, 3_000.0, 1_000_000, 12);
        let mut f = fabric(&cfg, 60, 9);
        f.provision(&p);
        let report = f.run(&p.generate()).unwrap();
        let node_served: u64 = report.per_node.iter().map(|(_, r)| r.served).sum();
        assert_eq!(report.fleet.served, node_served);
        assert!(
            report.fleet.served > 500,
            "traffic flowed: {}",
            report.fleet
        );
        let node_shed: u64 = report.per_node.iter().map(|(_, r)| r.shed_total).sum();
        assert_eq!(report.fleet.shed_total, node_shed);
        let homed: usize = report.tenants_per_node.iter().map(|(_, n)| n).sum();
        assert_eq!(homed, 12, "every tenant has exactly one home");
        assert!(
            report.per_node.iter().filter(|(_, r)| r.served > 0).count() > 1,
            "load actually spreads across nodes"
        );
        assert_eq!(
            report.telemetry.counters.get("serve.served").copied(),
            Some(report.fleet.served),
            "merged telemetry agrees with merged stats"
        );
    }

    #[test]
    fn replay_is_deterministic_across_fresh_fabrics() {
        let cfg = FabricConfig::default();
        let p = plan(21, 2_000.0, 1_000_000, 8);
        let stream = p.generate();
        let mut a = fabric(&cfg, 45, 5);
        a.provision(&p);
        let mut b = fabric(&cfg, 45, 5);
        b.provision(&p);
        assert_eq!(a.run(&stream).unwrap(), b.run(&stream).unwrap());
    }

    #[test]
    fn downstream_sheds_are_fully_refunded() {
        // An all-offline fleet: every admitted batch hits NoRoute.
        let cfg = FabricConfig::default();
        let mut fleets = Fleet::generate(30, &default_mix(), 2).partition(3);
        for fleet in &mut fleets {
            for d in &mut fleet.devices {
                d.state.network = NetworkKind::Offline;
            }
        }
        let mut f = ServeFabric::new(&cfg, fleets);
        f.install_family("kws", family("kws", 0));
        f.install_family("vision", family("vision", 100));
        let p = plan(3, 500.0, 10_000, 6);
        f.provision(&p);
        let report = f.run(&p.generate()).unwrap();
        assert_eq!(report.fleet.served, 0);
        assert!(report.downstream_sheds() > 0, "no-route sheds happened");
        assert!(
            report.refunds_balance(),
            "refunds ({}) must exactly match downstream sheds ({})",
            report.refunds,
            report.downstream_sheds()
        );
        assert_eq!(report.unrefunded_sheds(), 0, "every shed was refunded");
        // Refunds restored every balance: nothing was consumed net.
        for q in f.quota_census() {
            assert_eq!(q.balance, 10_000, "tenant {} lost quota", q.tenant);
            assert_eq!(q.consumed, q.refunded);
        }
        // And the chains still verify under the provisioning keys.
        let checked = f
            .verify_chains(|t| {
                let mut key = [0u8; 32];
                key[..4].copy_from_slice(&t.to_le_bytes());
                key
            })
            .unwrap();
        assert_eq!(checked, 6);
    }

    #[test]
    fn join_and_leave_move_whole_accounts() {
        let cfg = FabricConfig::default();
        let p = plan(17, 1_000.0, 5_000, 16);
        let mut f = fabric(&cfg, 60, 7);
        f.provision(&p);
        f.run(&p.generate()).unwrap();
        let balance_sum =
            |f: &ServeFabric| -> u64 { f.quota_census().iter().map(|q| q.balance).sum() };
        let before = balance_sum(&f);
        let extra_fleet = Fleet::generate(20, &default_mix(), 99);
        let (new_id, moved_in) = f.add_node(1.0, extra_fleet);
        assert!(moved_in < 16, "join must not reshuffle everyone");
        assert_eq!(balance_sum(&f), before, "join conserves prepaid quota");
        for q in f.quota_census() {
            assert_eq!(f.home_node(q.tenant), Some(q.node));
        }
        let moved_out = f.remove_node(new_id).unwrap();
        assert_eq!(moved_out, moved_in, "leave returns exactly the joiners");
        assert_eq!(balance_sum(&f), before, "leave conserves prepaid quota");
        // Accounts still serve after two migrations.
        let report = f.run(&p.generate()).unwrap();
        assert!(report.fleet.served > 0);
    }

    #[test]
    fn unknown_node_removal_errors() {
        let cfg = FabricConfig::default();
        let mut f = fabric(&cfg, 30, 1);
        assert!(matches!(
            f.remove_node(42),
            Err(ServeError::UnknownNode(42))
        ));
    }

    #[test]
    fn live_migration_moves_a_tenant_mid_stream() {
        let cfg = FabricConfig::default();
        let p = plan(29, 6_000.0, 1_000_000, 10);
        let stream = p.generate();
        let mut f = fabric(&cfg, 60, 9);
        f.provision(&p);
        let tenant = 1u32;
        let from = f.home_node(tenant).unwrap();
        let to = (0..3).find(|n| *n != from).unwrap();
        let specs = [MigrationSpec {
            tenant,
            to,
            trigger_us: 500_000,
        }];
        let (report, records) = f.run_migrating(&stream, &specs).unwrap();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!((r.tenant, r.from, r.to), (tenant, from, to));
        assert_eq!(r.phase, MigrationPhase::Resumed);
        assert_eq!(r.handoff_us, 500_000);
        assert_eq!(f.home_node(tenant), Some(to), "routing flipped");
        // The account lives on the new home and kept serving there.
        let account = f
            .node_mut(to)
            .unwrap()
            .plane
            .gateway
            .tenant(tenant)
            .expect("account landed on the destination");
        assert!(
            account.admitted > r.admitted_before_handoff,
            "tenant was admitted on its new home after the handoff"
        );
        assert_eq!(account.quota.log().handoff_count(), 1);
        // Conservation across the migration: every arrival accounted,
        // every downstream shed refunded, quota neither burned nor minted.
        assert_eq!(
            report.fleet.served + report.fleet.shed_total,
            stream.len() as u64
        );
        assert!(report.refunds_balance());
        let census = f.quota_census();
        assert_eq!(census.len(), 10, "no tenant lost in the move");
        let spent: u64 = census.iter().map(|q| q.consumed - q.refunded).sum();
        let left: u64 = census.iter().map(|q| q.balance).sum();
        assert_eq!(spent + left, 1_000_000 * 10);
        // And the chain (with its handoff entry) still verifies.
        let checked = f
            .verify_chains(|t| {
                let mut key = [0u8; 32];
                key[..4].copy_from_slice(&t.to_le_bytes());
                key
            })
            .unwrap();
        assert_eq!(checked, 10);
    }

    #[test]
    fn migration_replays_bit_identically_on_the_live_backend() {
        let cfg = FabricConfig::default();
        let p = plan(31, 8_000.0, 1_000_000, 12);
        let stream = p.generate();
        let specs = [
            MigrationSpec {
                tenant: 2,
                to: 2,
                trigger_us: 300_000,
            },
            MigrationSpec {
                tenant: 2,
                to: 0,
                trigger_us: 700_000,
            },
            MigrationSpec {
                tenant: 5,
                to: 1,
                trigger_us: 300_000,
            },
        ];
        let mut sim = fabric(&cfg, 45, 5);
        sim.provision(&p);
        let (sim_report, sim_records) = sim.run_migrating(&stream, &specs).unwrap();
        let mut live = fabric(&cfg, 45, 5);
        live.provision(&p);
        let (live_report, live_records) = live
            .run_live_migrating(&stream, &crate::exec::ExecConfig::default(), &specs)
            .unwrap();
        assert_eq!(live_report.fabric, sim_report, "reports bit-identical");
        assert_eq!(live_records, sim_records, "records bit-identical");
        assert_eq!(sim.quota_census(), live.quota_census());
        assert_eq!(sim.home_node(2), live.home_node(2));
    }

    #[test]
    fn observability_is_off_by_default_and_bit_identical_when_on() {
        use tinymlops_observe::SpanKind;
        let p = plan(29, 6_000.0, 1_000_000, 10);
        let stream = p.generate();
        let mut probe = fabric(&FabricConfig::default(), 60, 9);
        probe.provision(&p);
        let tenant = 1u32;
        let from = probe.home_node(tenant).unwrap();
        let to = (0..3).find(|n| *n != from).unwrap();
        let specs = [MigrationSpec {
            tenant,
            to,
            trigger_us: 500_000,
        }];
        let (off_report, _) = probe.run_migrating(&stream, &specs).unwrap();
        assert!(off_report.windows.is_empty(), "disabled ⇒ no windows");
        assert!(off_report.alarms.is_empty(), "disabled ⇒ no alarms");
        assert!(off_report.traces.is_empty(), "disabled ⇒ no traces");
        assert_eq!(
            off_report.latency_hist.count(),
            off_report.fleet.served,
            "fleet histogram always carries every served sample"
        );

        let cfg_on = FabricConfig {
            // Ring big enough to hold the whole run: the default cache-sized
            // ring would overwrite the mid-stream handoff events.
            observe: ObserveConfig {
                trace_capacity: 1 << 16,
                ..ObserveConfig::enabled()
            },
            ..FabricConfig::default()
        };
        let mut sim = fabric(&cfg_on, 60, 9);
        sim.provision(&p);
        let (sim_report, sim_records) = sim.run_migrating(&stream, &specs).unwrap();
        assert_eq!(
            sim_report.fleet, off_report.fleet,
            "observation never changes a serving decision"
        );
        let mut live = fabric(&cfg_on, 60, 9);
        live.provision(&p);
        let (live_report, live_records) = live
            .run_live_migrating(&stream, &crate::exec::ExecConfig::default(), &specs)
            .unwrap();
        assert_eq!(
            live_report.fabric, sim_report,
            "windows, alarms and traces replay bit-identically on threads"
        );
        assert_eq!(live_records, sim_records);
        let handoffs = sim_report
            .traces
            .iter()
            .flat_map(|(_, events)| events)
            .filter(|e| e.kind == SpanKind::Handoff)
            .count();
        assert_eq!(handoffs, 2, "source and destination each record it");
        assert!(!sim_report.windows.is_empty(), "series populated when on");
    }

    #[test]
    fn migration_pin_survives_rebalance() {
        let cfg = FabricConfig::default();
        let p = plan(17, 1_000.0, 5_000, 8);
        let mut f = fabric(&cfg, 60, 7);
        f.provision(&p);
        let stream = p.generate();
        let tenant = 3u32;
        let from = f.home_node(tenant).unwrap();
        let to = (0..3).find(|n| *n != from).unwrap();
        let specs = [MigrationSpec {
            tenant,
            to,
            trigger_us: 100_000,
        }];
        f.run_migrating(&stream, &specs).unwrap();
        assert_eq!(f.home_node(tenant), Some(to));
        // A join-triggered rebalance must not snap the tenant back.
        let (new_id, _) = f.add_node(1.0, Fleet::generate(20, &default_mix(), 99));
        assert_eq!(f.home_node(tenant), Some(to), "pin holds through join");
        f.remove_node(new_id).unwrap();
        assert_eq!(f.home_node(tenant), Some(to), "pin holds through leave");
    }

    #[test]
    fn migration_validation_rejects_unknowns() {
        let cfg = FabricConfig::default();
        let p = plan(3, 500.0, 1_000, 4);
        let mut f = fabric(&cfg, 30, 2);
        f.provision(&p);
        let stream = p.generate();
        assert!(matches!(
            f.run_migrating(
                &stream,
                &[MigrationSpec {
                    tenant: 99,
                    to: 0,
                    trigger_us: 0
                }]
            ),
            Err(ServeError::UnknownTenant(99))
        ));
        assert!(matches!(
            f.run_migrating(
                &stream,
                &[MigrationSpec {
                    tenant: 1,
                    to: 42,
                    trigger_us: 0
                }]
            ),
            Err(ServeError::UnknownNode(42))
        ));
    }

    #[test]
    fn bounded_load_caps_tenants_per_node() {
        // One hot family + strong affinity: pure rendezvous would pile
        // everyone onto one node; the bounded factor forces overflow to
        // each tenant's next-best node.
        let cfg = FabricConfig {
            tenant_affinity: 1.0,
            load_factor: 1.25,
            ..Default::default()
        };
        let mut f = fabric(&cfg, 30, 4);
        let tenants = 24u32;
        for t in 0..tenants {
            f.register_tenant(t + 1, "kws", [0u8; 32]);
        }
        let caps = f.shard_router.bounded_caps(tenants as usize, 1.25);
        for (node, load) in f.tenant_loads() {
            let cap = caps.iter().find(|(n, _)| *n == node).unwrap().1;
            assert!(load <= cap, "node {node} holds {load} > cap {cap}");
        }
        let max_load = f.tenant_loads().iter().map(|(_, l)| *l).max().unwrap();
        assert!(
            max_load < tenants as usize,
            "full-affinity placement must be split by the cap"
        );
    }
}
