//! The multi-node serving fabric: shard router over N serving planes.
//!
//! [`ServeFabric`] is the fleet-scale refactor of the single-node
//! [`ServePlane`]: a [`ShardRouter`] consistent-hashes every tenant onto a
//! home node (weighted by node capacity, with model-family affinity), each
//! node runs the full gateway → batcher → cache → device-router stack over
//! its own device fleet, and the fabric presents one pane of glass back:
//!
//! * **Partitioned quotas** — a tenant's prepaid balance and audit chain
//!   live on its home node's gateway only. Node join/leave rebalances by
//!   moving whole [`crate::TenantAccount`]s, so the chain stays intact and
//!   billing sync still verifies end-to-end.
//! * **Refunded sheds** — admission charges at the door; a downstream
//!   NoRoute/deadline shed refunds the query through an
//!   [`tinymlops_meter::EntryKind::Refund`] chain entry
//!   ([`crate::Gateway::resolve_shed`]), so prepaid queries are never
//!   silently burned by a shed the platform caused.
//! * **Merged telemetry** — each node records into its own
//!   [`Telemetry`] sink; a run drains them into one fleet-level
//!   [`TelemetryReport`] and merges per-node latency accumulators, so
//!   fleet percentiles are exact, not percentile-of-percentiles.

use crate::request::{Request, ShedReason, TenantId};
use crate::shard::{NodeId, ShardNode, ShardRouter};
use crate::sim::{ExecModel, ServeConfig, ServePlane, ServeSim};
use crate::stats::{ServeReport, ServeStats};
use crate::ServeError;
use std::collections::BTreeMap;
use tinymlops_device::Fleet;
use tinymlops_meter::MeterError;
use tinymlops_observe::{Telemetry, TelemetryReport};
use tinymlops_registry::{ModelId, ModelRecord};

/// Fabric construction parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// One relative capacity weight per serving node (also fixes N).
    pub node_weights: Vec<f64>,
    /// Family-affinity blend for tenant placement (see [`ShardRouter`]).
    pub tenant_affinity: f64,
    /// Per-node serving configuration (every node runs the same policy).
    pub serve: ServeConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            node_weights: vec![1.0; 3],
            tenant_affinity: 0.5,
            serve: ServeConfig::default(),
        }
    }
}

/// One serving node: a full [`ServePlane`] plus its local telemetry sink.
pub struct FabricNode {
    /// Fabric-unique id (stable across join/leave).
    pub id: NodeId,
    /// The node's serving stack.
    pub plane: ServePlane,
    /// The node's local telemetry (drained and merged per run).
    pub telemetry: Telemetry,
}

/// One tenant's quota position, as seen by fleet-level billing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantQuota {
    /// The tenant.
    pub tenant: TenantId,
    /// Its current home node.
    pub node: NodeId,
    /// Remaining prepaid balance.
    pub balance: u64,
    /// Queries consumed (audit-chain `Query` entries).
    pub consumed: u64,
    /// Queries refunded (audit-chain `Refund` entries).
    pub refunded: u64,
}

/// Fleet-level run report: per-node views plus exact merged statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// Merged across all nodes; percentiles are computed over the union
    /// of per-node latency samples, so they are exact.
    pub fleet: ServeReport,
    /// Per-node reports, in node-id order.
    pub per_node: Vec<(NodeId, ServeReport)>,
    /// Per-node telemetry sinks drained and merged into one report.
    pub telemetry: TelemetryReport,
    /// Tenants homed per node at run time, in node-id order.
    pub tenants_per_node: Vec<(NodeId, usize)>,
    /// Refund chain entries appended during this run (across all nodes).
    pub refunds: u64,
}

impl FabricReport {
    /// Downstream sheds (admitted, then NoRoute/deadline) in this run.
    #[must_use]
    pub fn downstream_sheds(&self) -> u64 {
        self.fleet.shed_by(ShedReason::NoRoute) + self.fleet.shed_by(ShedReason::DeadlineExpired)
    }

    /// Admitted-then-shed queries whose prepayment was *not* returned.
    /// The refund path exists precisely so this is always zero. Checked
    /// two-sided via [`FabricReport::refunds_balance`] in tests/benches so
    /// an over-refunding bug (minting free quota) cannot hide behind the
    /// saturation here.
    #[must_use]
    pub fn unrefunded_sheds(&self) -> u64 {
        self.downstream_sheds().saturating_sub(self.refunds)
    }

    /// `true` iff refunds exactly match downstream sheds — neither lost
    /// (burned) nor minted (over-refunded) prepaid queries.
    #[must_use]
    pub fn refunds_balance(&self) -> bool {
        self.refunds == self.downstream_sheds()
    }
}

/// The assembled multi-node serving fabric.
pub struct ServeFabric {
    /// Tenant → node placement (weighted rendezvous + family affinity).
    pub shard_router: ShardRouter,
    nodes: Vec<FabricNode>,
    /// tenant → (home node, model family) — the fabric's routing table,
    /// updated on provision and rebalance.
    assignments: BTreeMap<TenantId, (NodeId, String)>,
    /// Installed families, kept so joining nodes get the same catalog.
    families: BTreeMap<String, Vec<ModelRecord>>,
    /// Installed executables, ditto.
    exec: BTreeMap<ModelId, ExecModel>,
    serve_cfg: ServeConfig,
    next_node_id: NodeId,
}

impl ServeFabric {
    /// Assemble a fabric with one node per `cfg.node_weights` entry, each
    /// over its own device fleet. Panics when the fleet count does not
    /// match the weight count (a wiring bug, not a load state).
    #[must_use]
    pub fn new(cfg: &FabricConfig, fleets: Vec<Fleet>) -> Self {
        assert_eq!(
            cfg.node_weights.len(),
            fleets.len(),
            "one fleet per node weight"
        );
        let shard_nodes: Vec<ShardNode> = cfg
            .node_weights
            .iter()
            .enumerate()
            .map(|(i, &weight)| ShardNode {
                id: i as NodeId,
                weight,
            })
            .collect();
        let nodes: Vec<FabricNode> = fleets
            .into_iter()
            .enumerate()
            .map(|(i, fleet)| FabricNode {
                id: i as NodeId,
                plane: ServePlane::new(&cfg.serve, fleet),
                telemetry: Telemetry::new(),
            })
            .collect();
        let next_node_id = nodes.len() as NodeId;
        ServeFabric {
            shard_router: ShardRouter::new(shard_nodes, cfg.tenant_affinity),
            nodes,
            assignments: BTreeMap::new(),
            families: BTreeMap::new(),
            exec: BTreeMap::new(),
            serve_cfg: cfg.serve.clone(),
            next_node_id,
        }
    }

    /// Number of serving nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes, in id order.
    #[must_use]
    pub fn nodes(&self) -> &[FabricNode] {
        &self.nodes
    }

    /// Mutable node access (platform wiring, tests).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut FabricNode> {
        self.nodes.iter_mut().find(|n| n.id == id)
    }

    /// A tenant's current home node.
    #[must_use]
    pub fn home_node(&self, tenant: TenantId) -> Option<NodeId> {
        self.assignments.get(&tenant).map(|(node, _)| *node)
    }

    /// Install a model family on every node (and remember it for joiners).
    pub fn install_family(&mut self, name: &str, records: Vec<ModelRecord>) {
        for node in &mut self.nodes {
            node.plane.install_family(name, records.clone());
        }
        self.families.insert(name.to_string(), records);
    }

    /// Install a real executable on every node (and remember it for
    /// joiners).
    pub fn install_executable(&mut self, id: ModelId, model: ExecModel) {
        for node in &mut self.nodes {
            node.plane.install_executable(id, model.clone());
        }
        self.exec.insert(id, model);
    }

    /// Open a tenant account on the tenant's home node (placement by the
    /// shard router) and record the assignment. Returns the home node.
    pub fn register_tenant(
        &mut self,
        tenant: TenantId,
        family: &str,
        meter_key: [u8; 32],
    ) -> NodeId {
        let home = self.shard_router.assign(tenant, family);
        self.assignments.insert(tenant, (home, family.to_string()));
        self.node_mut(home)
            .expect("assigned node exists")
            .plane
            .gateway
            .register_tenant(tenant, meter_key);
        home
    }

    /// Credit prepaid queries on the tenant's home shard.
    pub fn credit(
        &mut self,
        tenant: TenantId,
        queries: u64,
        serial: u64,
        now_ms: u64,
    ) -> Result<(), ServeError> {
        let home = self
            .home_node(tenant)
            .ok_or(ServeError::UnknownTenant(tenant))?;
        self.node_mut(home)
            .expect("assigned node exists")
            .plane
            .gateway
            .credit(tenant, queries, serial, now_ms)
    }

    /// Provision tenants from a plan with test-grade meter keys (serial =
    /// tenant id), mirroring [`ServeSim::provision`]; `core::Platform`
    /// wires real vouchers instead.
    pub fn provision(&mut self, plan: &crate::loadgen::LoadPlan) {
        for t in &plan.tenants {
            let mut key = [0u8; 32];
            key[..4].copy_from_slice(&t.id.to_le_bytes());
            self.register_tenant(t.id, &t.model, key);
            self.credit(t.id, t.prepaid_queries, u64::from(t.id), 0)
                .expect("account just opened");
        }
    }

    /// Add a serving node (join): installs the current catalog, registers
    /// the node with the shard router and rebalances. Returns the new
    /// node's id and how many tenants moved onto it.
    pub fn add_node(&mut self, weight: f64, fleet: Fleet) -> (NodeId, usize) {
        let id = self.next_node_id;
        self.next_node_id += 1;
        let mut plane = ServePlane::new(&self.serve_cfg, fleet);
        for (name, records) in &self.families {
            plane.install_family(name, records.clone());
        }
        for (mid, exec) in &self.exec {
            plane.install_executable(*mid, exec.clone());
        }
        self.nodes.push(FabricNode {
            id,
            plane,
            telemetry: Telemetry::new(),
        });
        self.shard_router.add_node(ShardNode { id, weight });
        let moved = self.rebalance();
        (id, moved)
    }

    /// Remove a serving node (leave): its tenants are rebalanced onto the
    /// survivors (whole accounts move, audit chains intact), then the node
    /// is dropped. Returns how many tenants moved.
    pub fn remove_node(&mut self, id: NodeId) -> Result<usize, ServeError> {
        let Some(pos) = self.nodes.iter().position(|n| n.id == id) else {
            return Err(ServeError::UnknownNode(id));
        };
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        self.shard_router.remove_node(id);
        let moved = self.rebalance();
        let node = self.nodes.remove(pos);
        debug_assert_eq!(
            node.plane.gateway.total_pending(),
            0,
            "rebalance happens between runs"
        );
        Ok(moved)
    }

    /// Re-derive every tenant's home from the current topology and move
    /// the accounts whose home changed. Balances, counters and audit
    /// chains travel with the account ([`crate::Gateway::remove_tenant`] /
    /// [`crate::Gateway::adopt_tenant`]). Returns the number of moves.
    fn rebalance(&mut self) -> usize {
        let mut moved = 0;
        let tenants: Vec<(TenantId, NodeId, String)> = self
            .assignments
            .iter()
            .map(|(t, (node, family))| (*t, *node, family.clone()))
            .collect();
        for (tenant, old_home, family) in tenants {
            let new_home = self.shard_router.assign(tenant, &family);
            if new_home == old_home {
                continue;
            }
            let account = self
                .node_mut(old_home)
                .expect("old home exists during rebalance")
                .plane
                .gateway
                .remove_tenant(tenant)
                .expect("assigned tenant has an account");
            self.node_mut(new_home)
                .expect("new home exists")
                .plane
                .gateway
                .adopt_tenant(tenant, account);
            self.assignments.insert(tenant, (new_home, family));
            moved += 1;
        }
        moved
    }

    /// Every tenant's quota position, in tenant order (fleet billing view).
    #[must_use]
    pub fn quota_census(&self) -> Vec<TenantQuota> {
        let mut out = Vec::with_capacity(self.assignments.len());
        for (tenant, (node, _)) in &self.assignments {
            let Some(fnode) = self.nodes.iter().find(|n| n.id == *node) else {
                continue;
            };
            if let Some(account) = fnode.plane.gateway.tenant(*tenant) {
                out.push(TenantQuota {
                    tenant: *tenant,
                    node: *node,
                    balance: account.quota.balance(),
                    consumed: account.quota.log().query_count(),
                    refunded: account.quota.log().refund_count(),
                });
            }
        }
        out
    }

    /// Verify every tenant's audit chain under `key_of(tenant)`. Returns
    /// the number of chains checked; the first broken chain aborts.
    pub fn verify_chains(
        &self,
        key_of: impl Fn(TenantId) -> [u8; 32],
    ) -> Result<usize, MeterError> {
        let mut checked = 0;
        for node in &self.nodes {
            for (tenant, account) in node.plane.gateway.accounts() {
                account.quota.log().verify(&key_of(tenant))?;
                checked += 1;
            }
        }
        Ok(checked)
    }

    /// Replay an arrival-ordered stream through the fabric. The shard
    /// router fans requests out to their tenants' home nodes; each node
    /// runs its own discrete-event simulation (nodes share nothing, so
    /// per-node replays compose deterministically); per-node stats and
    /// telemetry are merged into the fleet view.
    pub fn run(&mut self, stream: &[Request]) -> Result<FabricReport, ServeError> {
        // Fan out by reference — the admission-time copy inside the sim
        // stays the only per-request clone. Unknown tenants are still
        // routed (by the same hash) so the owning gateway records the
        // denial, exactly like one node handling an unprovisioned key.
        let mut per_node_streams: BTreeMap<NodeId, Vec<&Request>> =
            self.nodes.iter().map(|n| (n.id, Vec::new())).collect();
        for request in stream {
            let home = match self.assignments.get(&request.tenant) {
                Some((node, _)) => *node,
                None => self.shard_router.assign(request.tenant, &request.model),
            };
            per_node_streams
                .get_mut(&home)
                .expect("router only yields live nodes")
                .push(request);
        }

        let refunded_before: u64 = self.refunded_total();
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for node in &mut self.nodes {
            let sub_stream = &per_node_streams[&node.id];
            let sim = ServeSim::new(self.serve_cfg.clone(), Some(&node.telemetry));
            let stats = sim.run_collect(&mut node.plane, sub_stream)?;
            per_node.push((node.id, stats));
        }
        Ok(self.assemble_report(per_node, refunded_before))
    }

    /// Run an arrival-ordered stream through the fabric's wall-clock
    /// backend ([`crate::exec`]): one OS thread per node behind bounded
    /// ingest queues. In [`crate::ExecMode::Replay`] the returned fleet
    /// report is bit-identical to [`ServeFabric::run`] on the same
    /// stream; the wall-clock side of the [`crate::LiveReport`] measures
    /// the real threaded pipeline.
    pub fn run_live(
        &mut self,
        stream: &[Request],
        cfg: &crate::exec::ExecConfig,
    ) -> Result<crate::exec::LiveReport, ServeError> {
        crate::exec::run_fabric_live(self, stream, cfg)
    }

    /// Merge per-node accumulators into the fleet report — shared by the
    /// simulated ([`ServeFabric::run`]) and live ([`crate::exec`])
    /// backends so both produce the same exact statistics: percentiles
    /// over the union of per-node latency samples, telemetry drained and
    /// merged, refunds counted against the pre-run baseline.
    pub(crate) fn assemble_report(
        &mut self,
        per_node: Vec<(NodeId, ServeStats)>,
        refunded_before: u64,
    ) -> FabricReport {
        let mut fleet_stats = ServeStats::new();
        let mut per_node_reports = Vec::with_capacity(per_node.len());
        let mut node_reports_telemetry = Vec::with_capacity(per_node.len());
        let mut fleet_hits = 0;
        let mut fleet_misses = 0;
        let mut fleet_devices = 0;
        for (id, stats) in per_node {
            let node = self
                .nodes
                .iter()
                .find(|n| n.id == id)
                .expect("stats come from live nodes");
            let report = stats.report(
                node.plane.cache.hits(),
                node.plane.cache.misses(),
                node.plane.router.devices_used(),
            );
            fleet_hits += node.plane.cache.hits();
            fleet_misses += node.plane.cache.misses();
            fleet_devices += node.plane.router.devices_used();
            fleet_stats.merge(&stats);
            per_node_reports.push((id, report));
            node_reports_telemetry.push(node.telemetry.drain());
        }
        let fleet = fleet_stats.report(fleet_hits, fleet_misses, fleet_devices);
        let tenants_per_node = self
            .nodes
            .iter()
            .map(|n| {
                let count = self
                    .assignments
                    .values()
                    .filter(|(node, _)| *node == n.id)
                    .count();
                (n.id, count)
            })
            .collect();
        FabricReport {
            fleet,
            per_node: per_node_reports,
            telemetry: TelemetryReport::merged(node_reports_telemetry),
            tenants_per_node,
            refunds: self.refunded_total() - refunded_before,
        }
    }

    /// Disjoint borrows for the live executor: mutable nodes (one per
    /// worker thread) alongside the shared routing state the ingest
    /// feeder reads concurrently.
    #[allow(clippy::type_complexity)]
    pub(crate) fn split_live(
        &mut self,
    ) -> (
        &mut [FabricNode],
        &ShardRouter,
        &BTreeMap<TenantId, (NodeId, String)>,
    ) {
        (&mut self.nodes, &self.shard_router, &self.assignments)
    }

    /// The per-node serving configuration every node runs.
    #[must_use]
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve_cfg
    }

    pub(crate) fn refunded_total(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                n.plane
                    .gateway
                    .accounts()
                    .map(|(_, a)| a.refunded)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{LoadPlan, TenantSpec};
    use std::collections::BTreeMap;
    use tinymlops_device::{default_mix, NetworkKind};
    use tinymlops_registry::{ModelFormat, SemVer};

    fn family(name: &str, base_id: u64) -> Vec<ModelRecord> {
        let mut records = Vec::new();
        for (i, (format, size, acc)) in [
            (ModelFormat::F32, 40_000u64, 0.96),
            (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
            (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
        ]
        .into_iter()
        .enumerate()
        {
            let mut metrics = BTreeMap::new();
            metrics.insert("accuracy".into(), acc);
            records.push(ModelRecord {
                id: ModelId(base_id + i as u64),
                name: name.into(),
                version: SemVer::new(1, 0, 0),
                format,
                parent: None,
                artifact: [0; 32],
                size_bytes: size,
                macs: 100_000,
                metrics,
                tags: vec![],
                created_ms: 0,
            });
        }
        records
    }

    fn plan(seed: u64, rps: f64, prepaid: u64, tenants: u32) -> LoadPlan {
        LoadPlan {
            tenants: (0..tenants)
                .map(|i| TenantSpec {
                    id: i + 1,
                    rate_rps: rps / f64::from(tenants),
                    model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                    prepaid_queries: prepaid,
                    deadline_us: 200_000,
                })
                .collect(),
            duration_us: 1_000_000,
            seed,
            feature_dim: 0,
        }
    }

    fn fabric(cfg: &FabricConfig, fleet_size: usize, seed: u64) -> ServeFabric {
        let fleets =
            Fleet::generate(fleet_size, &default_mix(), seed).partition(cfg.node_weights.len());
        let mut f = ServeFabric::new(cfg, fleets);
        f.install_family("kws", family("kws", 0));
        f.install_family("vision", family("vision", 100));
        f
    }

    #[test]
    fn fleet_report_is_the_sum_of_node_reports() {
        let cfg = FabricConfig::default();
        let p = plan(11, 3_000.0, 1_000_000, 12);
        let mut f = fabric(&cfg, 60, 9);
        f.provision(&p);
        let report = f.run(&p.generate()).unwrap();
        let node_served: u64 = report.per_node.iter().map(|(_, r)| r.served).sum();
        assert_eq!(report.fleet.served, node_served);
        assert!(
            report.fleet.served > 500,
            "traffic flowed: {}",
            report.fleet
        );
        let node_shed: u64 = report.per_node.iter().map(|(_, r)| r.shed_total).sum();
        assert_eq!(report.fleet.shed_total, node_shed);
        let homed: usize = report.tenants_per_node.iter().map(|(_, n)| n).sum();
        assert_eq!(homed, 12, "every tenant has exactly one home");
        assert!(
            report.per_node.iter().filter(|(_, r)| r.served > 0).count() > 1,
            "load actually spreads across nodes"
        );
        assert_eq!(
            report.telemetry.counters.get("serve.served").copied(),
            Some(report.fleet.served),
            "merged telemetry agrees with merged stats"
        );
    }

    #[test]
    fn replay_is_deterministic_across_fresh_fabrics() {
        let cfg = FabricConfig::default();
        let p = plan(21, 2_000.0, 1_000_000, 8);
        let stream = p.generate();
        let mut a = fabric(&cfg, 45, 5);
        a.provision(&p);
        let mut b = fabric(&cfg, 45, 5);
        b.provision(&p);
        assert_eq!(a.run(&stream).unwrap(), b.run(&stream).unwrap());
    }

    #[test]
    fn downstream_sheds_are_fully_refunded() {
        // An all-offline fleet: every admitted batch hits NoRoute.
        let cfg = FabricConfig::default();
        let mut fleets = Fleet::generate(30, &default_mix(), 2).partition(3);
        for fleet in &mut fleets {
            for d in &mut fleet.devices {
                d.state.network = NetworkKind::Offline;
            }
        }
        let mut f = ServeFabric::new(&cfg, fleets);
        f.install_family("kws", family("kws", 0));
        f.install_family("vision", family("vision", 100));
        let p = plan(3, 500.0, 10_000, 6);
        f.provision(&p);
        let report = f.run(&p.generate()).unwrap();
        assert_eq!(report.fleet.served, 0);
        assert!(report.downstream_sheds() > 0, "no-route sheds happened");
        assert!(
            report.refunds_balance(),
            "refunds ({}) must exactly match downstream sheds ({})",
            report.refunds,
            report.downstream_sheds()
        );
        assert_eq!(report.unrefunded_sheds(), 0, "every shed was refunded");
        // Refunds restored every balance: nothing was consumed net.
        for q in f.quota_census() {
            assert_eq!(q.balance, 10_000, "tenant {} lost quota", q.tenant);
            assert_eq!(q.consumed, q.refunded);
        }
        // And the chains still verify under the provisioning keys.
        let checked = f
            .verify_chains(|t| {
                let mut key = [0u8; 32];
                key[..4].copy_from_slice(&t.to_le_bytes());
                key
            })
            .unwrap();
        assert_eq!(checked, 6);
    }

    #[test]
    fn join_and_leave_move_whole_accounts() {
        let cfg = FabricConfig::default();
        let p = plan(17, 1_000.0, 5_000, 16);
        let mut f = fabric(&cfg, 60, 7);
        f.provision(&p);
        f.run(&p.generate()).unwrap();
        let balance_sum =
            |f: &ServeFabric| -> u64 { f.quota_census().iter().map(|q| q.balance).sum() };
        let before = balance_sum(&f);
        let extra_fleet = Fleet::generate(20, &default_mix(), 99);
        let (new_id, moved_in) = f.add_node(1.0, extra_fleet);
        assert!(moved_in < 16, "join must not reshuffle everyone");
        assert_eq!(balance_sum(&f), before, "join conserves prepaid quota");
        for q in f.quota_census() {
            assert_eq!(f.home_node(q.tenant), Some(q.node));
        }
        let moved_out = f.remove_node(new_id).unwrap();
        assert_eq!(moved_out, moved_in, "leave returns exactly the joiners");
        assert_eq!(balance_sum(&f), before, "leave conserves prepaid quota");
        // Accounts still serve after two migrations.
        let report = f.run(&p.generate()).unwrap();
        assert!(report.fleet.served > 0);
    }

    #[test]
    fn unknown_node_removal_errors() {
        let cfg = FabricConfig::default();
        let mut f = fabric(&cfg, 30, 1);
        assert!(matches!(
            f.remove_node(42),
            Err(ServeError::UnknownNode(42))
        ));
    }
}
