//! Scenario-test harness: the replay-parity and conservation assertions
//! every fabric experiment repeats, extracted once.
//!
//! Before this module, `e17_live_serving`, `e18_migration` and
//! `e20_faults` each carried its own copy of the same ritual: build two
//! identical fabrics, run the same workload through the simulator and
//! the threaded backend under [`crate::ExecMode::Replay`], and assert
//! the reports (and migration records, and quota censuses) are
//! bit-identical. [`assert_sim_live_parity`] is that ritual as one
//! call; [`assert_conservation`] is the matching bundle of conservation
//! laws (served + shed = arrivals, refunds balance, quota census exact).
//! The controller property tests and `e21_autoscale` drive both.
//!
//! Everything here assumes the test-grade meter keys
//! [`crate::ServeFabric::provision`] installs (serial = tenant id, key =
//! tenant id in the first four bytes — see [`test_meter_key`]).
//! Platform-level experiments with real vouchers keep their own keys.

use crate::exec::ExecConfig;
use crate::fabric::{FabricConfig, FabricReport, MigrationRecord, MigrationSpec, ServeFabric};
use crate::request::{Request, TenantId};
use std::collections::BTreeMap;
use tinymlops_device::{default_mix, Fleet};
use tinymlops_registry::{ModelFormat, ModelId, ModelRecord, SemVer};

/// The test meter-key scheme [`crate::ServeFabric::provision`] uses:
/// the tenant id in the first four bytes, zero elsewhere.
#[must_use]
pub fn test_meter_key(tenant: TenantId) -> [u8; 32] {
    let mut key = [0u8; 32];
    key[..4].copy_from_slice(&tenant.to_le_bytes());
    key
}

/// A three-variant model family (f32 / int8 / int2) with the standard
/// test sizes — the catalog shape every fabric test installs.
#[must_use]
pub fn test_family(name: &str, base_id: u64) -> Vec<ModelRecord> {
    let mut records = Vec::new();
    for (i, (format, size, acc)) in [
        (ModelFormat::F32, 40_000u64, 0.96),
        (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
        (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
    ]
    .into_iter()
    .enumerate()
    {
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        records.push(ModelRecord {
            id: ModelId(base_id + i as u64),
            name: name.into(),
            version: SemVer::new(1, 0, 0),
            format,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 100_000,
            metrics,
            tags: vec![],
            created_ms: 0,
        });
    }
    records
}

/// A fabric over a generated device fleet with the standard `kws` +
/// `vision` test catalog installed. The fleet is partitioned across
/// active *and* standby nodes, matching [`crate::ServeFabric::new`]'s
/// contract.
#[must_use]
pub fn test_fabric(cfg: &FabricConfig, fleet_size: usize, seed: u64) -> ServeFabric {
    let partitions = cfg.node_weights.len() + cfg.controller.standby_weights.len();
    let fleets = Fleet::generate(fleet_size, &default_mix(), seed).partition(partitions);
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", test_family("kws", 0));
    f.install_family("vision", test_family("vision", 100));
    f
}

/// What a parity run produced (the two backends agreed on all of it).
pub struct ParityOutcome {
    /// The fleet report both backends produced, bit-identically.
    pub report: FabricReport,
    /// The migration records both backends produced, bit-identically —
    /// scheduled specs *and* controller-initiated moves.
    pub records: Vec<MigrationRecord>,
    /// The simulator-side fabric after the run (topology, censuses).
    pub sim: ServeFabric,
    /// The live-side fabric after the run.
    pub live: ServeFabric,
}

/// The replay-parity ritual, extracted: build two identical fabrics via
/// `build` (which must provision tenants itself), run `stream` +
/// `specs` through the simulator and through the threaded backend in
/// [`crate::ExecMode::Replay`], and assert that reports, migration
/// records and quota censuses are bit-identical and that no node worker
/// died. Panics (test-style) on any divergence; returns the agreed
/// outcome for further scenario-specific assertions.
pub fn assert_sim_live_parity(
    mut build: impl FnMut() -> ServeFabric,
    stream: &[Request],
    specs: &[MigrationSpec],
) -> ParityOutcome {
    let mut sim = build();
    let (sim_report, sim_records) = sim.run_migrating(stream, specs).expect("sim replay run");
    let mut live = build();
    let (live_report, live_records) = live
        .run_live_migrating(stream, &ExecConfig::default(), specs)
        .expect("live replay run");
    assert!(
        live_report.failures.is_empty(),
        "no node worker may die in a parity run: {:?}",
        live_report.failures
    );
    assert_eq!(
        live_report.fabric, sim_report,
        "threaded replay must be bit-identical to the simulator"
    );
    assert_eq!(
        live_records, sim_records,
        "migration records must be bit-identical across backends"
    );
    assert_eq!(
        live.quota_census(),
        sim.quota_census(),
        "quota censuses must agree after the run"
    );
    ParityOutcome {
        report: sim_report,
        records: sim_records,
        sim,
        live,
    }
}

/// Assert every fleet-level conservation law on a finished fabric:
/// every arrival served or shed, refunds exactly matching downstream
/// sheds (none burned, none minted), the quota census summing back to
/// the prepaid total, and every audit chain verifying under the
/// test-grade keys.
pub fn assert_conservation(
    fabric: &ServeFabric,
    report: &FabricReport,
    arrivals: u64,
    prepaid_total: u64,
) {
    assert_eq!(
        report.fleet.served + report.fleet.shed_total,
        arrivals,
        "every arrival is served or shed"
    );
    assert_eq!(report.unrefunded_sheds(), 0, "no prepaid query burned");
    assert!(
        report.refunds_balance(),
        "refunds ({}) must equal downstream sheds ({})",
        report.refunds,
        report.downstream_sheds()
    );
    let census = fabric.quota_census();
    let spent: u64 = census.iter().map(|q| q.consumed - q.refunded).sum();
    let left: u64 = census.iter().map(|q| q.balance).sum();
    assert_eq!(
        spent + left,
        prepaid_total,
        "prepaid quota neither burned nor minted"
    );
    let checked = fabric
        .verify_chains(test_meter_key)
        .expect("every audit chain verifies");
    assert_eq!(
        checked,
        census.len(),
        "every censused tenant's chain was checked"
    );
}
