//! Closed-loop client population over the serving fabric.
//!
//! The open-loop generator ([`crate::LoadPlan`]) fixes the arrival
//! schedule up front: requests land at their scheduled instants no
//! matter how the plane is doing, which is the right model for knee
//! finding but the wrong one for real clients. A *closed-loop*
//! population issues a request, waits for its outcome, thinks for a
//! seeded exponential gap, and only then issues the next one — so the
//! offered rate is a function of observed latency, and overload shows
//! up as the textbook goodput collapse instead of an unbounded queue.
//!
//! The response leg is the engine's completion tap
//! ([`crate::request::Completion`]): every delivered arrival resolves
//! exactly once (served, admission shed, downstream shed, or failover),
//! and the driver routes that resolution back to the issuing client.
//! Retryable sheds re-enter through the same jittered-exponential
//! machinery as [`crate::ServeFabric::run_with_retries`]
//! ([`crate::schedule_retry`]): per-tenant token buckets, per-request
//! attempt caps, and absolute-deadline preservation — a retry never
//! outlives the deadline the first attempt promised.
//!
//! Two drivers share the client logic:
//!
//! * [`ServeFabric::run_closed_loop`] — deterministic discrete-event
//!   driver on the simulator engines. Same seed ⇒ identical issue/
//!   retry/think trace, and the materialized trace replayed through
//!   [`ServeFabric::run`] on an identical fabric reproduces the fleet
//!   report bit-for-bit (the driver fires exactly the timers the
//!   open-loop replay would, at the same logical instants).
//! * [`ServeFabric::run_closed_loop_wall`] — honest wall-clock clients:
//!   client shard threads (one per core, capped at the population size)
//!   push arrivals into the nodes' lock-free ingest queues and block on
//!   per-shard completion channels. Deterministic only in its
//!   conservation laws, like [`crate::ExecMode::Wall`].

use crate::clock::{Clock, WallClock};
use crate::fabric::{FabricNode, FabricReport, RetryStats, ServeFabric};
use crate::fault::{
    retryable, schedule_retry, NodeFaults, RetryBudget, RetryDecision, RetryPolicy,
};
use crate::observer::NodeObserver;
use crate::request::{Completion, Disposition, Request, RequestId, TenantId};
use crate::shard::NodeId;
use crate::sim::{ServeEngine, ServePlane};
use crate::ServeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

/// Client index lives in the id's high bits so the wall-mode completion
/// router can find the owning shard without a lookup table.
pub(crate) const CLIENT_SHIFT: u32 = 32;

/// Routes completions from node workers back to the client shard that
/// issued the request (wall mode only). Cloned into each worker; the
/// senders are unbounded, so a worker never blocks on a slow client.
#[derive(Clone)]
pub(crate) struct CompletionSink {
    pub(crate) senders: Vec<mpsc::Sender<Completion>>,
}

impl CompletionSink {
    pub(crate) fn forward(&self, completion: Completion) {
        let shard = ((completion.id >> CLIENT_SHIFT) as usize) % self.senders.len().max(1);
        // A gone receiver means its shard already finished (or gave up);
        // the completion is simply unobserved, like a closed browser tab.
        let _ = self.senders[shard].send(completion);
    }
}

/// One closed-loop client's behaviour contract.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Tenant this client bills against.
    pub tenant: TenantId,
    /// Model family it queries.
    pub model: String,
    /// Mean think time between a resolution and the next issue,
    /// microseconds (exponential, seeded; ≤ 0 = re-issue after the
    /// minimum 1µs gap).
    pub think_mean_us: f64,
    /// Per-request latency SLO in microseconds.
    pub deadline_us: u64,
}

/// A whole closed-loop run: the population, its window, and the retry
/// contract every client follows.
#[derive(Debug, Clone)]
pub struct ClientPlan {
    /// The client population (index = client id).
    pub clients: Vec<ClientSpec>,
    /// Issue window, microseconds: no *fresh* request is issued at or
    /// past this instant (outstanding work and scheduled retries still
    /// resolve, so the run drains cleanly).
    pub duration_us: u64,
    /// Master seed for think times, first-issue offsets and features.
    pub seed: u64,
    /// Feature dimension synthesized per request (0 = cost model only).
    pub feature_dim: usize,
    /// Retry contract (attempts, backoff, per-tenant budget, jitter).
    /// `max_attempts: 0` disables retries entirely.
    pub retry: RetryPolicy,
}

/// What the client population observed — the demand-side complement of
/// the supply-side [`FabricReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClosedLoopStats {
    /// First-attempt requests issued.
    pub issued: u64,
    /// Retry re-deliveries issued.
    pub retries: u64,
    /// Requests that ultimately resolved as served.
    pub served: u64,
    /// Served *within the absolute deadline* — the goodput numerator.
    pub goodput: u64,
    /// Requests whose final resolution was a shed (retries exhausted,
    /// denied, or the reason was not retryable).
    pub shed_final: u64,
    /// Wall mode only: requests that never resolved (node died with the
    /// work, or the run's grace window expired). Always 0 in the
    /// deterministic driver.
    pub lost: u64,
    /// What the retry machinery did (same counters as
    /// [`ServeFabric::run_with_retries`]).
    pub retry: RetryStats,
    /// Client-perceived latency of served requests, first issue to final
    /// resolution (includes backoff waits), sorted ascending.
    latencies: Vec<u64>,
}

impl ClosedLoopStats {
    /// Total deliveries pushed at the fabric (first attempts + retries).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.issued + self.retries
    }

    /// Deliveries per first attempt — 1.0 means no retry pressure; the
    /// overload bench gates this staying bounded past the knee.
    #[must_use]
    pub fn retry_amplification(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.pushes() as f64 / self.issued as f64
    }

    /// Fraction of first attempts that were served within deadline.
    #[must_use]
    pub fn goodput_fraction(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.goodput as f64 / self.issued as f64
    }

    /// Nearest-rank percentile of client-perceived served latency,
    /// microseconds (`pct` in (0, 100]); 0 when nothing was served.
    #[must_use]
    pub fn latency_us(&self, pct: f64) -> u64 {
        let n = self.latencies.len();
        if n == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * n as f64).ceil() as usize;
        self.latencies[rank.clamp(1, n) - 1]
    }

    /// Fold another shard's counters into this one.
    fn merge(&mut self, other: &ClosedLoopStats) {
        self.issued += other.issued;
        self.retries += other.retries;
        self.served += other.served;
        self.goodput += other.goodput;
        self.shed_final += other.shed_final;
        self.lost += other.lost;
        self.retry.scheduled += other.retry.scheduled;
        self.retry.succeeded += other.retry.succeeded;
        self.retry.attempts_exhausted += other.retry.attempts_exhausted;
        self.retry.deadline_denied += other.retry.deadline_denied;
        self.retry.budget_denied += other.retry.budget_denied;
        self.latencies.extend_from_slice(&other.latencies);
    }

    fn finalize(&mut self) {
        self.latencies.sort_unstable();
    }
}

/// Result of a deterministic closed-loop run.
#[derive(Debug)]
pub struct ClosedLoopReport {
    /// The supply side: the same merged fleet report an open-loop run
    /// produces.
    pub fabric: FabricReport,
    /// The demand side: what the client population observed.
    pub clients: ClosedLoopStats,
    /// Every delivery in arrival order — a valid open-loop stream.
    /// Replaying it through [`ServeFabric::run`] on an identically
    /// provisioned fabric reproduces `fabric` bit-for-bit.
    pub trace: Vec<Request>,
}

/// Result of a wall-clock closed-loop run.
#[derive(Debug)]
pub struct ClosedLoopLiveReport {
    /// The merged fleet report (conservation laws hold; timings are
    /// real elapsed microseconds, so no bit-parity claim).
    pub fabric: FabricReport,
    /// What the client population observed.
    pub clients: ClosedLoopStats,
    /// Wall-clock time for the whole threaded pipeline, milliseconds.
    pub wall_ms: f64,
}

/// One scheduled (re-)issue: the client, which attempt this is, and the
/// request exactly as it will be delivered.
struct IssueEvent {
    client: usize,
    attempt: u32,
    first_issue_us: u64,
    request: Request,
}

/// One delivery awaiting its completion.
struct PendingReq {
    client: usize,
    attempt: u32,
    first_issue_us: u64,
    request: Request,
}

/// Exponential think gap (same draw idiom as the open-loop generator),
/// clamped to ≥ 1µs so a rejection storm against a zero-think
/// population still advances the clock — without the clamp, an
/// instantly-shed request whose retry is denied would re-issue at the
/// same instant forever.
fn exp_gap_us(rng: &mut StdRng, mean_us: f64) -> u64 {
    if mean_us <= 0.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((-u.ln() * mean_us) as u64).max(1)
}

/// Per-client seeded rng, decorrelated the same way the open-loop
/// generator decorrelates tenants.
fn client_rng(seed: u64, client: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x9e37_79b9u64.wrapping_mul(client as u64 + 1))
}

/// Build one fresh first-attempt request for `client`.
fn make_request(
    client: usize,
    spec: &ClientSpec,
    rng: &mut StdRng,
    at_us: u64,
    feature_dim: usize,
    next_seq: &mut u64,
) -> Request {
    let id = ((client as u64) << CLIENT_SHIFT) | *next_seq;
    *next_seq += 1;
    let features = (feature_dim > 0).then(|| {
        (0..feature_dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect()
    });
    Request {
        id,
        tenant: spec.tenant,
        model: spec.model.clone(),
        arrival_us: at_us,
        deadline_us: spec.deadline_us,
        features,
    }
}

/// Shared per-completion client logic: resolve the pending entry,
/// account the outcome, schedule a retry or the next think-gapped fresh
/// issue. `now_us` is when the client *learns* the outcome (logical
/// resolution time in the sim driver, wall time in the live one).
#[allow(clippy::too_many_arguments)] // internal driver plumbing, not an API
fn on_completion(
    completion: &Completion,
    now_us: u64,
    plan: &ClientPlan,
    pending: &mut BTreeMap<RequestId, PendingReq>,
    events: &mut BTreeMap<(u64, u64), IssueEvent>,
    seq: &mut u64,
    client_rngs: &mut [StdRng],
    client_seqs: &mut [u64],
    budgets: &mut BTreeMap<TenantId, RetryBudget>,
    retry_rng: &mut StdRng,
    stats: &mut ClosedLoopStats,
) {
    // Wall mode can resolve a request the shard already wrote off as
    // lost (grace window expired); the sim driver never does.
    let Some(p) = pending.remove(&completion.id) else {
        return;
    };
    let spec = &plan.clients[p.client];
    let mut think_next = |events: &mut BTreeMap<(u64, u64), IssueEvent>, seq: &mut u64| {
        let rng = &mut client_rngs[p.client];
        let at = now_us.saturating_add(exp_gap_us(rng, spec.think_mean_us));
        if at >= plan.duration_us {
            return;
        }
        let request = make_request(
            p.client,
            spec,
            rng,
            at,
            plan.feature_dim,
            &mut client_seqs[p.client],
        );
        events.insert(
            (at, *seq),
            IssueEvent {
                client: p.client,
                attempt: 0,
                first_issue_us: at,
                request,
            },
        );
        *seq += 1;
    };
    match completion.disposition {
        Disposition::Served { .. } => {
            stats.served += 1;
            if p.attempt > 0 {
                stats.retry.succeeded += 1;
            }
            if completion.at_us <= p.request.deadline_abs_us() {
                stats.goodput += 1;
            }
            stats
                .latencies
                .push(completion.at_us.saturating_sub(p.first_issue_us));
            think_next(events, seq);
        }
        Disposition::Shed(reason) if retryable(reason) && plan.retry.max_attempts > 0 => {
            let budget = budgets
                .entry(p.request.tenant)
                .or_insert_with(|| RetryBudget::new(&plan.retry, now_us));
            match schedule_retry(
                &plan.retry,
                budget,
                &p.request,
                p.attempt + 1,
                now_us,
                retry_rng,
            ) {
                RetryDecision::At(at) => {
                    let mut again = p.request.clone();
                    // Keep the *absolute* deadline: the clock does not
                    // restart because we retried.
                    again.deadline_us = p.request.deadline_abs_us() - at;
                    again.arrival_us = at;
                    events.insert(
                        (at, *seq),
                        IssueEvent {
                            client: p.client,
                            attempt: p.attempt + 1,
                            first_issue_us: p.first_issue_us,
                            request: again,
                        },
                    );
                    *seq += 1;
                    stats.retry.scheduled += 1;
                }
                RetryDecision::AttemptsExhausted => {
                    stats.retry.attempts_exhausted += 1;
                    stats.shed_final += 1;
                    think_next(events, seq);
                }
                RetryDecision::DeadlineExceeded => {
                    stats.retry.deadline_denied += 1;
                    stats.shed_final += 1;
                    think_next(events, seq);
                }
                RetryDecision::BudgetExhausted => {
                    stats.retry.budget_denied += 1;
                    stats.shed_final += 1;
                    think_next(events, seq);
                }
            }
        }
        Disposition::Shed(_) => {
            stats.shed_final += 1;
            think_next(events, seq);
        }
    }
}

impl ServeFabric {
    /// Drive a closed-loop client population through the fabric on the
    /// simulator's discrete-event engines.
    ///
    /// The driver interleaves two event sources on one logical clock:
    /// client (re-)issues and the engines' own timers (batch flushes,
    /// completions). Timers at the same instant as an issue fire first,
    /// exactly as in the open-loop replay, so the materialized
    /// [`ClosedLoopReport::trace`] replayed through [`ServeFabric::run`]
    /// on an identically provisioned fabric reproduces the fleet report
    /// bit-for-bit. Fully deterministic: same plan (and seed), same
    /// trace, same report.
    ///
    /// Scheduled fault-plan triggers and the elasticity controller do
    /// not fire in this driver (closed-loop runs measure the
    /// demand/supply feedback loop in isolation); provision the fabric
    /// without them.
    pub fn run_closed_loop(&mut self, plan: &ClientPlan) -> Result<ClosedLoopReport, ServeError> {
        if self
            .nodes()
            .iter()
            .any(|n| n.plane.family_names().is_empty())
        {
            return Err(ServeError::NoFamilies);
        }
        let refunded_before = self.refunded_total();
        let serve_cfg = self.serve_config().clone();
        let observe_cfg = self.observe_config().clone();
        let fault_plan = self.fault_plan().clone();
        let mut stats = ClosedLoopStats::default();
        let mut trace: Vec<Request> = Vec::new();

        let per_node: Vec<(NodeId, crate::stats::ServeStats)> = {
            let (nodes, shard_router, assignments, _traffic) = self.split_live();
            struct Ctx<'n> {
                id: NodeId,
                plane: &'n mut ServePlane,
                engine: ServeEngine<'n>,
            }
            let mut ctxs: Vec<Ctx> = nodes
                .iter_mut()
                .map(|node| {
                    let FabricNode {
                        id,
                        plane,
                        telemetry,
                    } = node;
                    let mut engine = ServeEngine::new(serve_cfg.clone(), Some(&*telemetry));
                    if observe_cfg.enabled {
                        engine.set_observer(Some(Box::new(NodeObserver::new(
                            *id,
                            observe_cfg.clone(),
                        ))));
                    }
                    engine.set_faults(NodeFaults::for_node(&fault_plan, *id, false));
                    engine.set_completion_tap(true);
                    Ctx {
                        id: *id,
                        plane,
                        engine,
                    }
                })
                .collect();
            let index: BTreeMap<NodeId, usize> =
                ctxs.iter().enumerate().map(|(i, c)| (c.id, i)).collect();

            let mut events: BTreeMap<(u64, u64), IssueEvent> = BTreeMap::new();
            let mut seq: u64 = 0;
            let mut pending: BTreeMap<RequestId, PendingReq> = BTreeMap::new();
            let mut budgets: BTreeMap<TenantId, RetryBudget> = BTreeMap::new();
            let mut retry_rng = StdRng::seed_from_u64(plan.retry.seed);
            let mut client_rngs: Vec<StdRng> = Vec::with_capacity(plan.clients.len());
            let mut client_seqs: Vec<u64> = vec![0; plan.clients.len()];

            for (i, spec) in plan.clients.iter().enumerate() {
                let mut rng = client_rng(plan.seed, i);
                let at = exp_gap_us(&mut rng, spec.think_mean_us);
                if at < plan.duration_us {
                    let request =
                        make_request(i, spec, &mut rng, at, plan.feature_dim, &mut client_seqs[i]);
                    events.insert(
                        (at, seq),
                        IssueEvent {
                            client: i,
                            attempt: 0,
                            first_issue_us: at,
                            request,
                        },
                    );
                    seq += 1;
                }
                client_rngs.push(rng);
            }

            loop {
                let next_issue = events.keys().next().copied();
                let next_timer = ctxs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.engine.next_timer_us().map(|t| (t, i)))
                    .min();
                // Timers due at or before the next issue fire first —
                // the same order `run_timers_through` imposes inside the
                // open-loop replay, which is what makes the trace
                // replayable bit-for-bit.
                let fire_timer = match (next_issue, next_timer) {
                    (None, None) => break,
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (Some((at, _)), Some((t, _))) => t <= at,
                };
                let completions: Vec<Completion> = if fire_timer {
                    let (t, node) = next_timer.expect("matched above");
                    let ctx = &mut ctxs[node];
                    ctx.engine.run_timers_through(ctx.plane, t, true);
                    ctx.engine.take_completions()
                } else {
                    let key = next_issue.expect("matched above");
                    let issue = events.remove(&key).expect("peeked");
                    let request = issue.request;
                    let home = match assignments.get(&request.tenant) {
                        Some((node, _)) => *node,
                        None => shard_router.assign(request.tenant, &request.model),
                    };
                    let ctx = &mut ctxs[index[&home]];
                    ctx.engine
                        .run_timers_through(ctx.plane, request.arrival_us, true);
                    let _ = ctx.engine.on_arrival(ctx.plane, &request);
                    if issue.attempt == 0 {
                        stats.issued += 1;
                    } else {
                        stats.retries += 1;
                    }
                    pending.insert(
                        request.id,
                        PendingReq {
                            client: issue.client,
                            attempt: issue.attempt,
                            first_issue_us: issue.first_issue_us,
                            request: request.clone(),
                        },
                    );
                    trace.push(request);
                    ctx.engine.take_completions()
                };
                for completion in &completions {
                    on_completion(
                        completion,
                        completion.at_us,
                        plan,
                        &mut pending,
                        &mut events,
                        &mut seq,
                        &mut client_rngs,
                        &mut client_seqs,
                        &mut budgets,
                        &mut retry_rng,
                        &mut stats,
                    );
                }
            }
            debug_assert!(pending.is_empty(), "every delivery resolves exactly once");
            ctxs.into_iter()
                .map(|ctx| {
                    let Ctx { id, plane, engine } = ctx;
                    (id, engine.finish(plane))
                })
                .collect()
        };
        let fabric = self.assemble_report(per_node, refunded_before, Vec::new());
        stats.finalize();
        Ok(ClosedLoopReport {
            fabric,
            clients: stats,
            trace,
        })
    }

    /// Drive a closed-loop client population through the fabric's
    /// wall-clock backend: one OS thread per serving node (the same
    /// [`crate::exec`] workers behind the lock-free ingest queues) plus
    /// one client-shard thread per core (capped at the population size).
    /// Each shard owns a slice of the clients, pushes their arrivals
    /// into the home node's bounded queue — a full queue blocks the
    /// shard, which *is* the closed loop's backpressure — and blocks on
    /// its completion channel for the response leg. Think times and
    /// retry jitter draw from the same seeded streams as the
    /// deterministic driver; timings are real, so only conservation
    /// laws (not bit-parity) are guaranteed.
    pub fn run_closed_loop_wall(
        &mut self,
        plan: &ClientPlan,
        queue_capacity: usize,
    ) -> Result<ClosedLoopLiveReport, ServeError> {
        use crate::exec::{node_worker, ExecMode, Ingest, IngestQueue};
        if self
            .nodes()
            .iter()
            .any(|n| n.plane.family_names().is_empty())
        {
            return Err(ServeError::NoFamilies);
        }
        let refunded_before = self.refunded_total();
        let serve_cfg = self.serve_config().clone();
        let observe_cfg = self.observe_config().clone();
        let fault_plan = self.fault_plan().clone();
        let wall = WallClock::new();
        let start = std::time::Instant::now();

        let shards = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(plan.clients.len())
            .max(1);

        let (per_node, mut stats) = {
            let (nodes, shard_router, assignments, _traffic) = self.split_live();
            let queues: Vec<IngestQueue<Ingest>> = nodes
                .iter()
                .map(|_| IngestQueue::new(queue_capacity))
                .collect();
            let node_ids: Vec<NodeId> = nodes.iter().map(|n| n.id).collect();
            let index_of: BTreeMap<NodeId, usize> =
                nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
            // Static routing snapshot: closed-loop wall runs do not
            // migrate tenants, so each client's home node is fixed.
            let home_of: Vec<usize> = plan
                .clients
                .iter()
                .map(|c| {
                    let node = match assignments.get(&c.tenant) {
                        Some((node, _)) => *node,
                        None => shard_router.assign(c.tenant, &c.model),
                    };
                    index_of[&node]
                })
                .collect();
            let mut txs = Vec::with_capacity(shards);
            let mut rxs = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (tx, rx) = mpsc::channel();
                txs.push(tx);
                rxs.push(rx);
            }
            let sink = CompletionSink { senders: txs };

            type JoinOutcome = std::thread::Result<Result<crate::stats::ServeStats, ServeError>>;
            let (node_results, shard_stats): (Vec<JoinOutcome>, Vec<ClosedLoopStats>) =
                std::thread::scope(|s| {
                    let node_handles: Vec<_> = nodes
                        .iter_mut()
                        .zip(&queues)
                        .map(|(node, queue)| {
                            let serve_cfg = &serve_cfg;
                            let wall = &wall;
                            let observer = observe_cfg
                                .enabled
                                .then(|| Box::new(NodeObserver::new(node.id, observe_cfg.clone())));
                            let faults = NodeFaults::for_node(&fault_plan, node.id, false);
                            let plane = &mut node.plane;
                            let telemetry = &node.telemetry;
                            let sink = sink.clone();
                            s.spawn(move || {
                                node_worker(
                                    plane,
                                    telemetry,
                                    serve_cfg,
                                    observer,
                                    faults,
                                    queue,
                                    ExecMode::Wall,
                                    wall,
                                    false,
                                    Some(sink),
                                )
                            })
                        })
                        .collect();
                    // The scope's copy of the senders is dropped here so
                    // shard receivers disconnect once every worker exits.
                    drop(sink);
                    let shard_handles: Vec<_> = rxs
                        .into_iter()
                        .enumerate()
                        .map(|(shard, rx)| {
                            let queues = &queues;
                            let home_of = &home_of;
                            let wall = &wall;
                            s.spawn(move || {
                                client_shard(shard, shards, plan, home_of, queues, rx, wall)
                            })
                        })
                        .collect();
                    let shard_stats = shard_handles
                        .into_iter()
                        .map(|h| h.join().expect("client shards do not panic"))
                        .collect();
                    // All clients are done: no more pushes, ever. Close
                    // the queues so the workers drain out and exit.
                    for queue in &queues {
                        queue.close();
                    }
                    let node_results = node_handles.into_iter().map(|h| h.join()).collect();
                    (node_results, shard_stats)
                });

            let mut per_node = Vec::with_capacity(node_results.len());
            for (node_id, outcome) in node_ids.into_iter().zip(node_results) {
                match outcome {
                    Ok(Ok(node_stats)) => per_node.push((node_id, node_stats)),
                    Ok(Err(err)) => return Err(err),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            let mut stats = ClosedLoopStats::default();
            for shard in &shard_stats {
                stats.merge(shard);
            }
            (per_node, stats)
        };
        let fabric = self.assemble_report(per_node, refunded_before, Vec::new());
        stats.finalize();
        Ok(ClosedLoopLiveReport {
            fabric,
            clients: stats,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}

/// One wall-mode client shard: drives the clients `c` with
/// `c % shards == shard` against real time. Pushes block on full queues
/// (backpressure is the loop's pacing); completions arrive on `rx`.
fn client_shard(
    shard: usize,
    shards: usize,
    plan: &ClientPlan,
    home_of: &[usize],
    queues: &[crate::exec::IngestQueue<crate::exec::Ingest>],
    rx: mpsc::Receiver<Completion>,
    wall: &WallClock,
) -> ClosedLoopStats {
    use crate::exec::Ingest;
    /// Give outstanding work this long past its last sign of life before
    /// writing it off (a dead node's queue refuses pushes immediately;
    /// this guards the run against a wedged one).
    const GRACE_US: u64 = 2_000_000;
    let mut stats = ClosedLoopStats::default();
    let mut events: BTreeMap<(u64, u64), IssueEvent> = BTreeMap::new();
    let mut seq: u64 = 0;
    let mut pending: BTreeMap<RequestId, PendingReq> = BTreeMap::new();
    let mut budgets: BTreeMap<TenantId, RetryBudget> = BTreeMap::new();
    let mut retry_rng = StdRng::seed_from_u64(plan.retry.seed ^ shard as u64);
    let mut client_rngs: Vec<StdRng> = (0..plan.clients.len())
        .map(|i| client_rng(plan.seed, i))
        .collect();
    let mut client_seqs: Vec<u64> = vec![0; plan.clients.len()];

    for (i, spec) in plan.clients.iter().enumerate() {
        if i % shards != shard {
            continue;
        }
        let at = exp_gap_us(&mut client_rngs[i], spec.think_mean_us);
        if at < plan.duration_us {
            let request = make_request(
                i,
                spec,
                &mut client_rngs[i],
                at,
                plan.feature_dim,
                &mut client_seqs[i],
            );
            events.insert(
                (at, seq),
                IssueEvent {
                    client: i,
                    attempt: 0,
                    first_issue_us: at,
                    request,
                },
            );
            seq += 1;
        }
    }

    let mut last_progress = wall.now_us();
    loop {
        // Deliver everything due: stamp the real push time (the worker
        // re-stamps at the gateway door) and push, blocking on full.
        let now = wall.now_us();
        while let Some((&(at, k), _)) = events.iter().next() {
            if at > now {
                break;
            }
            let issue = events.remove(&(at, k)).expect("peeked");
            let mut request = issue.request;
            let push_us = wall.now_us();
            request.arrival_us = push_us;
            let id = request.id;
            pending.insert(
                id,
                PendingReq {
                    client: issue.client,
                    attempt: issue.attempt,
                    first_issue_us: if issue.attempt == 0 {
                        push_us
                    } else {
                        issue.first_issue_us
                    },
                    request: request.clone(),
                },
            );
            if issue.attempt == 0 {
                stats.issued += 1;
            } else {
                stats.retries += 1;
            }
            if !queues[home_of[issue.client]].push(Ingest::Arrival(request)) {
                // The home node is gone: the request can never resolve.
                pending.remove(&id);
                stats.lost += 1;
            }
            last_progress = wall.now_us();
        }
        if events.is_empty() && pending.is_empty() {
            break;
        }
        let now = wall.now_us();
        let until_next = events
            .keys()
            .next()
            .map_or(50_000, |(at, _)| at.saturating_sub(now))
            .clamp(1, 50_000);
        match rx.recv_timeout(Duration::from_micros(until_next)) {
            Ok(completion) => {
                last_progress = wall.now_us();
                on_completion(
                    &completion,
                    wall.now_us(),
                    plan,
                    &mut pending,
                    &mut events,
                    &mut seq,
                    &mut client_rngs,
                    &mut client_seqs,
                    &mut budgets,
                    &mut retry_rng,
                    &mut stats,
                );
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if events.is_empty()
                    && !pending.is_empty()
                    && wall.now_us().saturating_sub(last_progress) > GRACE_US
                {
                    stats.lost += pending.len() as u64;
                    pending.clear();
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every worker exited: nothing outstanding can resolve.
                stats.lost += pending.len() as u64;
                pending.clear();
            }
        }
    }
    stats.finalize();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::loadgen::{LoadPlan, TenantSpec};
    use crate::testkit::{assert_conservation, test_fabric};

    fn tenants() -> Vec<TenantSpec> {
        (1..=4u32)
            .map(|id| TenantSpec {
                id,
                rate_rps: 0.0, // rate is the clients' business here
                model: if id % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: 50_000,
                deadline_us: 40_000,
            })
            .collect()
    }

    fn provisioned_fabric() -> ServeFabric {
        let cfg = FabricConfig {
            node_weights: vec![1.0, 1.0, 1.0],
            ..FabricConfig::default()
        };
        let mut fabric = test_fabric(&cfg, 24, 11);
        fabric.provision(&LoadPlan {
            tenants: tenants(),
            duration_us: 0,
            seed: 0,
            feature_dim: 0,
        });
        fabric
    }

    fn plan(seed: u64) -> ClientPlan {
        ClientPlan {
            clients: tenants()
                .into_iter()
                .flat_map(|t| {
                    (0..3).map(move |_| ClientSpec {
                        tenant: t.id,
                        model: t.model.clone(),
                        think_mean_us: 3_000.0,
                        deadline_us: t.deadline_us,
                    })
                })
                .collect(),
            duration_us: 300_000,
            seed,
            feature_dim: 0,
            retry: RetryPolicy::default(),
        }
    }

    #[test]
    fn same_seed_same_trace_and_stats() {
        let a = provisioned_fabric()
            .run_closed_loop(&plan(9))
            .expect("closed loop runs");
        let b = provisioned_fabric()
            .run_closed_loop(&plan(9))
            .expect("closed loop runs");
        assert!(!a.trace.is_empty(), "clients issued work");
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(
                (x.id, x.tenant, x.arrival_us, x.deadline_us),
                (y.id, y.tenant, y.arrival_us, y.deadline_us)
            );
        }
        assert_eq!(a.clients, b.clients);
        assert_eq!(a.fabric, b.fabric);
    }

    #[test]
    fn different_seeds_differ() {
        let a = provisioned_fabric().run_closed_loop(&plan(9)).unwrap();
        let b = provisioned_fabric().run_closed_loop(&plan(10)).unwrap();
        assert_ne!(
            a.trace.iter().map(|r| r.arrival_us).collect::<Vec<_>>(),
            b.trace.iter().map(|r| r.arrival_us).collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_replays_bit_identically_through_open_loop() {
        let closed = provisioned_fabric().run_closed_loop(&plan(21)).unwrap();
        // The materialized trace is a valid arrival-ordered stream…
        for w in closed.trace.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
        }
        // …and replaying it open-loop on an identical fabric reproduces
        // the closed-loop run's fleet report bit-for-bit.
        let mut replay_fabric = provisioned_fabric();
        let replayed = replay_fabric.run(&closed.trace).expect("replay runs");
        assert_eq!(replayed, closed.fabric);
        // Supply side resolves every delivery exactly once…
        assert_eq!(
            closed.fabric.fleet.served + closed.fabric.fleet.shed_total,
            closed.clients.pushes(),
            "every push served or shed"
        );
        // …and the demand side resolves every first-attempt chain.
        assert_eq!(
            closed.clients.served + closed.clients.shed_final,
            closed.clients.issued,
            "every chain ends served or finally shed"
        );
        assert_eq!(closed.clients.lost, 0);
    }

    #[test]
    fn overload_produces_bounded_retries_deterministically() {
        // Tiny global pending cap: the population's zero think time slams
        // straight into Overload sheds, which are retryable.
        let build = || {
            let cfg = FabricConfig {
                node_weights: vec![1.0],
                serve: crate::sim::ServeConfig {
                    gateway: crate::gateway::GatewayConfig {
                        max_pending_per_tenant: 2,
                        max_total_pending: 2,
                    },
                    ..Default::default()
                },
                ..FabricConfig::default()
            };
            let mut fabric = test_fabric(&cfg, 8, 3);
            fabric.provision(&LoadPlan {
                tenants: tenants(),
                duration_us: 0,
                seed: 0,
                feature_dim: 0,
            });
            fabric
        };
        let mut p = plan(5);
        for c in &mut p.clients {
            c.think_mean_us = 0.0;
        }
        p.duration_us = 100_000;
        let a = build().run_closed_loop(&p).unwrap();
        let b = build().run_closed_loop(&p).unwrap();
        assert_eq!(a.clients, b.clients, "retry machinery is deterministic");
        assert!(
            a.clients.retries > 0,
            "overload must trigger retries: {:?}",
            a.clients
        );
        assert!(
            a.clients.retry_amplification() <= 1.0 + f64::from(RetryPolicy::default().max_attempts),
            "amplification bounded by the attempt cap"
        );
        assert_eq!(
            a.clients.served + a.clients.shed_final,
            a.clients.issued,
            "every chain resolves"
        );
    }

    #[test]
    fn wall_closed_loop_conserves() {
        let mut fabric = provisioned_fabric();
        let mut p = plan(7);
        p.duration_us = 150_000; // 150 ms of real time
        let live = fabric.run_closed_loop_wall(&p, 64).expect("wall run");
        let clients = &live.clients;
        assert!(clients.issued > 0, "clients issued work");
        assert_eq!(
            clients.served + clients.shed_final + clients.lost,
            clients.issued,
            "every chain resolves or is written off: {clients:?}"
        );
        assert_eq!(
            live.fabric.fleet.served + live.fabric.fleet.shed_total,
            clients.pushes(),
            "every accepted push served or shed"
        );
        assert_conservation(
            &fabric,
            &live.fabric,
            clients.pushes(),
            tenants().iter().map(|t| t.prepaid_queries).sum(),
        );
        assert!(live.wall_ms > 0.0);
    }

    #[test]
    fn stats_percentiles_and_amplification() {
        let mut s = ClosedLoopStats {
            issued: 10,
            retries: 5,
            ..Default::default()
        };
        s.latencies = vec![5, 1, 3, 2, 4];
        s.finalize();
        assert_eq!(s.latency_us(50.0), 3);
        assert_eq!(s.latency_us(99.0), 5);
        assert_eq!(s.latency_us(100.0), 5);
        assert!((s.retry_amplification() - 1.5).abs() < 1e-12);
        assert_eq!(ClosedLoopStats::default().latency_us(99.0), 0);
    }
}
