//! # tinymlops_serve — the multi-tenant edge inference serving plane
//!
//! The TinyMLOps paper (Leroux et al., 2022) specifies the operational
//! loop — versioned models (§III-A), metering (§III-C), observability
//! (§III-B), a fragmented fleet (§IV) — but a platform only earns its
//! keep when tenant traffic actually flows through those pieces. This
//! crate is that request path:
//!
//! * [`Gateway`] — per-tenant admission backed by real `meter` quotas
//!   (every admit is a `QuotaManager::consume` landing in the
//!   tamper-evident audit chain) plus per-tenant and global load
//!   shedding.
//! * [`MicroBatcher`] — per-family FIFO queues with size- and
//!   deadline-triggered flush, amortizing dispatch overhead across
//!   requests while preserving per-tenant order.
//! * [`ModelCache`] — byte-budgeted exact-LRU residency for `registry`
//!   variants, so hot models skip the artifact-load penalty.
//! * [`Router`] — constraint-aware sharding over the `device` fleet via
//!   `deploy::select`, skipping offline or battery-critical nodes and
//!   preferring the least-loaded feasible device.
//! * [`ServeSim`] + [`LoadPlan`] — a discrete-event clock and seeded
//!   open-loop load generator that replay ≥100k requests exactly,
//!   reporting p50/p95/p99 latency, throughput, shed rate and cache hit
//!   rate ([`ServeReport`]).
//!
//! One plane is one serving node. The **fabric** layer scales that out:
//!
//! * [`ShardRouter`] — weighted rendezvous placement of tenants onto
//!   nodes, with model-family affinity, minimal movement on node
//!   join/leave, bounded-load overflow to a tenant's next-best node
//!   ([`ShardRouter::assign_bounded`]) and migration pins.
//! * [`ServeFabric`] — N planes behind one shard router: partitioned
//!   quotas (whole accounts move on rebalance, audit chains intact),
//!   refunds for admitted-then-shed work
//!   (`tinymlops_meter::EntryKind::Refund`), and per-node telemetry
//!   merged into exact fleet-level statistics ([`FabricReport`]).
//! * **Live migration** — [`ServeFabric::run_migrating`] /
//!   [`ServeFabric::run_live_migrating`] move a tenant between nodes
//!   *with requests in flight*: queued work spliced, dispatched work
//!   drained in place, the quota partition and audit chain handed off
//!   atomically under a `tinymlops_meter::EntryKind::Handoff` entry
//!   ([`MigrationSpec`] → [`MigrationRecord`]), bit-identically across
//!   the simulated and threaded backends in [`ExecMode::Replay`].
//!
//! `core::Platform` exposes these as `serve_traffic` (one node),
//! `serve_traffic_sharded` (fabric), `serve_traffic_live` (threaded)
//! and `serve_traffic_migrating` / `serve_traffic_live_migrating`
//! (triggered migrations), crediting tenants through real vouchers and
//! feeding counters into `observe::Telemetry`.

pub mod batcher;
pub mod cache;
pub mod clock;
pub mod closedloop;
pub mod controller;
pub mod exec;
pub mod fabric;
pub mod fault;
pub mod gateway;
pub mod loadgen;
pub mod observer;
pub mod request;
pub mod router;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod testkit;

pub use batcher::{Batch, BatchPolicy, FlushTrigger, MicroBatcher, PushOutcome};
pub use cache::{Admission, ModelCache};
pub use clock::{Clock, VirtualClock, WallClock};
pub use closedloop::{
    ClientPlan, ClientSpec, ClosedLoopLiveReport, ClosedLoopReport, ClosedLoopStats,
};
pub use controller::{
    ControlAction, ControlRecord, ControlSample, ControllerConfig, ControllerView, FleetController,
};
pub use exec::{ExecConfig, ExecMode, IngestQueue, LiveReport, MutexIngestQueue, NodeFailure};
pub use fabric::{
    FabricConfig, FabricNode, FabricReport, MigrationPhase, MigrationRecord, MigrationSpec,
    RetryStats, ServeFabric, TenantQuota,
};
pub use fault::{
    degrade_records, retryable, schedule_retry, BrownoutConfig, FaultEvent, FaultKind, FaultPlan,
    RetryBudget, RetryDecision, RetryPolicy,
};
pub use gateway::{Gateway, GatewayConfig, TenantAccount};
pub use loadgen::{ArrivalPattern, LoadPlan, TenantSpec};
pub use observer::{NodeObservation, NodeObserver, ObserveConfig};
pub use request::{Completion, Disposition, Request, RequestId, ShedReason, TenantId};
pub use router::{Route, Router};
pub use shard::{NodeId, ShardNode, ShardRouter, TrafficLedger, TRAFFIC_UNIT};
pub use sim::{run_plan, ExecModel, ServeConfig, ServePlane, ServeSim};
pub use stats::{ServeReport, ServeStats};

/// Errors from the serving plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The plane has no installed model families.
    NoFamilies,
    /// A named family is not installed.
    UnknownFamily(String),
    /// An operation referenced a tenant with no gateway account (a
    /// provisioning-order bug in the caller).
    UnknownTenant(request::TenantId),
    /// An operation referenced a serving node not in the fabric.
    UnknownNode(shard::NodeId),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoFamilies => write!(f, "serving plane has no installed model families"),
            ServeError::UnknownFamily(name) => write!(f, "model family `{name}` not installed"),
            ServeError::UnknownTenant(id) => {
                write!(f, "tenant {id} has no gateway account (register it first)")
            }
            ServeError::UnknownNode(id) => {
                write!(f, "serving node {id} is not part of the fabric")
            }
        }
    }
}

impl std::error::Error for ServeError {}
