//! Deterministic open-loop load generation.
//!
//! Tenants issue Poisson request streams (exponential inter-arrivals) at
//! configured rates against configured model families. The merged stream
//! is a pure function of the seed, so any run — 100 requests or 100k —
//! replays identically.
//!
//! Beyond the homogeneous stream, [`LoadPlan::generate_shaped`] produces
//! non-homogeneous arrivals ([`ArrivalPattern`]): diurnal curves,
//! periodic bursts, a one-off flash crowd, and an adversarial
//! quota-exhaust pattern. All are drawn by Lewis–Shedler thinning of a
//! homogeneous process at the pattern's peak rate, so they stay pure
//! functions of the seed too.

use crate::request::{Request, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Time-varying arrival shape for [`LoadPlan::generate_shaped`].
///
/// Every pattern is a deterministic rate-multiplier curve `m(t)` applied
/// to each tenant's contracted `rate_rps`. Arrivals are drawn by
/// Lewis–Shedler thinning: candidates come from a homogeneous Poisson
/// process at the pattern's *peak* rate and each is accepted with
/// probability `m(t) / peak`, which yields an exact non-homogeneous
/// Poisson process while remaining a pure function of the seed.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson at the contracted rate. `generate_shaped`
    /// with this pattern is byte-identical to [`LoadPlan::generate`]
    /// (it delegates — thinning would consume extra RNG draws and
    /// perturb the stream).
    Poisson,
    /// Sinusoidal day/night curve:
    /// `m(t) = 1 + amplitude · sin(2πt / period_us)`.
    /// `amplitude` is clamped to `[0, 1]` so the rate never goes
    /// negative; the time-average rate stays the contracted rate.
    Diurnal {
        /// One full day/night cycle, microseconds.
        period_us: u64,
        /// Peak deviation from the contracted rate, `0..=1`.
        amplitude: f64,
    },
    /// Periodic bursts: `m(t) = height` during the first `width_us` of
    /// every `period_us` window, `1` elsewhere.
    Bursts {
        /// Burst repetition period, microseconds.
        period_us: u64,
        /// Burst width, microseconds (clamped to the period).
        width_us: u64,
        /// Rate multiplier inside a burst (≥ 1 to be a burst).
        height: f64,
    },
    /// One flash crowd: baseline `1`, linear ramp to `peak` over
    /// `ramp_us` starting at `at_us`, hold at `peak` for `hold_us`,
    /// linear decay back to baseline over `decay_us`.
    FlashCrowd {
        /// When the crowd starts arriving, microseconds.
        at_us: u64,
        /// Ramp-up duration, microseconds.
        ramp_us: u64,
        /// Time spent at the peak, microseconds.
        hold_us: u64,
        /// Decay-back duration, microseconds.
        decay_us: u64,
        /// Rate multiplier at the top of the crowd.
        peak: f64,
    },
    /// Adversarial quota burn: each tenant offers `multiplier ×` its
    /// contracted rate from `t = 0` until its *expected* cumulative
    /// volume reaches `prepaid_queries`, then keeps hammering at the
    /// contracted rate — so virtually every post-exhaustion arrival is
    /// a guaranteed `QuotaExhausted` denial, stressing the gateway's
    /// cheapest shed path and the meter's audit chain.
    QuotaExhaust {
        /// Burn-phase rate multiplier (≥ 1).
        multiplier: f64,
    },
}

impl ArrivalPattern {
    /// Peak of `m(t)` over the run — the homogeneous rate the thinning
    /// candidates are drawn at. Always ≥ a small positive floor.
    fn peak_multiplier(&self) -> f64 {
        let peak = match *self {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::Diurnal { amplitude, .. } => 1.0 + amplitude.clamp(0.0, 1.0),
            ArrivalPattern::Bursts { height, .. } => height.max(1.0),
            ArrivalPattern::FlashCrowd { peak, .. } => peak.max(1.0),
            ArrivalPattern::QuotaExhaust { multiplier } => multiplier.max(1.0),
        };
        peak.max(f64::EPSILON)
    }

    /// Rate multiplier at simulated time `t_us` for `tenant` (only
    /// `QuotaExhaust` is tenant-dependent: its burn window ends when the
    /// tenant's prepaid volume is expected spent).
    fn multiplier(&self, t_us: f64, tenant: &TenantSpec) -> f64 {
        match *self {
            ArrivalPattern::Poisson => 1.0,
            ArrivalPattern::Diurnal {
                period_us,
                amplitude,
            } => {
                if period_us == 0 {
                    return 1.0;
                }
                let amplitude = amplitude.clamp(0.0, 1.0);
                let phase = std::f64::consts::TAU * (t_us / period_us as f64);
                1.0 + amplitude * phase.sin()
            }
            ArrivalPattern::Bursts {
                period_us,
                width_us,
                height,
            } => {
                if period_us == 0 {
                    return 1.0;
                }
                let into = t_us % period_us as f64;
                if into < width_us.min(period_us) as f64 {
                    height.max(1.0)
                } else {
                    1.0
                }
            }
            ArrivalPattern::FlashCrowd {
                at_us,
                ramp_us,
                hold_us,
                decay_us,
                peak,
            } => {
                let peak = peak.max(1.0);
                let start = at_us as f64;
                let top = start + ramp_us as f64;
                let fall = top + hold_us as f64;
                let end = fall + decay_us as f64;
                if t_us < start || t_us >= end {
                    1.0
                } else if t_us < top {
                    // Linear ramp; ramp_us > 0 here since t ∈ [start, top).
                    1.0 + (peak - 1.0) * ((t_us - start) / ramp_us as f64)
                } else if t_us < fall {
                    peak
                } else {
                    peak - (peak - 1.0) * ((t_us - fall) / decay_us as f64)
                }
            }
            ArrivalPattern::QuotaExhaust { multiplier } => {
                let multiplier = multiplier.max(1.0);
                // Expected burn window: prepaid volume at multiplier× rate.
                let burn_rps = tenant.rate_rps * multiplier;
                let window_us = if burn_rps > 0.0 {
                    tenant.prepaid_queries as f64 / burn_rps * 1e6
                } else {
                    0.0
                };
                if t_us < window_us {
                    multiplier
                } else {
                    1.0
                }
            }
        }
    }
}

/// One tenant's traffic contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id.
    pub id: TenantId,
    /// Mean request rate, requests per simulated second.
    pub rate_rps: f64,
    /// Model family this tenant queries.
    pub model: String,
    /// Prepaid queries purchased up front.
    pub prepaid_queries: u64,
    /// Per-request latency SLO in microseconds.
    pub deadline_us: u64,
}

/// A whole run's traffic description.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The tenants and their rates.
    pub tenants: Vec<TenantSpec>,
    /// Stream duration in simulated microseconds.
    pub duration_us: u64,
    /// Master seed.
    pub seed: u64,
    /// Feature dimension to synthesize per request (0 = no payload; the
    /// sim then uses the virtual cost model only).
    pub feature_dim: usize,
}

impl LoadPlan {
    /// Materialize the merged, arrival-ordered request stream.
    #[must_use]
    pub fn generate(&self) -> Vec<Request> {
        let mut requests = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (0x9e37_79b9 * (ti as u64 + 1)));
            if tenant.rate_rps <= 0.0 {
                continue;
            }
            let mean_gap_us = 1e6 / tenant.rate_rps;
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() * mean_gap_us;
                if t >= self.duration_us as f64 {
                    break;
                }
                let features = if self.feature_dim == 0 {
                    None
                } else {
                    Some(
                        (0..self.feature_dim)
                            .map(|_| rng.gen_range(-1.0f32..1.0))
                            .collect(),
                    )
                };
                requests.push(Request {
                    id: 0, // assigned after the merge sort
                    tenant: tenant.id,
                    model: tenant.model.clone(),
                    arrival_us: t as u64,
                    deadline_us: tenant.deadline_us,
                    features,
                });
            }
        }
        // Merge: order by (arrival, tenant) — deterministic even when two
        // tenants collide on a microsecond.
        requests.sort_by_key(|r| (r.arrival_us, r.tenant));
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        requests
    }

    /// Materialize a *shaped* (non-homogeneous Poisson) request stream.
    ///
    /// Candidates are drawn per tenant at the pattern's peak rate and
    /// thinned by `m(t) / peak` (Lewis–Shedler), so the accepted stream
    /// is an exact non-homogeneous Poisson process with intensity
    /// `rate_rps · m(t)`. Deterministic: same plan + pattern ⇒ identical
    /// stream. [`ArrivalPattern::Poisson`] delegates to
    /// [`LoadPlan::generate`] and is byte-identical to it.
    #[must_use]
    pub fn generate_shaped(&self, pattern: &ArrivalPattern) -> Vec<Request> {
        if matches!(pattern, ArrivalPattern::Poisson) {
            return self.generate();
        }
        let peak = pattern.peak_multiplier();
        let mut requests = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (0x9e37_79b9 * (ti as u64 + 1)));
            if tenant.rate_rps <= 0.0 {
                continue;
            }
            let mean_gap_us = 1e6 / (tenant.rate_rps * peak);
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() * mean_gap_us;
                if t >= self.duration_us as f64 {
                    break;
                }
                // Thin the candidate: keep with probability m(t)/peak.
                let keep: f64 = rng.gen_range(0.0..1.0);
                if keep >= pattern.multiplier(t, tenant) / peak {
                    continue;
                }
                let features = if self.feature_dim == 0 {
                    None
                } else {
                    Some(
                        (0..self.feature_dim)
                            .map(|_| rng.gen_range(-1.0f32..1.0))
                            .collect(),
                    )
                };
                requests.push(Request {
                    id: 0, // assigned after the merge sort
                    tenant: tenant.id,
                    model: tenant.model.clone(),
                    arrival_us: t as u64,
                    deadline_us: tenant.deadline_us,
                    features,
                });
            }
        }
        requests.sort_by_key(|r| (r.arrival_us, r.tenant));
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        requests
    }

    /// Total offered load in requests per second.
    #[must_use]
    pub fn offered_rps(&self) -> f64 {
        self.tenants.iter().map(|t| t.rate_rps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> LoadPlan {
        LoadPlan {
            tenants: vec![
                TenantSpec {
                    id: 1,
                    rate_rps: 500.0,
                    model: "a".into(),
                    prepaid_queries: 10_000,
                    deadline_us: 50_000,
                },
                TenantSpec {
                    id: 2,
                    rate_rps: 250.0,
                    model: "b".into(),
                    prepaid_queries: 10_000,
                    deadline_us: 50_000,
                },
            ],
            duration_us: 2_000_000,
            seed,
            feature_dim: 0,
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let a = plan(7).generate();
        let b = plan(7).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.arrival_us, x.tenant, x.id),
                (y.arrival_us, y.tenant, y.id)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = plan(7).generate();
        let b = plan(8).generate();
        assert_ne!(
            a.iter().map(|r| r.arrival_us).collect::<Vec<_>>(),
            b.iter().map(|r| r.arrival_us).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rate_is_roughly_honored() {
        let stream = plan(3).generate();
        // 750 rps over 2 s → ~1500 requests; Poisson noise ±20%.
        assert!(
            (1200..1800).contains(&stream.len()),
            "got {} requests",
            stream.len()
        );
        let t1 = stream.iter().filter(|r| r.tenant == 1).count();
        let t2 = stream.iter().filter(|r| r.tenant == 2).count();
        assert!(t1 > t2, "tenant 1 offers twice the rate");
    }

    #[test]
    fn arrivals_are_sorted_and_ids_monotone() {
        let stream = plan(5).generate();
        for w in stream.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn features_generated_when_requested() {
        let mut p = plan(1);
        p.feature_dim = 16;
        p.duration_us = 100_000;
        let stream = p.generate();
        assert!(!stream.is_empty());
        assert!(stream
            .iter()
            .all(|r| r.features.as_ref().map(Vec::len) == Some(16)));
    }

    // ---- shaped (non-homogeneous) streams -------------------------------

    fn count_in(stream: &[Request], lo_us: u64, hi_us: u64) -> usize {
        stream
            .iter()
            .filter(|r| (lo_us..hi_us).contains(&r.arrival_us))
            .count()
    }

    #[test]
    fn shaped_poisson_is_byte_identical_to_generate() {
        let mut p = plan(7);
        p.feature_dim = 4;
        let a = p.generate();
        let b = p.generate_shaped(&ArrivalPattern::Poisson);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.id, x.tenant, x.arrival_us),
                (y.id, y.tenant, y.arrival_us)
            );
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn shaped_same_seed_same_stream() {
        let pat = ArrivalPattern::Diurnal {
            period_us: 1_000_000,
            amplitude: 0.8,
        };
        let a = plan(11).generate_shaped(&pat);
        let b = plan(11).generate_shaped(&pat);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.arrival_us, x.tenant, x.id),
                (y.arrival_us, y.tenant, y.id)
            );
        }
        let c = plan(12).generate_shaped(&pat);
        assert_ne!(
            a.iter().map(|r| r.arrival_us).collect::<Vec<_>>(),
            c.iter().map(|r| r.arrival_us).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shaped_arrivals_sorted_and_ids_monotone() {
        let pat = ArrivalPattern::Bursts {
            period_us: 200_000,
            width_us: 20_000,
            height: 8.0,
        };
        let stream = plan(5).generate_shaped(&pat);
        assert!(!stream.is_empty());
        for w in stream.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn diurnal_day_outweighs_night() {
        // One full cycle over the 2 s run: sin > 0 on the first half
        // (day), < 0 on the second (night).
        let p = plan(3);
        let stream = p.generate_shaped(&ArrivalPattern::Diurnal {
            period_us: p.duration_us,
            amplitude: 0.9,
        });
        let day = count_in(&stream, 0, p.duration_us / 2);
        let night = count_in(&stream, p.duration_us / 2, p.duration_us);
        assert!(
            day > night * 2,
            "day {day} should dwarf night {night} at amplitude 0.9"
        );
    }

    #[test]
    fn bursts_concentrate_arrivals_in_windows() {
        // 10× bursts over 10% of each period: expected in-window share
        // = 1.0/(1.0+0.9) ≈ 53% of arrivals in 10% of the time.
        let p = plan(9);
        let pat = ArrivalPattern::Bursts {
            period_us: 200_000,
            width_us: 20_000,
            height: 10.0,
        };
        let stream = p.generate_shaped(&pat);
        let in_burst = stream
            .iter()
            .filter(|r| r.arrival_us % 200_000 < 20_000)
            .count();
        let share = in_burst as f64 / stream.len() as f64;
        assert!(
            share > 0.40,
            "expected ~53% of arrivals inside bursts, got {share:.2}"
        );
    }

    #[test]
    fn flash_crowd_spikes_at_the_epicenter() {
        let p = plan(13);
        let pat = ArrivalPattern::FlashCrowd {
            at_us: 800_000,
            ramp_us: 100_000,
            hold_us: 200_000,
            decay_us: 100_000,
            peak: 12.0,
        };
        let stream = p.generate_shaped(&pat);
        // Density during the hold vs an equal-width baseline window.
        let hold = count_in(&stream, 900_000, 1_100_000);
        let baseline = count_in(&stream, 200_000, 400_000);
        assert!(
            hold > baseline * 5,
            "hold window {hold} should dwarf baseline {baseline} at peak 12×"
        );
        // Outside the crowd the stream is still flowing.
        assert!(baseline > 0);
    }

    #[test]
    fn quota_exhaust_front_loads_the_prepaid_volume() {
        let mut p = plan(21);
        // Tenant 1: 500 rps, 1 000 prepaid, 10× burn ⇒ expected burn
        // window 1 000 / 5 000 rps = 200 ms.
        p.tenants[0].prepaid_queries = 1_000;
        p.tenants.truncate(1);
        let stream = p.generate_shaped(&ArrivalPattern::QuotaExhaust { multiplier: 10.0 });
        let burned = count_in(&stream, 0, 200_000);
        assert!(
            (800..1200).contains(&burned),
            "≈1000 arrivals expected inside the 200 ms burn window, got {burned}"
        );
        // After the burn the tenant falls back to its contracted rate:
        // 500 rps over the remaining 1.8 s ≈ 900 arrivals.
        let after = count_in(&stream, 200_000, p.duration_us);
        assert!(
            (650..1150).contains(&after),
            "≈900 post-burn arrivals expected, got {after}"
        );
    }

    #[test]
    fn degenerate_pattern_params_fall_back_to_baseline() {
        let p = plan(4);
        let zero_period = p.generate_shaped(&ArrivalPattern::Diurnal {
            period_us: 0,
            amplitude: 0.5,
        });
        // m(t) ≡ 1 but peak = 1.5, so thinning keeps 2/3 of candidates
        // drawn at 1.5× — the *rate* matches baseline even though the
        // stream differs. 750 rps × 2 s ≈ 1500.
        assert!(
            (1200..1800).contains(&zero_period.len()),
            "got {} requests",
            zero_period.len()
        );
    }
}
