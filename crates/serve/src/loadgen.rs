//! Deterministic open-loop load generation.
//!
//! Tenants issue Poisson request streams (exponential inter-arrivals) at
//! configured rates against configured model families. The merged stream
//! is a pure function of the seed, so any run — 100 requests or 100k —
//! replays identically.

use crate::request::{Request, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tenant's traffic contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id.
    pub id: TenantId,
    /// Mean request rate, requests per simulated second.
    pub rate_rps: f64,
    /// Model family this tenant queries.
    pub model: String,
    /// Prepaid queries purchased up front.
    pub prepaid_queries: u64,
    /// Per-request latency SLO in microseconds.
    pub deadline_us: u64,
}

/// A whole run's traffic description.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The tenants and their rates.
    pub tenants: Vec<TenantSpec>,
    /// Stream duration in simulated microseconds.
    pub duration_us: u64,
    /// Master seed.
    pub seed: u64,
    /// Feature dimension to synthesize per request (0 = no payload; the
    /// sim then uses the virtual cost model only).
    pub feature_dim: usize,
}

impl LoadPlan {
    /// Materialize the merged, arrival-ordered request stream.
    #[must_use]
    pub fn generate(&self) -> Vec<Request> {
        let mut requests = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (0x9e37_79b9 * (ti as u64 + 1)));
            if tenant.rate_rps <= 0.0 {
                continue;
            }
            let mean_gap_us = 1e6 / tenant.rate_rps;
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() * mean_gap_us;
                if t >= self.duration_us as f64 {
                    break;
                }
                let features = if self.feature_dim == 0 {
                    None
                } else {
                    Some(
                        (0..self.feature_dim)
                            .map(|_| rng.gen_range(-1.0f32..1.0))
                            .collect(),
                    )
                };
                requests.push(Request {
                    id: 0, // assigned after the merge sort
                    tenant: tenant.id,
                    model: tenant.model.clone(),
                    arrival_us: t as u64,
                    deadline_us: tenant.deadline_us,
                    features,
                });
            }
        }
        // Merge: order by (arrival, tenant) — deterministic even when two
        // tenants collide on a microsecond.
        requests.sort_by_key(|r| (r.arrival_us, r.tenant));
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        requests
    }

    /// Total offered load in requests per second.
    #[must_use]
    pub fn offered_rps(&self) -> f64 {
        self.tenants.iter().map(|t| t.rate_rps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> LoadPlan {
        LoadPlan {
            tenants: vec![
                TenantSpec {
                    id: 1,
                    rate_rps: 500.0,
                    model: "a".into(),
                    prepaid_queries: 10_000,
                    deadline_us: 50_000,
                },
                TenantSpec {
                    id: 2,
                    rate_rps: 250.0,
                    model: "b".into(),
                    prepaid_queries: 10_000,
                    deadline_us: 50_000,
                },
            ],
            duration_us: 2_000_000,
            seed,
            feature_dim: 0,
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let a = plan(7).generate();
        let b = plan(7).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.arrival_us, x.tenant, x.id),
                (y.arrival_us, y.tenant, y.id)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = plan(7).generate();
        let b = plan(8).generate();
        assert_ne!(
            a.iter().map(|r| r.arrival_us).collect::<Vec<_>>(),
            b.iter().map(|r| r.arrival_us).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rate_is_roughly_honored() {
        let stream = plan(3).generate();
        // 750 rps over 2 s → ~1500 requests; Poisson noise ±20%.
        assert!(
            (1200..1800).contains(&stream.len()),
            "got {} requests",
            stream.len()
        );
        let t1 = stream.iter().filter(|r| r.tenant == 1).count();
        let t2 = stream.iter().filter(|r| r.tenant == 2).count();
        assert!(t1 > t2, "tenant 1 offers twice the rate");
    }

    #[test]
    fn arrivals_are_sorted_and_ids_monotone() {
        let stream = plan(5).generate();
        for w in stream.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn features_generated_when_requested() {
        let mut p = plan(1);
        p.feature_dim = 16;
        p.duration_us = 100_000;
        let stream = p.generate();
        assert!(!stream.is_empty());
        assert!(stream
            .iter()
            .all(|r| r.features.as_ref().map(Vec::len) == Some(16)));
    }
}
