//! Tenant → serving-node assignment for the multi-node fabric.
//!
//! One `ServePlane` models one serving node; "heavy traffic from millions
//! of users" needs many. The [`ShardRouter`] sits above the per-node
//! gateways and maps every tenant to a home node with **weighted
//! rendezvous hashing** (highest-random-weight): each node scores every
//! `(tenant, family)` key and the best score wins. Rendezvous hashing
//! gives the two properties a fleet operator actually wants:
//!
//! * **Weighted capacities** — a node with twice the weight is assigned
//!   (in expectation) twice the tenants, via the standard
//!   `−weight / ln(u)` transform of a per-(node, key) uniform draw.
//! * **Minimal movement** — adding a node moves only the tenants whose
//!   new best score *is* that node (≈ its weight share); removing a node
//!   moves only its own tenants. No ring, no token rebalancing.
//!
//! **Model-family affinity** blends a family-keyed draw into the score:
//! at `affinity = 0` tenants hash independently; as it rises, tenants of
//! the same model family cluster onto the same nodes, so each node's
//! `ModelCache` serves fewer distinct families under the same byte budget
//! (the fleet-level analogue of the per-device affinity in
//! [`crate::Router::route_affine`]).

use crate::request::TenantId;

/// One serving node visible to the shard router.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardNode {
    /// Fabric-unique node id.
    pub id: NodeId,
    /// Relative capacity (expected tenant share is `weight / Σ weights`).
    pub weight: f64,
}

/// Fabric-unique serving-node identifier.
pub type NodeId = u32;

/// Weighted rendezvous router with model-family affinity.
///
/// Weight-proportional placement is exact at `affinity` 0 (pure tenant
/// draws) and 1 (pure family draws): there `−ln(u)` is Exp(1) and the
/// `−w/ln(u)` transform wins with probability `w / Σw`. At intermediate
/// blends the mixed `a·ln(u_f) + (1−a)·ln(u_t)` is Gamma-shaped, which
/// *biases* the weighted shares (equal weights stay exactly balanced;
/// unequal weights land between proportional and uniform). The fabric's
/// default (0.5, equal node weights) is unaffected; operators leaning on
/// capacity weights should run near-0 affinity or weigh the bias in —
/// see `load_spreads_roughly_by_weight` for the exact-regime check.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// Nodes, sorted by id (deterministic iteration ⇒ deterministic
    /// tie-breaks).
    nodes: Vec<ShardNode>,
    /// Family-affinity blend in `[0, 1]`: 0 = pure per-tenant hashing,
    /// 1 = all tenants of a family share one node.
    affinity: f64,
}

/// SplitMix64 finalizer: cheap, well-mixed, and stable across platforms —
/// assignment must never depend on `std` hasher internals.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the family name (stable string hash).
fn hash_family(family: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in family.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Map a hash to a uniform draw in the open interval (0, 1).
fn unit(h: u64) -> f64 {
    ((h >> 11) as f64 + 1.0) / ((1u64 << 53) as f64 + 2.0)
}

impl ShardRouter {
    /// New router over `nodes` with the given family-affinity blend
    /// (clamped to `[0, 1]`). Panics on empty node lists, duplicate ids or
    /// non-positive weights — those are provisioning bugs, not load states.
    #[must_use]
    pub fn new(mut nodes: Vec<ShardNode>, affinity: f64) -> Self {
        assert!(!nodes.is_empty(), "fabric needs at least one node");
        nodes.sort_by_key(|n| n.id);
        for pair in nodes.windows(2) {
            assert_ne!(pair[0].id, pair[1].id, "duplicate node id {}", pair[0].id);
        }
        assert!(
            nodes.iter().all(|n| n.weight > 0.0 && n.weight.is_finite()),
            "node weights must be positive and finite"
        );
        ShardRouter {
            nodes,
            affinity: affinity.clamp(0.0, 1.0),
        }
    }

    /// The nodes currently in the fabric, sorted by id.
    #[must_use]
    pub fn nodes(&self) -> &[ShardNode] {
        &self.nodes
    }

    /// The family-affinity blend in force.
    #[must_use]
    pub fn affinity(&self) -> f64 {
        self.affinity
    }

    /// Add a node (join). Existing tenants move only if the new node wins
    /// their rendezvous score — ≈ `weight / Σ weights` of them.
    pub fn add_node(&mut self, node: ShardNode) {
        assert!(
            node.weight > 0.0 && node.weight.is_finite(),
            "node weights must be positive and finite"
        );
        assert!(
            !self.nodes.iter().any(|n| n.id == node.id),
            "duplicate node id {}",
            node.id
        );
        self.nodes.push(node);
        self.nodes.sort_by_key(|n| n.id);
    }

    /// Remove a node (leave). Only its own tenants are reassigned. Returns
    /// `false` when the id is unknown; panics rather than empty the fabric.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.nodes.iter().position(|n| n.id == id) else {
            return false;
        };
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        self.nodes.remove(pos);
        true
    }

    /// The home node for `(tenant, family)`: highest weighted rendezvous
    /// score. Pure function of the topology, so every caller — gateway
    /// fan-out, rebalancer, billing aggregation — agrees without
    /// coordination.
    #[must_use]
    pub fn assign(&self, tenant: TenantId, family: &str) -> NodeId {
        let fam = hash_family(family);
        let ten = splitmix64(u64::from(tenant) ^ 0x5851_f42d_4c95_7f2d);
        let mut best: Option<(f64, NodeId)> = None;
        for node in &self.nodes {
            let hn = splitmix64(u64::from(node.id).wrapping_mul(0xff51_afd7_ed55_8ccd));
            // Blend the family- and tenant-keyed draws in log space: the
            // blend of two ln(u) values is still negative, so the weighted
            // rendezvous transform below stays order-correct.
            let ln_f = unit(splitmix64(hn ^ fam)).ln();
            let ln_t = unit(splitmix64(hn ^ ten)).ln();
            let blended = self.affinity * ln_f + (1.0 - self.affinity) * ln_t;
            let score = -node.weight / blended;
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, node.id));
            }
        }
        best.expect("router is never empty").1
    }

    /// Tenant counts per node for a tenant population (capacity check).
    #[must_use]
    pub fn census<'a>(
        &self,
        tenants: impl IntoIterator<Item = (TenantId, &'a str)>,
    ) -> Vec<(NodeId, usize)> {
        let mut counts: Vec<(NodeId, usize)> = self.nodes.iter().map(|n| (n.id, 0)).collect();
        for (tenant, family) in tenants {
            let home = self.assign(tenant, family);
            if let Some(slot) = counts.iter_mut().find(|(id, _)| *id == home) {
                slot.1 += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<ShardNode> {
        (0..n).map(|id| ShardNode { id, weight: 1.0 }).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let r = ShardRouter::new(nodes(4), 0.5);
        for tenant in 0..200u32 {
            let a = r.assign(tenant, "kws");
            let b = r.assign(tenant, "kws");
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn load_spreads_roughly_by_weight() {
        let r = ShardRouter::new(
            vec![
                ShardNode { id: 0, weight: 1.0 },
                ShardNode { id: 1, weight: 1.0 },
                ShardNode { id: 2, weight: 2.0 },
            ],
            0.0,
        );
        let census = r.census((0..4000u32).map(|t| (t, "m")));
        let count_of = |id| census.iter().find(|(n, _)| *n == id).unwrap().1 as f64;
        // Node 2 has half the total weight: expect ~2000 of 4000, and the
        // unit-weight nodes ~1000 each. Allow generous sampling slack.
        assert!((1600.0..2400.0).contains(&count_of(2)), "{census:?}");
        assert!((700.0..1300.0).contains(&count_of(0)), "{census:?}");
        assert!((700.0..1300.0).contains(&count_of(1)), "{census:?}");
    }

    #[test]
    fn join_moves_only_to_the_new_node() {
        let mut r = ShardRouter::new(nodes(3), 0.4);
        let before: Vec<NodeId> = (0..500u32).map(|t| r.assign(t, "vision")).collect();
        r.add_node(ShardNode { id: 9, weight: 1.0 });
        let mut moved = 0;
        for (t, old) in before.iter().enumerate() {
            let new = r.assign(t as u32, "vision");
            if new != *old {
                assert_eq!(new, 9, "movers may only land on the joining node");
                moved += 1;
            }
        }
        assert!(moved > 0, "a joining node takes some share");
        assert!(moved < 500, "a joining node must not take everything");
    }

    #[test]
    fn leave_moves_only_the_departed_nodes_tenants() {
        let mut r = ShardRouter::new(nodes(4), 0.4);
        let before: Vec<NodeId> = (0..500u32).map(|t| r.assign(t, "kws")).collect();
        assert!(r.remove_node(2));
        for (t, old) in before.iter().enumerate() {
            let new = r.assign(t as u32, "kws");
            if *old != 2 {
                assert_eq!(new, *old, "tenant {t} moved without cause");
            } else {
                assert_ne!(new, 2);
            }
        }
        assert!(!r.remove_node(77), "unknown id is a no-op");
    }

    #[test]
    fn affinity_clusters_families_onto_fewer_nodes() {
        let spread_of = |affinity: f64| -> usize {
            let r = ShardRouter::new(nodes(8), affinity);
            // 64 tenants of one family: how many distinct nodes host them?
            let homes: std::collections::BTreeSet<NodeId> =
                (0..64u32).map(|t| r.assign(t, "shared-family")).collect();
            homes.len()
        };
        assert_eq!(spread_of(1.0), 1, "full affinity pins a family");
        assert!(
            spread_of(0.0) > spread_of(0.9),
            "affinity shrinks a family's node footprint"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fabric_rejected() {
        let _ = ShardRouter::new(vec![], 0.5);
    }
}
