//! Tenant → serving-node assignment for the multi-node fabric.
//!
//! One `ServePlane` models one serving node; "heavy traffic from millions
//! of users" needs many. The [`ShardRouter`] sits above the per-node
//! gateways and maps every tenant to a home node with **weighted
//! rendezvous hashing** (highest-random-weight): each node scores every
//! `(tenant, family)` key and the best score wins. Rendezvous hashing
//! gives the two properties a fleet operator actually wants:
//!
//! * **Weighted capacities** — a node with twice the weight is assigned
//!   (in expectation) twice the tenants, via the standard
//!   `−weight / ln(u)` transform of a per-(node, key) uniform draw.
//! * **Minimal movement** — adding a node moves only the tenants whose
//!   new best score *is* that node (≈ its weight share); removing a node
//!   moves only its own tenants. No ring, no token rebalancing.
//!
//! **Model-family affinity** blends a family-keyed draw into the score:
//! at `affinity = 0` tenants hash independently; as it rises, tenants of
//! the same model family cluster onto the same nodes, so each node's
//! `ModelCache` serves fewer distinct families under the same byte budget
//! (the fleet-level analogue of the per-device affinity in
//! [`crate::Router::route_affine`]).

use crate::request::TenantId;
use std::collections::BTreeMap;

/// One serving node visible to the shard router.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardNode {
    /// Fabric-unique node id.
    pub id: NodeId,
    /// Relative capacity (expected tenant share is `weight / Σ weights`).
    pub weight: f64,
}

/// Fabric-unique serving-node identifier.
pub type NodeId = u32;

/// Weighted rendezvous router with model-family affinity.
///
/// Weight-proportional placement is exact at `affinity` 0 (pure tenant
/// draws) and 1 (pure family draws): there `−ln(u)` is Exp(1) and the
/// `−w/ln(u)` transform wins with probability `w / Σw`. At intermediate
/// blends the mixed `a·ln(u_f) + (1−a)·ln(u_t)` is Gamma-shaped, which
/// *biases* the weighted shares (equal weights stay exactly balanced;
/// unequal weights land between proportional and uniform). The fabric's
/// default (0.5, equal node weights) is unaffected; operators leaning on
/// capacity weights should run near-0 affinity or weigh the bias in —
/// see `load_spreads_roughly_by_weight` for the exact-regime check.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// Nodes, sorted by id (deterministic iteration ⇒ deterministic
    /// tie-breaks).
    nodes: Vec<ShardNode>,
    /// Family-affinity blend in `[0, 1]`: 0 = pure per-tenant hashing,
    /// 1 = all tenants of a family share one node.
    affinity: f64,
    /// Tenants whose assignment is pinned to a specific node — the result
    /// of a live migration ([`crate::ServeFabric::run_migrating`]). Pins
    /// override the rendezvous score until the pinned node leaves.
    pins: BTreeMap<TenantId, NodeId>,
}

/// SplitMix64 finalizer: cheap, well-mixed, and stable across platforms —
/// assignment must never depend on `std` hasher internals.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the family name (stable string hash).
fn hash_family(family: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in family.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Map a hash to a uniform draw in the open interval (0, 1).
fn unit(h: u64) -> f64 {
    ((h >> 11) as f64 + 1.0) / ((1u64 << 53) as f64 + 2.0)
}

impl ShardRouter {
    /// New router over `nodes` with the given family-affinity blend
    /// (clamped to `[0, 1]`). Panics on empty node lists, duplicate ids or
    /// non-positive weights — those are provisioning bugs, not load states.
    #[must_use]
    pub fn new(mut nodes: Vec<ShardNode>, affinity: f64) -> Self {
        assert!(!nodes.is_empty(), "fabric needs at least one node");
        nodes.sort_by_key(|n| n.id);
        for pair in nodes.windows(2) {
            assert_ne!(pair[0].id, pair[1].id, "duplicate node id {}", pair[0].id);
        }
        assert!(
            nodes.iter().all(|n| n.weight > 0.0 && n.weight.is_finite()),
            "node weights must be positive and finite"
        );
        ShardRouter {
            nodes,
            affinity: affinity.clamp(0.0, 1.0),
            pins: BTreeMap::new(),
        }
    }

    /// The nodes currently in the fabric, sorted by id.
    #[must_use]
    pub fn nodes(&self) -> &[ShardNode] {
        &self.nodes
    }

    /// The family-affinity blend in force.
    #[must_use]
    pub fn affinity(&self) -> f64 {
        self.affinity
    }

    /// Add a node (join). Existing tenants move only if the new node wins
    /// their rendezvous score — ≈ `weight / Σ weights` of them.
    pub fn add_node(&mut self, node: ShardNode) {
        assert!(
            node.weight > 0.0 && node.weight.is_finite(),
            "node weights must be positive and finite"
        );
        assert!(
            !self.nodes.iter().any(|n| n.id == node.id),
            "duplicate node id {}",
            node.id
        );
        self.nodes.push(node);
        self.nodes.sort_by_key(|n| n.id);
    }

    /// Remove a node (leave). Only its own tenants are reassigned (pins
    /// to the departed node are dropped, so those tenants re-derive like
    /// everyone else). Returns `false` when the id is unknown; panics
    /// rather than empty the fabric.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.nodes.iter().position(|n| n.id == id) else {
            return false;
        };
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        self.nodes.remove(pos);
        self.pins.retain(|_, node| *node != id);
        true
    }

    /// Pin `tenant` to `node`, overriding its rendezvous placement until
    /// the node leaves or the pin is lifted. A live migration ends with a
    /// pin: the moved account must not snap back to its hash-derived home
    /// on the next rebalance. Panics on unknown nodes (a wiring bug).
    pub fn pin(&mut self, tenant: TenantId, node: NodeId) {
        assert!(
            self.nodes.iter().any(|n| n.id == node),
            "cannot pin tenant {tenant} to unknown node {node}"
        );
        self.pins.insert(tenant, node);
    }

    /// Lift a tenant's pin (it re-derives from the hash on next assign).
    pub fn unpin(&mut self, tenant: TenantId) {
        self.pins.remove(&tenant);
    }

    /// The node a tenant is pinned to, if any.
    #[must_use]
    pub fn pinned(&self, tenant: TenantId) -> Option<NodeId> {
        self.pins.get(&tenant).copied()
    }

    /// One node's rendezvous score for `(tenant, family)` under the
    /// affinity blend (higher wins).
    fn score(&self, node: &ShardNode, fam: u64, ten: u64) -> f64 {
        let hn = splitmix64(u64::from(node.id).wrapping_mul(0xff51_afd7_ed55_8ccd));
        // Blend the family- and tenant-keyed draws in log space: the
        // blend of two ln(u) values is still negative, so the weighted
        // rendezvous transform stays order-correct.
        let ln_f = unit(splitmix64(hn ^ fam)).ln();
        let ln_t = unit(splitmix64(hn ^ ten)).ln();
        let blended = self.affinity * ln_f + (1.0 - self.affinity) * ln_t;
        -node.weight / blended
    }

    fn hash_keys(tenant: TenantId, family: &str) -> (u64, u64) {
        (
            hash_family(family),
            splitmix64(u64::from(tenant) ^ 0x5851_f42d_4c95_7f2d),
        )
    }

    /// The home node for `(tenant, family)`: the tenant's pin if one is
    /// set, else the highest weighted rendezvous score. A pure function
    /// of topology + pins, so every caller — gateway fan-out, rebalancer,
    /// billing aggregation — agrees without coordination. One
    /// allocation-free max-scan: this runs per unknown-tenant request on
    /// the ingest hot path.
    #[must_use]
    pub fn assign(&self, tenant: TenantId, family: &str) -> NodeId {
        if let Some(node) = self.pinned(tenant) {
            return node;
        }
        let (fam, ten) = Self::hash_keys(tenant, family);
        let mut best: Option<(f64, NodeId)> = None;
        for node in &self.nodes {
            let score = self.score(node, fam, ten);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, node.id));
            }
        }
        best.expect("router is never empty").1
    }

    /// Every node in descending rendezvous-score order for `(tenant,
    /// family)` — the tenant's full preference list. [`ShardRouter::
    /// assign`] is the head (computed without the sort); bounded-load
    /// overflow walks down this list, so overflowed tenants land on
    /// their *second*-best node (preserving as much of the
    /// family-affinity clustering as the cap allows) rather than hashing
    /// somewhere arbitrary.
    fn ranked(&self, tenant: TenantId, family: &str) -> impl Iterator<Item = NodeId> + '_ {
        let (fam, ten) = Self::hash_keys(tenant, family);
        let mut scored: Vec<(f64, NodeId)> = self
            .nodes
            .iter()
            .map(|node| (self.score(node, fam, ten), node.id))
            .collect();
        // Descending score; nodes are id-sorted, so equal scores (never
        // observed with 64-bit draws, but not impossible) break by id.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
        scored.into_iter().map(|(_, id)| id)
    }

    /// Per-node tenant capacity under bounded load: `ceil(load_factor ×
    /// expected share of `total`)`, where the expected share is weight-
    /// proportional. With `load_factor ≥ 1` the caps sum to at least
    /// `total`, so a bounded assignment always exists. A non-finite
    /// factor means unbounded (pure rendezvous).
    #[must_use]
    pub fn bounded_caps(&self, total: usize, load_factor: f64) -> Vec<(NodeId, usize)> {
        let weight_sum: f64 = self.nodes.iter().map(|n| n.weight).sum();
        self.nodes
            .iter()
            .map(|n| {
                let cap = if load_factor.is_finite() {
                    (load_factor * total as f64 * n.weight / weight_sum).ceil() as usize
                } else {
                    usize::MAX
                };
                (n.id, cap)
            })
            .collect()
    }

    /// Bounded-load assignment: the best-scoring node whose current load
    /// (per `load_of`) is below its cap for a population of `total`
    /// tenants at `load_factor`; a hot home node overflows to the
    /// tenant's *second*-best node, and so on down the preference list.
    /// Pinned tenants ignore bounds (a migration pin is an operator
    /// decision). Falls back to the unbounded winner if every node is at
    /// cap (only possible when `load_of` already exceeds `total`).
    #[must_use]
    pub fn assign_bounded(
        &self,
        tenant: TenantId,
        family: &str,
        total: usize,
        load_factor: f64,
        mut load_of: impl FnMut(NodeId) -> usize,
    ) -> NodeId {
        if let Some(node) = self.pinned(tenant) {
            return node;
        }
        if !load_factor.is_finite() {
            return self.assign(tenant, family);
        }
        assert!(
            load_factor >= 1.0,
            "load_factor below 1.0 cannot place every tenant"
        );
        let caps = self.bounded_caps(total, load_factor);
        let cap_of = |id: NodeId| {
            caps.iter()
                .find(|(n, _)| *n == id)
                .map(|(_, c)| *c)
                .unwrap_or(usize::MAX)
        };
        let mut first = None;
        for node in self.ranked(tenant, family) {
            first.get_or_insert(node);
            if load_of(node) < cap_of(node) {
                return node;
            }
        }
        first.expect("router is never empty")
    }

    /// Tenant counts per node for a tenant population (capacity check).
    #[must_use]
    pub fn census<'a>(
        &self,
        tenants: impl IntoIterator<Item = (TenantId, &'a str)>,
    ) -> Vec<(NodeId, usize)> {
        let mut counts: Vec<(NodeId, usize)> = self.nodes.iter().map(|n| (n.id, 0)).collect();
        for (tenant, family) in tenants {
            let home = self.assign(tenant, family);
            if let Some(slot) = counts.iter_mut().find(|(id, _)| *id == home) {
                slot.1 += 1;
            }
        }
        counts
    }
}

/// One idle tenant's worth of traffic in [`TrafficLedger`] fixed point.
///
/// Every tenant carries a floor of one `TRAFFIC_UNIT` (its "slot") plus
/// its observed-traffic EWMA. With an empty ledger all weights are
/// exactly `TRAFFIC_UNIT`, and because [`ShardRouter::assign_bounded`]
/// compares `load < cap` with loads that are then exact multiples of the
/// unit, unit-scaled caps accept and reject *identically* to the old
/// tenant-count measure (`k·U < ceil(x·U) ⇔ k < ceil(x)` for integer
/// `k·U`). Traffic-weighted placement is therefore a strict refinement:
/// byte-identical until the ledger observes real traffic.
pub const TRAFFIC_UNIT: u64 = 1024;

/// Per-tenant served-work EWMA powering traffic-weighted bounded load.
///
/// The tenant-count bounded load treats one giant tenant as one slot; a
/// node holding it fills its cap with small tenants and melts. The
/// ledger replaces "one tenant = one slot" with "one tenant = one
/// slot plus its traffic": [`TrafficLedger::observe`] folds each control
/// interval's served count into a fixed-point EWMA (α = 1/4, integer
/// arithmetic only, so the sim loop and the live feeder stay
/// bit-identical), and [`TrafficLedger::weight`] reports
/// `TRAFFIC_UNIT · (1 + ewma_requests_per_interval)`. Placement code
/// sums weights instead of counting tenants; caps and loads scale
/// together, so relative shares — not absolute traffic — drive overflow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    /// Per-tenant EWMA of served work per control interval, in
    /// `TRAFFIC_UNIT` fixed point (`TRAFFIC_UNIT` ≙ one request/interval).
    ewma: BTreeMap<TenantId, u64>,
}

impl TrafficLedger {
    /// An empty ledger: every tenant weighs exactly one slot.
    #[must_use]
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    /// Fold one control interval's served count for `tenant` into its
    /// EWMA: `e' = (3·e + served·UNIT) / 4`. Integer-only and
    /// order-independent across tenants, so both backends converge on
    /// the same ledger from the same samples.
    pub fn observe(&mut self, tenant: TenantId, served: u64) {
        let sample = served.saturating_mul(TRAFFIC_UNIT);
        let e = self.ewma.entry(tenant).or_insert(0);
        *e = (*e * 3 + sample) / 4;
    }

    /// The tenant's placement weight in traffic units: one idle slot
    /// plus its traffic EWMA. Unseen tenants weigh [`TRAFFIC_UNIT`].
    #[must_use]
    pub fn weight(&self, tenant: TenantId) -> u64 {
        TRAFFIC_UNIT + self.ewma.get(&tenant).copied().unwrap_or(0)
    }

    /// Drop a tenant's history (deprovisioning).
    pub fn forget(&mut self, tenant: TenantId) {
        self.ewma.remove(&tenant);
    }

    /// Total traffic units across a tenant population.
    #[must_use]
    pub fn total(&self, tenants: impl IntoIterator<Item = TenantId>) -> u64 {
        tenants.into_iter().map(|t| self.weight(t)).sum()
    }

    /// Whether any tenant has observed traffic (an empty ledger degrades
    /// placement to the tenant-count measure exactly).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ewma.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<ShardNode> {
        (0..n).map(|id| ShardNode { id, weight: 1.0 }).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let r = ShardRouter::new(nodes(4), 0.5);
        for tenant in 0..200u32 {
            let a = r.assign(tenant, "kws");
            let b = r.assign(tenant, "kws");
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn load_spreads_roughly_by_weight() {
        let r = ShardRouter::new(
            vec![
                ShardNode { id: 0, weight: 1.0 },
                ShardNode { id: 1, weight: 1.0 },
                ShardNode { id: 2, weight: 2.0 },
            ],
            0.0,
        );
        let census = r.census((0..4000u32).map(|t| (t, "m")));
        let count_of = |id| census.iter().find(|(n, _)| *n == id).unwrap().1 as f64;
        // Node 2 has half the total weight: expect ~2000 of 4000, and the
        // unit-weight nodes ~1000 each. Allow generous sampling slack.
        assert!((1600.0..2400.0).contains(&count_of(2)), "{census:?}");
        assert!((700.0..1300.0).contains(&count_of(0)), "{census:?}");
        assert!((700.0..1300.0).contains(&count_of(1)), "{census:?}");
    }

    #[test]
    fn join_moves_only_to_the_new_node() {
        let mut r = ShardRouter::new(nodes(3), 0.4);
        let before: Vec<NodeId> = (0..500u32).map(|t| r.assign(t, "vision")).collect();
        r.add_node(ShardNode { id: 9, weight: 1.0 });
        let mut moved = 0;
        for (t, old) in before.iter().enumerate() {
            let new = r.assign(t as u32, "vision");
            if new != *old {
                assert_eq!(new, 9, "movers may only land on the joining node");
                moved += 1;
            }
        }
        assert!(moved > 0, "a joining node takes some share");
        assert!(moved < 500, "a joining node must not take everything");
    }

    #[test]
    fn leave_moves_only_the_departed_nodes_tenants() {
        let mut r = ShardRouter::new(nodes(4), 0.4);
        let before: Vec<NodeId> = (0..500u32).map(|t| r.assign(t, "kws")).collect();
        assert!(r.remove_node(2));
        for (t, old) in before.iter().enumerate() {
            let new = r.assign(t as u32, "kws");
            if *old != 2 {
                assert_eq!(new, *old, "tenant {t} moved without cause");
            } else {
                assert_ne!(new, 2);
            }
        }
        assert!(!r.remove_node(77), "unknown id is a no-op");
    }

    #[test]
    fn affinity_clusters_families_onto_fewer_nodes() {
        let spread_of = |affinity: f64| -> usize {
            let r = ShardRouter::new(nodes(8), affinity);
            // 64 tenants of one family: how many distinct nodes host them?
            let homes: std::collections::BTreeSet<NodeId> =
                (0..64u32).map(|t| r.assign(t, "shared-family")).collect();
            homes.len()
        };
        assert_eq!(spread_of(1.0), 1, "full affinity pins a family");
        assert!(
            spread_of(0.0) > spread_of(0.9),
            "affinity shrinks a family's node footprint"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fabric_rejected() {
        let _ = ShardRouter::new(vec![], 0.5);
    }

    #[test]
    fn pins_override_hash_until_the_node_leaves() {
        let mut r = ShardRouter::new(nodes(4), 0.5);
        let natural = r.assign(7, "kws");
        let other = (natural + 1) % 4;
        r.pin(7, other);
        assert_eq!(r.assign(7, "kws"), other, "pin wins over the hash");
        assert_eq!(r.pinned(7), Some(other));
        assert_eq!(
            r.assign_bounded(7, "kws", 1, 1.0, |_| usize::MAX),
            other,
            "pins ignore load bounds"
        );
        assert!(r.remove_node(other));
        assert_eq!(r.pinned(7), None, "leave drops pins to the node");
        r.pin(7, natural);
        r.unpin(7);
        assert_eq!(r.assign(7, "kws"), natural);
    }

    #[test]
    fn bounded_assignment_caps_every_node() {
        let r = ShardRouter::new(nodes(4), 0.5);
        let factor = 1.25;
        let total = 64usize;
        let mut counts: std::collections::BTreeMap<NodeId, usize> = BTreeMap::new();
        for tenant in 0..total as u32 {
            // One shared family: full-affinity-free hashing would pile
            // tenants up; bounded load must spread the overflow.
            let home = r.assign_bounded(tenant, "hot-family", total, factor, |id| {
                counts.get(&id).copied().unwrap_or(0)
            });
            *counts.entry(home).or_default() += 1;
        }
        let caps = r.bounded_caps(total, factor);
        for (id, cap) in caps {
            let load = counts.get(&id).copied().unwrap_or(0);
            assert!(load <= cap, "node {id} holds {load} > cap {cap}");
        }
        assert_eq!(counts.values().sum::<usize>(), total);
    }

    #[test]
    fn unbounded_factor_matches_pure_rendezvous() {
        let r = ShardRouter::new(nodes(5), 0.4);
        for tenant in 0..200u32 {
            assert_eq!(
                r.assign_bounded(tenant, "kws", 200, f64::INFINITY, |_| usize::MAX),
                r.assign(tenant, "kws")
            );
        }
    }

    #[test]
    fn overflow_lands_on_the_next_best_node() {
        let r = ShardRouter::new(nodes(3), 0.0);
        let tenant = 11u32;
        let best = r.assign(tenant, "m");
        // Saturate only the best node: the bounded assignment must pick
        // the runner-up, not an arbitrary node.
        let overflowed =
            r.assign_bounded(
                tenant,
                "m",
                3,
                1.0,
                |id| {
                    if id == best {
                        usize::MAX
                    } else {
                        0
                    }
                },
            );
        assert_ne!(overflowed, best);
        // And the runner-up is stable: same inputs, same node.
        let again = r.assign_bounded(
            tenant,
            "m",
            3,
            1.0,
            |id| {
                if id == best {
                    usize::MAX
                } else {
                    0
                }
            },
        );
        assert_eq!(overflowed, again);
    }

    #[test]
    fn empty_ledger_units_reproduce_tenant_count_placement() {
        // The traffic-weighted measure must be a strict refinement: with
        // no observed traffic (all weights TRAFFIC_UNIT), unit-scaled
        // caps accept and reject exactly like the tenant-count measure.
        let r = ShardRouter::new(nodes(4), 0.5);
        let ledger = TrafficLedger::new();
        for factor in [1.0, 1.25, 2.0] {
            let total = 64usize;
            let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
            let mut units: BTreeMap<NodeId, u64> = BTreeMap::new();
            for tenant in 0..total as u32 {
                let by_count = r.assign_bounded(tenant, "hot", total, factor, |id| {
                    counts.get(&id).copied().unwrap_or(0)
                });
                let unit_total = ledger.total((0..total as u32).collect::<Vec<_>>()) as usize;
                let by_units = r.assign_bounded(tenant, "hot", unit_total, factor, |id| {
                    units.get(&id).copied().unwrap_or(0) as usize
                });
                assert_eq!(by_count, by_units, "tenant {tenant} factor {factor}");
                *counts.entry(by_count).or_default() += 1;
                *units.entry(by_units).or_default() += ledger.weight(tenant);
            }
        }
    }

    #[test]
    fn ledger_ewma_converges_and_forgets() {
        let mut ledger = TrafficLedger::new();
        assert_eq!(ledger.weight(3), TRAFFIC_UNIT, "unseen tenant = one slot");
        for _ in 0..32 {
            ledger.observe(3, 100);
        }
        let w = ledger.weight(3);
        // EWMA of a constant 100-request interval converges to
        // 100 slots of traffic on top of the idle slot.
        assert!(
            w > 99 * TRAFFIC_UNIT && w <= 101 * TRAFFIC_UNIT,
            "converged weight {w}"
        );
        ledger.observe(3, 0);
        assert!(ledger.weight(3) < w, "idle intervals decay the weight");
        ledger.forget(3);
        assert_eq!(ledger.weight(3), TRAFFIC_UNIT);
        assert!(ledger.is_empty());
    }

    #[test]
    fn giant_tenant_overflows_under_traffic_units_but_packs_under_counts() {
        // The regression the ledger exists for: one tenant carrying ~6
        // slots of traffic counts as *one slot* under the tenant-count
        // measure, so its node also receives a full complement of small
        // tenants; under traffic units the giant consumes its share of
        // the cap and the small tenants overflow to the other node.
        // Affinity 1.0 with a single family makes every tenant's
        // preference list identical, so the split is fully deterministic.
        let r = ShardRouter::new(nodes(2), 1.0);
        let mut ledger = TrafficLedger::new();
        let giant = 0u32;
        let smalls: Vec<u32> = (1..=20).collect();
        for _ in 0..32 {
            ledger.observe(giant, 5); // ≈ 6 slots incl. the idle floor
        }
        let population: Vec<u32> = std::iter::once(giant).chain(smalls.clone()).collect();
        let place = |total: usize, weight_of: &dyn Fn(TenantId) -> usize| {
            let mut load: BTreeMap<NodeId, usize> = BTreeMap::new();
            let mut homes: BTreeMap<TenantId, NodeId> = BTreeMap::new();
            for &tenant in &population {
                let home = r.assign_bounded(tenant, "m", total, 1.0, |id| {
                    load.get(&id).copied().unwrap_or(0)
                });
                *load.entry(home).or_default() += weight_of(tenant);
                homes.insert(tenant, home);
            }
            (homes, load)
        };
        let unit_cap = (ledger.total(population.iter().copied()) as f64 / 2.0).ceil() as u64;
        // Bounded load admits a tenant while load < cap, so a node can
        // legitimately overshoot by at most one small tenant's weight.
        let slack = unit_cap + TRAFFIC_UNIT;
        // Tenant-count measure: 21 tenants, cap 11 per node — the
        // giant's node also takes 10 small tenants and carries ~16 slots
        // of traffic against an ~13-slot fair cap. Pin this as the
        // must-fail behavior the new measure exists to kill.
        let (count_homes, _) = place(population.len(), &|_| 1);
        let giant_home = count_homes[&giant];
        let count_units: u64 = count_homes
            .iter()
            .filter(|(_, home)| **home == giant_home)
            .map(|(t, _)| ledger.weight(*t))
            .sum();
        assert!(
            count_units > slack,
            "tenant-count packing must overload the giant's node beyond \
             any legitimate overshoot ({count_units} units on node \
             {giant_home}, cap {unit_cap} + slack)"
        );
        // Traffic-unit measure: the same population stays within one
        // small tenant of the cap on every node.
        let total_units = ledger.total(population.iter().copied()) as usize;
        let (unit_homes, unit_load) = place(total_units, &|t| ledger.weight(t) as usize);
        for (node, load) in &unit_load {
            assert!(
                (*load as u64) < slack,
                "node {node} holds {load} units > cap {unit_cap} + slack"
            );
        }
        assert_ne!(
            unit_homes, count_homes,
            "the measures must actually disagree on this workload"
        );
    }
}
