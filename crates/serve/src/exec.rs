//! The wall-clock concurrent serving backend.
//!
//! [`crate::ServeSim`] replays traffic on a virtual clock, single-
//! threaded. This module runs the *same* fabric for real: every
//! [`crate::FabricNode`] gets its own OS thread driving its gateway →
//! batcher → cache → device-router stack through the same crate-internal
//! serving engine as the simulator, fed by a bounded, mutex-guarded
//! [`IngestQueue`] per node (the fabric's ingest is sharded across nodes
//! — one producer, N independent consumers, no shared serving state).
//!
//! Two execution modes ([`ExecMode`]):
//!
//! * [`ExecMode::Replay`] — node threads consume as fast as the host
//!   allows, but every admission/flush/completion decision reads the
//!   *stream's* timestamps (logical time — [`crate::VirtualClock`]'s
//!   model). Because nodes share nothing and each node's event order is
//!   fixed by its own sub-stream's timestamps,
//!   the merged [`FabricReport`] is **bit-identical** to
//!   [`crate::ServeFabric::run`] on the same stream — the property
//!   `e17_live_serving` and the stress tests pin down. What the wall
//!   clock measures is the real pipeline: ingest routing, queue handoff,
//!   and N nodes working concurrently.
//! * [`ExecMode::Wall`] — the feeder paces arrivals against a shared
//!   [`WallClock`] and nodes stamp requests at the gateway door with real
//!   elapsed time; batch flush deadlines and completions fire via timed
//!   queue waits. Timing-dependent outcomes are no longer deterministic,
//!   but the conservation laws (served + shed = arrivals, refunds match
//!   downstream sheds, quota balances) still hold exactly.

use crate::clock::{Clock, WallClock};
use crate::fabric::{FabricReport, ServeFabric};
use crate::request::Request;
use crate::sim::{ServeConfig, ServeEngine, ServePlane};
use crate::stats::ServeStats;
use crate::ServeError;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tinymlops_observe::Telemetry;

/// How the live executor treats time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic threaded replay: every decision reads the stream's
    /// logical timestamps; results bit-identical to the simulator.
    Replay,
    /// Honest wall-clock serving: paced ingest, door-stamped arrivals,
    /// timed flushes. Deterministic only in its conservation laws.
    Wall,
}

/// Live-executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Time policy (see [`ExecMode`]).
    pub mode: ExecMode,
    /// Per-node ingest queue capacity; a full queue blocks the feeder
    /// (backpressure) rather than dropping or buffering unboundedly.
    pub queue_capacity: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            mode: ExecMode::Replay,
            queue_capacity: 1024,
        }
    }
}

/// A [`FabricReport`] plus what only a live run can measure: real elapsed
/// time for the whole threaded pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveReport {
    /// The merged fleet report — in [`ExecMode::Replay`], bit-identical
    /// to the simulator's report for the same stream.
    pub fabric: FabricReport,
    /// Wall-clock time for feeder + all node threads, milliseconds.
    pub wall_ms: f64,
    /// Requests pushed through the ingest queues.
    pub requests: usize,
}

impl LiveReport {
    /// Requests ingested per real (wall) second — the live analogue of
    /// the simulator's virtual-time throughput.
    #[must_use]
    pub fn wall_throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ms / 1e3)
    }
}

/// Result of a queue pop with an optional timer deadline.
enum Popped {
    /// An arrival.
    Item(Request),
    /// The requested deadline passed with no arrival.
    TimerDue,
    /// Queue closed and drained: no more arrivals, ever.
    Closed,
}

struct QueueState {
    items: VecDeque<Request>,
    closed: bool,
}

/// A bounded MPSC FIFO between the ingest feeder and one node thread.
///
/// Mutex + condvars rather than lock-free: the queue hands off whole
/// requests at multi-microsecond service granularity, so the lock is
/// never the bottleneck, and a bounded buffer gives real backpressure
/// (a slow node stalls its producer instead of hiding behind RAM).
pub struct IngestQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl IngestQueue {
    /// A queue holding at most `capacity` requests.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        IngestQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, blocking while the queue is full. Returns `false` (and
    /// drops the request) iff the queue is closed.
    pub fn push(&self, request: Request) -> bool {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return false;
        }
        state.items.push_back(request);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Dequeue, blocking until an item arrives or the queue closes.
    pub fn pop(&self) -> Option<Request> {
        match self.pop_inner(None, None) {
            Popped::Item(r) => Some(r),
            Popped::Closed => None,
            Popped::TimerDue => unreachable!("no deadline was set"),
        }
    }

    /// Dequeue, or give up once `wall` reaches `deadline_us` (used by
    /// wall-mode nodes to wake for due batch flushes and completions).
    fn pop_until(&self, deadline_us: Option<u64>, wall: &WallClock) -> Popped {
        self.pop_inner(deadline_us, Some(wall))
    }

    fn pop_inner(&self, deadline_us: Option<u64>, wall: Option<&WallClock>) -> Popped {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(request) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Popped::Item(request);
            }
            if state.closed {
                return Popped::Closed;
            }
            match (deadline_us, wall) {
                (Some(t), Some(wall)) => {
                    let now = wall.now_us();
                    if now >= t {
                        return Popped::TimerDue;
                    }
                    let (guard, _) = self
                        .not_empty
                        .wait_timeout(state, Duration::from_micros(t - now))
                        .unwrap();
                    state = guard;
                }
                _ => {
                    state = self.not_empty.wait(state).unwrap();
                }
            }
        }
    }

    /// Close the queue: pending items still drain, then pops return
    /// `Closed` and pushes are refused.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Closes a node's ingest queue when its worker exits — normally a no-op
/// (the feeder closed it first), but on an early error return or a panic
/// it flips the queue to refuse further pushes, so the bounded feeder
/// cannot block forever against a consumer that will never drain it.
struct CloseOnExit<'a>(&'a IngestQueue);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// One node thread: drain the ingest queue through the shared engine.
fn node_worker(
    plane: &mut ServePlane,
    telemetry: &Telemetry,
    serve_cfg: &ServeConfig,
    queue: &IngestQueue,
    mode: ExecMode,
    wall: &WallClock,
) -> Result<ServeStats, ServeError> {
    let _close_guard = CloseOnExit(queue);
    if plane.family_names().is_empty() {
        return Err(ServeError::NoFamilies);
    }
    let mut engine = ServeEngine::new(serve_cfg.clone(), Some(telemetry));
    match mode {
        ExecMode::Replay => {
            while let Some(request) = queue.pop() {
                engine.run_timers_through(plane, request.arrival_us, true);
                engine.on_arrival(plane, &request);
            }
            Ok(engine.finish(plane))
        }
        ExecMode::Wall => {
            loop {
                match queue.pop_until(engine.next_timer_us(), wall) {
                    Popped::Item(mut request) => {
                        let now = wall.now_us();
                        engine.run_timers_through(plane, now, true);
                        // Stamped at the gateway door: latency and batch
                        // deadlines measure real elapsed time from here.
                        request.arrival_us = now;
                        engine.on_arrival(plane, &request);
                    }
                    Popped::TimerDue => {
                        engine.run_timers_through(plane, wall.now_us(), true);
                    }
                    Popped::Closed => break,
                }
            }
            Ok(engine.finish(plane))
        }
    }
}

/// Run `stream` through `fabric` with one OS thread per serving node.
///
/// The calling thread is the ingest feeder: it routes each request to its
/// tenant's home node (same placement as [`ServeFabric::run`]) and pushes
/// it onto that node's bounded queue, pacing against the wall clock in
/// [`ExecMode::Wall`]. Node threads drain concurrently; their per-node
/// accumulators merge into the same exact fleet report the simulator
/// produces.
pub fn run_fabric_live(
    fabric: &mut ServeFabric,
    stream: &[Request],
    cfg: &ExecConfig,
) -> Result<LiveReport, ServeError> {
    let refunded_before = fabric.refunded_total();
    let serve_cfg = fabric.serve_config().clone();
    let mode = cfg.mode;
    let wall = WallClock::new();
    let start = Instant::now();

    let (nodes, shard_router, assignments) = fabric.split_live();
    let queues: Vec<IngestQueue> = nodes
        .iter()
        .map(|_| IngestQueue::new(cfg.queue_capacity))
        .collect();
    let index_of: BTreeMap<_, _> = nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();

    let results: Vec<Result<ServeStats, ServeError>> = std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .iter_mut()
            .zip(&queues)
            .map(|(node, queue)| {
                let serve_cfg = &serve_cfg;
                let wall = &wall;
                let plane = &mut node.plane;
                let telemetry = &node.telemetry;
                s.spawn(move || node_worker(plane, telemetry, serve_cfg, queue, mode, wall))
            })
            .collect();

        // The feeder: route at ingest time, in arrival order. Unknown
        // tenants are still routed (by the same hash) so the owning
        // gateway records the denial, exactly as in the simulator.
        for request in stream {
            let home = match assignments.get(&request.tenant) {
                Some((node, _)) => *node,
                None => shard_router.assign(request.tenant, &request.model),
            };
            if mode == ExecMode::Wall {
                wall.advance_to(request.arrival_us);
            }
            // A `false` return means the node worker exited early (error
            // or panic) and closed its queue; keep feeding the healthy
            // nodes — the dead node's result surfaces after the join.
            let _ = queues[index_of[&home]].push(request.clone());
        }
        for queue in &queues {
            queue.close();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });

    let node_ids: Vec<_> = fabric.nodes().iter().map(|n| n.id).collect();
    let mut per_node = Vec::with_capacity(results.len());
    for (id, result) in node_ids.into_iter().zip(results) {
        per_node.push((id, result?));
    }
    let fabric_report = fabric.assemble_report(per_node, refunded_before);
    Ok(LiveReport {
        fabric: fabric_report,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        requests: stream.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn req(id: u64, arrival_us: u64) -> Request {
        Request {
            id,
            tenant: 1,
            model: "m".into(),
            arrival_us,
            deadline_us: 10_000,
            features: None,
        }
    }

    #[test]
    fn queue_is_fifo_across_threads() {
        let q = IngestQueue::new(8);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..1000 {
                    assert!(q.push(req(i, i * 10)));
                }
                q.close();
            });
            let mut expected = 0;
            while let Some(r) = q.pop() {
                assert_eq!(r.id, expected, "FIFO order preserved");
                expected += 1;
            }
            assert_eq!(expected, 1000);
        });
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let q = IngestQueue::new(4);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Slow consumer: the producer must block at capacity, not
                // buffer all 64 requests.
                while q.pop().is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                    assert!(q.len() <= 4, "capacity bound holds");
                    std::thread::yield_now();
                }
            });
            for i in 0..64 {
                assert!(q.push(req(i, 0)));
            }
            q.close();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn closed_queue_drains_then_refuses() {
        let q = IngestQueue::new(8);
        assert!(q.push(req(0, 0)));
        q.close();
        assert!(!q.push(req(1, 1)), "closed queue refuses pushes");
        assert!(q.pop().is_some(), "buffered item still drains");
        assert!(q.pop().is_none(), "then the queue reports closed");
    }

    #[test]
    fn pop_until_times_out_for_due_timers() {
        let q = IngestQueue::new(8);
        let wall = WallClock::new();
        let due = wall.now_us() + 2_000;
        match q.pop_until(Some(due), &wall) {
            Popped::TimerDue => assert!(wall.now_us() >= due, "woke at or after the deadline"),
            _ => panic!("empty queue with a deadline must report TimerDue"),
        }
    }
}
