//! The wall-clock concurrent serving backend.
//!
//! [`crate::ServeSim`] replays traffic on a virtual clock, single-
//! threaded. This module runs the *same* fabric for real: every
//! [`crate::FabricNode`] gets its own OS thread driving its gateway →
//! batcher → cache → device-router stack through the same crate-internal
//! serving engine as the simulator, fed by a bounded lock-free
//! [`IngestQueue`] per node (the fabric's ingest is sharded across nodes
//! — one producer, N independent consumers, no shared serving state).
//!
//! Two execution modes ([`ExecMode`]):
//!
//! * [`ExecMode::Replay`] — node threads consume as fast as the host
//!   allows, but every admission/flush/completion decision reads the
//!   *stream's* timestamps (logical time — [`crate::VirtualClock`]'s
//!   model). Because nodes share nothing and each node's event order is
//!   fixed by its own sub-stream's timestamps,
//!   the merged [`FabricReport`] is **bit-identical** to
//!   [`crate::ServeFabric::run`] on the same stream — the property
//!   `e17_live_serving` and the stress tests pin down. What the wall
//!   clock measures is the real pipeline: ingest routing, queue handoff,
//!   and N nodes working concurrently.
//! * [`ExecMode::Wall`] — the feeder paces arrivals against a shared
//!   [`WallClock`] and nodes stamp requests at the gateway door with real
//!   elapsed time; batch flush deadlines and completions fire via timed
//!   queue waits. Timing-dependent outcomes are no longer deterministic,
//!   but the conservation laws (served + shed = arrivals, refunds match
//!   downstream sheds, quota balances) still hold exactly.
//!
//! **Live migration** rides the same queues: a scheduled
//! [`crate::MigrationSpec`] makes the feeder inject a drain control
//! entry into the source node's queue (in stream position, so the drain
//! set is exactly what the simulator's would be), wait for the node
//! thread to splice its batcher and detach the account, then hand the
//! sealed handoff package (account + spliced work) to the destination's
//! queue before any of the tenant's rerouted traffic. Replay-mode migrations
//! are bit-identical to [`crate::ServeFabric::run_migrating`]; wall-mode
//! migrations additionally splice the tenant's not-yet-ingested arrivals
//! out of the source's [`IngestQueue`] ([`IngestQueue::splice`]) so even
//! queued-but-unseen work follows the account without dropping or
//! double-billing.

use crate::clock::{Clock, WallClock};
use crate::controller::{ControlAction, ControlSample, ControllerView, FleetController};
use crate::fabric::{
    absorb_failover, adopt_destination, drain_source, merge_triggers, FabricReport, FleetTrigger,
    HandoffPackage, MigrationPhase, MigrationRecord, MigrationSpec, ServeFabric,
};
use crate::fault::{plan_evacuation, FailoverPackage, NodeFaults};
use crate::observer::NodeObserver;
use crate::request::{Request, TenantId};
use crate::shard::NodeId;
use crate::sim::{ServeConfig, ServeEngine, ServePlane};
use crate::stats::ServeStats;
use crate::ServeError;
use crossbeam::queue::ArrayQueue;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tinymlops_observe::Telemetry;

/// How the live executor treats time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic threaded replay: every decision reads the stream's
    /// logical timestamps; results bit-identical to the simulator.
    Replay,
    /// Honest wall-clock serving: paced ingest, door-stamped arrivals,
    /// timed flushes. Deterministic only in its conservation laws.
    Wall,
}

/// Live-executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Time policy (see [`ExecMode`]).
    pub mode: ExecMode,
    /// Per-node ingest queue capacity; a full queue blocks the feeder
    /// (backpressure) rather than dropping or buffering unboundedly.
    pub queue_capacity: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            mode: ExecMode::Replay,
            queue_capacity: 1024,
        }
    }
}

/// A node worker that died for real — a panic in its serving loop (e.g.
/// an injected [`crate::FaultKind::DispatchPanic`]) — reported
/// structurally instead of poisoning the whole run. Unlike an injected
/// [`crate::FaultKind::Crash`] (a cooperative teardown that evacuates
/// accounts and refunds pending work), a genuine death takes its
/// un-evacuated state with it: the feeder keeps serving the surviving
/// nodes and counts what it could no longer deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFailure {
    /// The node whose worker died.
    pub node: NodeId,
    /// The panic payload, when it was a string (a placeholder otherwise).
    pub reason: String,
    /// Arrivals the feeder could not deliver after the worker died (its
    /// closed queue refused them).
    pub lost_requests: u64,
}

/// A [`FabricReport`] plus what only a live run can measure: real elapsed
/// time for the whole threaded pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveReport {
    /// The merged fleet report — in [`ExecMode::Replay`], bit-identical
    /// to the simulator's report for the same stream.
    pub fabric: FabricReport,
    /// Wall-clock time for feeder + all node threads, milliseconds.
    pub wall_ms: f64,
    /// Requests pushed through the ingest queues.
    pub requests: usize,
    /// Node workers that genuinely died (panicked) during the run, in
    /// node-id order. Empty on a healthy run — and always empty in the
    /// simulator, which has no workers to lose.
    pub failures: Vec<NodeFailure>,
}

impl LiveReport {
    /// Requests ingested per real (wall) second — the live analogue of
    /// the simulator's virtual-time throughput.
    #[must_use]
    pub fn wall_throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ms / 1e3)
    }
}

/// What flows through a node's ingest queue: ordinary arrivals plus the
/// live-migration control entries. Controls ride *in stream position*,
/// so a node thread executes them after exactly the same prefix of its
/// traffic as the simulator would — that positional guarantee is what
/// makes replay-mode migrations bit-identical.
pub(crate) enum Ingest {
    /// One routed inference request.
    Arrival(Request),
    /// Migration source side: drain the tenant at `at_us` and send the
    /// sealed handoff package back to the coordinating feeder.
    Drain {
        tenant: TenantId,
        from: NodeId,
        to: NodeId,
        at_us: u64,
        reply: mpsc::Sender<HandoffPackage>,
    },
    /// Migration destination side: attach the account and re-enqueue the
    /// spliced in-flight work.
    Adopt {
        tenant: TenantId,
        package: HandoffPackage,
    },
    /// Injected [`crate::FaultKind::Crash`]: tear this node down at
    /// `at_us` — resolve queued and in-flight work as refunded failover
    /// sheds, send the evacuated accounts (plus orphaned requests of
    /// tenants that had already migrated away) back to the coordinating
    /// feeder, and exit the worker loop.
    Crash {
        node: NodeId,
        at_us: u64,
        reply: mpsc::Sender<(Vec<FailoverPackage>, Vec<Request>)>,
    },
    /// Failover landing side: reconstruct an evacuated tenant account
    /// from its [`FailoverPackage`] (emergency handoff — the dead source
    /// cannot cooperate, so the survivor seals the chain).
    Absorb {
        to: NodeId,
        package: FailoverPackage,
    },
    /// Orphan refund: return one prepaid query to a tenant homed here
    /// whose in-flight request died on a crashed peer (it had migrated
    /// off that peer with work still dispatched there).
    Refund { tenant: TenantId, at_us: u64 },
    /// Controller tick: advance to `at_us`, sample-and-reset the control
    /// tap, and reply to the coordinating feeder. Rides in stream
    /// position, so the sampled counters are bit-identical to the
    /// simulator's tick at the same logical instant.
    Sample {
        at_us: u64,
        reply: mpsc::Sender<ControlSample>,
    },
    /// Controller brownout nudge: floor (or lift, at 0) this node's
    /// degradation ladder.
    SetBrownoutFloor { level: usize, at_us: u64 },
}

/// Result of a queue pop with an optional timer deadline.
enum Popped<T> {
    /// An item arrived.
    Item(T),
    /// The requested deadline passed with no arrival.
    TimerDue,
    /// Queue closed and drained: no more items, ever.
    Closed,
}

/// A bounded MPSC FIFO between the ingest feeder and one node thread.
///
/// The hot path is lock-free: items ride a Vyukov-style bounded ring
/// ([`crossbeam::queue::ArrayQueue`]) and a push/pop pair that finds the
/// ring non-full/non-empty never touches a lock. The mutex + condvars
/// exist only to park a producer against a full ring (backpressure: a
/// slow node stalls its producer instead of hiding behind RAM) or a
/// consumer against an empty one; sleepers register in counters behind
/// `SeqCst` fences (Dekker-style), so the waking side skips the lock
/// entirely while nobody sleeps. The retired mutex/condvar design
/// survives as [`MutexIngestQueue`] — the baseline the b01
/// `ingest_queue` group measures this ring against.
///
/// Closing has two flavors with different race disciplines:
///
/// * [`IngestQueue::close`] is called by the *sole producer* after its
///   last push (program order), so consumers drain everything that was
///   accepted and then see `Closed`.
/// * [`IngestQueue::close_and_clear`] is the consumer-death path and
///   *may* race an in-flight push. Both sides re-drain the ring after
///   flagging (`SeqCst` fences on both sides guarantee at least one of
///   them sees the item), so a buffered control entry's reply channel
///   can never be stranded in a ring nobody will ever pop — the feeder
///   deadlock this guards against has a regression test
///   (`close_and_clear_releases_concurrently_pushed_reply_channels`).
pub struct IngestQueue<T> {
    ring: ArrayQueue<T>,
    /// No more pushes are accepted; buffered items still drain.
    closed: AtomicBool,
    /// The consumer is gone for good: buffered items are dropped rather
    /// than drained. Set only by `close_and_clear`, always with `closed`.
    cleared: AtomicBool,
    /// Producer-wake hysteresis: the consumer only pays the wake fence
    /// (and possibly the lock) when a pop leaves at most this many items
    /// buffered. A producer parked against a full ring is therefore woken
    /// once per *half-drain*, not once per pop; liveness holds because
    /// the pop that empties the ring always passes this mark (len 0), so
    /// the two sides can never both sleep.
    wake_mark: usize,
    /// Parking lot for both sides' slow paths (never held on a hot path).
    park: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    sleeping_consumers: AtomicUsize,
    sleeping_producers: AtomicUsize,
    /// One-shot wake latches: set when a hot-path wake is delivered,
    /// cleared by the sleeper as it leaves its wait loop. While set, a
    /// wakeup is already in flight to a registered sleeper (condvars do
    /// not lose notifications delivered to a waiter), so further hot-path
    /// ops skip the lock + notify entirely — on a single core the woken
    /// thread may not be scheduled for a while, and without the latch
    /// every op in that window would pay the full notify cost. The
    /// close/clear/splice paths and the consumer's empty-transition wake
    /// bypass the latches (they always lock + notify).
    consumer_wake_pending: AtomicBool,
    producer_wake_pending: AtomicBool,
}

impl<T> IngestQueue<T> {
    /// A queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        IngestQueue {
            ring: ArrayQueue::new(capacity),
            closed: AtomicBool::new(false),
            cleared: AtomicBool::new(false),
            wake_mark: capacity / 2,
            park: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            sleeping_consumers: AtomicUsize::new(0),
            sleeping_producers: AtomicUsize::new(0),
            consumer_wake_pending: AtomicBool::new(false),
            producer_wake_pending: AtomicBool::new(false),
        }
    }

    /// Enqueue, blocking while the queue is full. Returns `false` (and
    /// drops the item) iff the queue is closed.
    pub fn push(&self, item: T) -> bool {
        if self.closed.load(Ordering::SeqCst) {
            return false;
        }
        let mut item = item;
        loop {
            match self.ring.push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    // Full: park until a pop frees a slot or the queue
                    // closes. Register first, then re-check under the
                    // lock — `wake_producers` only locks when the
                    // counter is non-zero, and only notifies while
                    // holding `park`, so the re-check cannot miss it.
                    let mut guard = self.park.lock().unwrap();
                    self.sleeping_producers.fetch_add(1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    while self.ring.is_full() && !self.closed.load(Ordering::SeqCst) {
                        guard = self.not_full.wait(guard).unwrap();
                    }
                    self.sleeping_producers.fetch_sub(1, Ordering::SeqCst);
                    self.producer_wake_pending.store(false, Ordering::Relaxed);
                    drop(guard);
                    if self.closed.load(Ordering::SeqCst) {
                        return false;
                    }
                }
            }
        }
        // The push landed. One fence covers both post-push checks. First:
        // if the consumer died while the push was in flight,
        // `close_and_clear`'s drain may have run *before* the slot was
        // visible — drain again here so nothing (in particular a
        // migration drain's reply channel) is stranded (the paired
        // `SeqCst` fences guarantee this thread sees `cleared` or the
        // clearing thread's drain sees the item; a double drain is
        // harmless). Second: the Dekker pairing with `pop_inner`'s
        // sleeper registration — either this load sees the sleeping
        // consumer, or the registering consumer's re-check sees the item.
        fence(Ordering::SeqCst);
        if self.cleared.load(Ordering::Relaxed) {
            while self.ring.pop().is_some() {}
            return false;
        }
        if self.sleeping_consumers.load(Ordering::Relaxed) > 0
            && !self.consumer_wake_pending.load(Ordering::Relaxed)
        {
            let _guard = self.park.lock().unwrap();
            // Latch under the lock: registration, deregistration and the
            // sleeper's latch-clear all happen under `park`, so a latch
            // set here is provably paired with a delivered notification.
            if self.sleeping_consumers.load(Ordering::Relaxed) > 0 {
                self.consumer_wake_pending.store(true, Ordering::Relaxed);
                self.not_empty.notify_all();
            }
        }
        true
    }

    /// Dequeue, blocking until an item arrives or the queue closes.
    pub fn pop(&self) -> Option<T> {
        match self.pop_inner(None, None) {
            Popped::Item(r) => Some(r),
            Popped::Closed => None,
            Popped::TimerDue => unreachable!("no deadline was set"),
        }
    }

    /// Dequeue, or give up once `wall` reaches `deadline_us` (used by
    /// wall-mode nodes to wake for due batch flushes and completions).
    fn pop_until(&self, deadline_us: Option<u64>, wall: &WallClock) -> Popped<T> {
        self.pop_inner(deadline_us, Some(wall))
    }

    fn pop_inner(&self, deadline_us: Option<u64>, wall: Option<&WallClock>) -> Popped<T> {
        loop {
            if let Some(item) = self.ring.pop() {
                // Hysteresis: skip the wake fence entirely while the ring
                // is more than half full — a parked producer can wait for
                // the half-drain; the pop that empties the ring always
                // reaches this mark, so both sides can never sleep at
                // once. (`len` is racy under concurrent pushes, but a
                // stale-high read only defers the wake to a later pop.)
                let left = self.ring.len();
                if left == 0 {
                    // The pop that empties the ring always issues the
                    // fenced wake — this is the liveness backstop that
                    // bypasses the latch below.
                    self.wake_producers();
                } else if left <= self.wake_mark
                    && self.sleeping_producers.load(Ordering::Relaxed) > 0
                    && !self.producer_wake_pending.load(Ordering::Relaxed)
                {
                    let _guard = self.park.lock().unwrap();
                    // Latch under the lock (see `push` for the pairing
                    // argument): a set latch implies the notification
                    // reached a registered waiter, which clears it on
                    // leaving its wait loop.
                    if self.sleeping_producers.load(Ordering::Relaxed) > 0 {
                        self.producer_wake_pending.store(true, Ordering::Relaxed);
                        self.not_full.notify_all();
                    }
                }
                return Popped::Item(item);
            }
            if self.cleared.load(Ordering::SeqCst) {
                return Popped::Closed;
            }
            if self.closed.load(Ordering::SeqCst) {
                // `close` may have raced our first (empty) pop against
                // the producer's final pushes. Observing `closed` orders
                // us after everything pushed before it, so one more
                // drain pass sees any stragglers; the next call keeps
                // draining until the ring is genuinely empty.
                return match self.ring.pop() {
                    Some(item) => {
                        self.wake_producers();
                        Popped::Item(item)
                    }
                    None => Popped::Closed,
                };
            }
            // Empty and open: park until a push or close. Same
            // register-then-recheck discipline as the producer side.
            let mut guard = self.park.lock().unwrap();
            self.sleeping_consumers.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            while self.ring.is_empty() && !self.closed.load(Ordering::SeqCst) {
                match (deadline_us, wall) {
                    (Some(t), Some(wall)) => {
                        let now = wall.now_us();
                        if now >= t {
                            self.sleeping_consumers.fetch_sub(1, Ordering::SeqCst);
                            self.consumer_wake_pending.store(false, Ordering::Relaxed);
                            drop(guard);
                            return Popped::TimerDue;
                        }
                        let (g, _) = self
                            .not_empty
                            .wait_timeout(guard, Duration::from_micros(t - now))
                            .unwrap();
                        guard = g;
                    }
                    _ => guard = self.not_empty.wait(guard).unwrap(),
                }
            }
            self.sleeping_consumers.fetch_sub(1, Ordering::SeqCst);
            self.consumer_wake_pending.store(false, Ordering::Relaxed);
        }
    }

    /// Close the queue: pending items still drain, then pops return
    /// `Closed` and pushes are refused. Producer-side close — call it
    /// only after the last push (program order), as the feeder does.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.park.lock().unwrap();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Close *and drop* everything still buffered. Used when this queue's
    /// consumer is gone for good (node worker errored or panicked):
    /// buffered items can never be processed, and dropping them releases
    /// whatever they carry — in particular a buffered migration drain's
    /// reply channel, which unblocks the coordinating feeder. Safe
    /// against concurrent pushes: see the fence pairing in [`Self::push`].
    pub fn close_and_clear(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cleared.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        while self.ring.pop().is_some() {}
        let _guard = self.park.lock().unwrap();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Remove and return every buffered item matching `pred`, preserving
    /// order among both the spliced and the survivors. The wall-mode
    /// migration path uses this to pull a draining tenant's
    /// not-yet-ingested arrivals out of the source node's queue so they
    /// can follow the account to its new home instead of being served by
    /// (or lost with) the old one.
    ///
    /// Must be called from the producer thread (the feeder both pushes
    /// and splices, so no push can race the drain-and-repush); the
    /// consumer may pop concurrently — items it wins were simply
    /// ingested before the splice, exactly as under the old lock.
    pub fn splice(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut drained = Vec::new();
        while let Some(item) = self.ring.pop() {
            drained.push(item);
        }
        let mut spliced = Vec::new();
        for item in drained {
            if pred(&item) {
                spliced.push(item);
            } else {
                // Cannot fail: the drain freed at least as many slots as
                // there are survivors and no other producer exists.
                let mut item = item;
                while let Err(back) = self.ring.push(item) {
                    item = back;
                    std::thread::yield_now();
                }
            }
        }
        self.wake_consumers();
        if !spliced.is_empty() {
            self.wake_producers();
        }
        spliced
    }

    /// Items currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Wake a parked consumer, if any. The fence pairs with the one in
    /// `pop_inner`'s registration: either this thread sees the sleeper
    /// counter, or the registering consumer's re-check sees the item.
    fn wake_consumers(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping_consumers.load(Ordering::Relaxed) > 0 {
            let _guard = self.park.lock().unwrap();
            self.not_empty.notify_all();
        }
    }

    /// Wake a parked producer, if any (mirror of [`Self::wake_consumers`]).
    fn wake_producers(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping_producers.load(Ordering::Relaxed) > 0 {
            let _guard = self.park.lock().unwrap();
            self.not_full.notify_all();
        }
    }
}

struct MutexQueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The retired mutex/condvar ingest queue, kept as the measurable
/// baseline for the lock-free [`IngestQueue`]: the b01 `ingest_queue`
/// group runs the same handoff workload through both and reports the
/// paired difference (the same way `Dispatch::Spawn` survives as the
/// thread pool's baseline). Not used by the serving path.
pub struct MutexIngestQueue<T> {
    state: Mutex<MutexQueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> MutexIngestQueue<T> {
    /// A queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MutexIngestQueue {
            state: Mutex::new(MutexQueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, blocking while the queue is full. Returns `false` (and
    /// drops the item) iff the queue is closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Dequeue, blocking until an item arrives or the queue closes.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Close the queue: pending items still drain, then pops return
    /// `None` and pushes are refused.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Closes a node's ingest queue when its worker exits — normally a no-op
/// (the feeder closed it first and the queue is empty), but on an early
/// error return or a panic it flips the queue to refuse further pushes
/// and drops whatever is buffered, so the bounded feeder cannot block
/// forever against a consumer that will never drain it and a buffered
/// drain control's reply channel is released.
struct CloseOnExit<'a, T>(&'a IngestQueue<T>);

impl<T> Drop for CloseOnExit<'_, T> {
    fn drop(&mut self) {
        self.0.close_and_clear();
    }
}

/// One node thread: drain the ingest queue through the shared engine.
/// Returns `Ok` with honest statistics even when the node is torn down
/// mid-run by an injected crash (the evacuation resolves everything it
/// owed first); only a genuine panic loses state.
///
/// With a `completions` sink the engine's completion tap is armed and
/// every resolution (served, shed, failover) is forwarded as it happens
/// — the response leg of the closed-loop drivers
/// ([`crate::closedloop`]). The tap is pure observation, so a sink
/// never changes a serving decision.
#[allow(clippy::too_many_arguments)] // internal worker plumbing, not an API
pub(crate) fn node_worker(
    plane: &mut ServePlane,
    telemetry: &Telemetry,
    serve_cfg: &ServeConfig,
    observer: Option<Box<NodeObserver>>,
    faults: Option<NodeFaults>,
    queue: &IngestQueue<Ingest>,
    mode: ExecMode,
    wall: &WallClock,
    control: bool,
    completions: Option<crate::closedloop::CompletionSink>,
) -> Result<ServeStats, ServeError> {
    let _close_guard = CloseOnExit(queue);
    if plane.family_names().is_empty() {
        return Err(ServeError::NoFamilies);
    }
    let mut engine = ServeEngine::new(serve_cfg.clone(), Some(telemetry));
    engine.set_observer(observer);
    engine.set_faults(faults);
    engine.set_control_tap(control);
    engine.set_completion_tap(completions.is_some());
    let flush = |engine: &mut ServeEngine<'_>, sink: &Option<crate::closedloop::CompletionSink>| {
        if let Some(sink) = sink {
            for completion in engine.take_completions() {
                sink.forward(completion);
            }
        }
    };
    // `true` keeps the loop running; `false` means the node just crashed
    // (cooperatively) and the worker must exit with what it has.
    let handle = |engine: &mut ServeEngine<'_>, plane: &mut ServePlane, item: Ingest| -> bool {
        match item {
            Ingest::Arrival(mut request) => {
                let now = match mode {
                    ExecMode::Replay => request.arrival_us,
                    ExecMode::Wall => {
                        // Stamped at the gateway door: latency and batch
                        // deadlines measure real elapsed time from here.
                        let now = wall.now_us();
                        request.arrival_us = now;
                        now
                    }
                };
                engine.run_timers_through(plane, now, true);
                let _ = engine.on_arrival(plane, &request);
            }
            Ingest::Drain {
                tenant,
                from,
                to,
                at_us,
                reply,
            } => {
                let now = match mode {
                    ExecMode::Replay => at_us,
                    ExecMode::Wall => wall.now_us(),
                };
                engine.run_timers_through(plane, now, true);
                if let Some(package) = drain_source(engine, plane, tenant, from, to, now) {
                    // A closed reply channel means the feeder gave up
                    // (its own error path); the drop is safe either way.
                    let _ = reply.send(package);
                }
            }
            Ingest::Adopt { tenant, package } => {
                let at_us = match mode {
                    ExecMode::Replay => package.handoff_us,
                    ExecMode::Wall => wall.now_us(),
                };
                adopt_destination(engine, plane, tenant, package, at_us);
            }
            Ingest::Crash { node, at_us, reply } => {
                let now = match mode {
                    ExecMode::Replay => at_us,
                    ExecMode::Wall => wall.now_us(),
                };
                engine.run_timers_through(plane, now, true);
                let evacuated = engine.evacuate(plane, node, now);
                let _ = reply.send(evacuated);
                return false;
            }
            Ingest::Absorb { to, package } => {
                let at_us = match mode {
                    ExecMode::Replay => package.at_us,
                    ExecMode::Wall => wall.now_us(),
                };
                absorb_failover(engine, plane, package, to, at_us);
            }
            Ingest::Refund { tenant, at_us } => {
                let now = match mode {
                    ExecMode::Replay => at_us,
                    ExecMode::Wall => wall.now_us(),
                };
                engine.refund_orphan(plane, tenant, now);
            }
            Ingest::Sample { at_us, reply } => {
                let now = match mode {
                    ExecMode::Replay => at_us,
                    ExecMode::Wall => wall.now_us(),
                };
                engine.run_timers_through(plane, now, true);
                // A closed reply channel means the feeder gave up; the
                // drop is safe either way.
                let _ = reply.send(engine.take_control_sample(plane));
            }
            Ingest::SetBrownoutFloor { level, at_us } => {
                let now = match mode {
                    ExecMode::Replay => at_us,
                    ExecMode::Wall => wall.now_us(),
                };
                engine.run_timers_through(plane, now, true);
                engine.set_brownout_floor(level);
            }
        }
        true
    };
    match mode {
        ExecMode::Replay => {
            while let Some(item) = queue.pop() {
                let keep_going = handle(&mut engine, plane, item);
                flush(&mut engine, &completions);
                if !keep_going {
                    break;
                }
            }
        }
        ExecMode::Wall => loop {
            match queue.pop_until(engine.next_timer_us(), wall) {
                Popped::Item(item) => {
                    let keep_going = handle(&mut engine, plane, item);
                    flush(&mut engine, &completions);
                    if !keep_going {
                        break;
                    }
                }
                Popped::TimerDue => {
                    engine.run_timers_through(plane, wall.now_us(), true);
                    flush(&mut engine, &completions);
                }
                Popped::Closed => break,
            }
        },
    }
    if completions.is_some() {
        // Resolve everything still queued or in flight *before* the
        // engine is consumed, so the tap observes the final drain too
        // (`finish` below then finds nothing left to do).
        engine.run_timers_through(plane, u64::MAX, false);
        flush(&mut engine, &completions);
    }
    Ok(engine.finish(plane))
}

/// Run `stream` through `fabric` with one OS thread per serving node.
///
/// The calling thread is the ingest feeder: it routes each request to its
/// tenant's home node (same placement as [`ServeFabric::run`]) and pushes
/// it onto that node's bounded queue, pacing against the wall clock in
/// [`ExecMode::Wall`]. Node threads drain concurrently; their per-node
/// accumulators merge into the same exact fleet report the simulator
/// produces.
pub fn run_fabric_live(
    fabric: &mut ServeFabric,
    stream: &[Request],
    cfg: &ExecConfig,
) -> Result<LiveReport, ServeError> {
    run_fabric_live_migrating(fabric, stream, cfg, &[]).map(|(report, _)| report)
}

/// [`run_fabric_live`] plus scheduled live migrations: the feeder
/// doubles as migration coordinator, injecting drain/adopt control
/// entries into the node queues at the specs' stream positions (see
/// [`ServeFabric::run_live_migrating`]).
pub fn run_fabric_live_migrating(
    fabric: &mut ServeFabric,
    stream: &[Request],
    cfg: &ExecConfig,
    specs: &[MigrationSpec],
) -> Result<(LiveReport, Vec<MigrationRecord>), ServeError> {
    for spec in specs {
        if fabric.home_node(spec.tenant).is_none() {
            return Err(ServeError::UnknownTenant(spec.tenant));
        }
        if !fabric.nodes().iter().any(|n| n.id == spec.to) {
            return Err(ServeError::UnknownNode(spec.to));
        }
    }
    fabric.validate_fault_plan()?;
    let refunded_before = fabric.refunded_total();
    let serve_cfg = fabric.serve_config().clone();
    let observe_cfg = fabric.observe_config().clone();
    let fault_plan = fabric.fault_plan().clone();
    let load_factor = fabric.load_factor();
    let mode = cfg.mode;
    let wall = WallClock::new();
    let start = Instant::now();
    let triggers = merge_triggers(&fault_plan, specs);
    let mut records: Vec<MigrationRecord> = Vec::with_capacity(specs.len());
    let mut lost: BTreeMap<NodeId, u64> = BTreeMap::new();
    // The controller mirror: same policy, same standby pool, ticking at
    // the same logical instants as the simulator's interleaved loop.
    let controller_cfg = fabric.controller_config().clone();
    let controller_on = controller_cfg.enabled;
    let max_total_pending = serve_cfg.gateway.max_total_pending;
    let mut controller = FleetController::new(controller_cfg, fabric.take_standby());
    let tick_interval = controller.config().interval_us.max(1);
    let mut next_tick = tick_interval;

    let (nodes, shard_router, assignments, traffic) = fabric.split_live();
    let queues: Vec<IngestQueue<Ingest>> = nodes
        .iter()
        .map(|_| IngestQueue::new(cfg.queue_capacity))
        .collect();
    let index_of: BTreeMap<_, _> = nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();

    type JoinOutcome = std::thread::Result<Result<ServeStats, ServeError>>;
    let results: Vec<JoinOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = nodes
            .iter_mut()
            .zip(&queues)
            .map(|(node, queue)| {
                let serve_cfg = &serve_cfg;
                let wall = &wall;
                let observer = observe_cfg
                    .enabled
                    .then(|| Box::new(NodeObserver::new(node.id, observe_cfg.clone())));
                // Live workers are allowed to arm `DispatchPanic` events —
                // the genuine-death path the simulator cannot model.
                let faults = NodeFaults::for_node(&fault_plan, node.id, true);
                let plane = &mut node.plane;
                let telemetry = &node.telemetry;
                s.spawn(move || {
                    node_worker(
                        plane,
                        telemetry,
                        serve_cfg,
                        observer,
                        faults,
                        queue,
                        mode,
                        wall,
                        controller_on,
                        None,
                    )
                })
            })
            .collect();

        // The feeder: route at ingest time, in arrival order, executing
        // scheduled migrations and injected crashes at their stream
        // positions (same merged trigger order as the simulator). Unknown
        // tenants are still routed (by the same hash) so the owning
        // gateway records the denial, exactly as in the simulator.
        let mut pending = triggers.iter().peekable();
        let mut dead: BTreeSet<NodeId> = BTreeSet::new();
        let migrate = |spec: &MigrationSpec,
                       at_us: u64,
                       assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
                       shard_router: &mut crate::ShardRouter|
         -> MigrationRecord {
            let (from, family) = assignments
                .get(&spec.tenant)
                .cloned()
                .expect("specs are validated before the run starts");
            let mut record = MigrationRecord::planned(spec, from, at_us);
            if from == spec.to {
                record.phase = MigrationPhase::Resumed;
                return record;
            }
            // Wall mode: the tenant's not-yet-ingested arrivals leave the
            // source's queue now and follow the account (replay keeps
            // them — the simulator's node already owns them).
            let held: Vec<Ingest> = if mode == ExecMode::Wall {
                queues[index_of[&from]]
                    .splice(|i| matches!(i, Ingest::Arrival(r) if r.tenant == spec.tenant))
            } else {
                Vec::new()
            };
            let (reply, rx) = mpsc::channel();
            let accepted = queues[index_of[&from]].push(Ingest::Drain {
                tenant: spec.tenant,
                from,
                to: spec.to,
                at_us,
                reply,
            });
            if !accepted {
                // Source worker already exited (error/panic); the node's
                // failure surfaces after the join. The migration never
                // started draining.
                return record;
            }
            record.phase = MigrationPhase::Draining;
            let Ok(package) = rx.recv() else {
                // Source worker died mid-drain; its error surfaces after
                // the join.
                return record;
            };
            record.absorb(&package);
            if !queues[index_of[&spec.to]].push(Ingest::Adopt {
                tenant: spec.tenant,
                package,
            }) {
                // Destination worker already exited; the account is gone
                // with its queue and the node's failure ends the run.
                return record;
            }
            record.phase = MigrationPhase::HandedOff;
            assignments.insert(spec.tenant, (spec.to, family));
            shard_router.pin(spec.tenant, spec.to);
            record.queue_spliced = held.len();
            for item in held {
                let _ = queues[index_of[&spec.to]].push(item);
            }
            record.phase = MigrationPhase::Resumed;
            record
        };
        // Injected crash: the live mirror of the simulator's
        // `execute_crash`. The dying worker evacuates cooperatively and
        // replies with the exported accounts; the feeder re-homes them via
        // the same pure `plan_evacuation` the simulator uses, so every
        // account lands on the same survivor in both backends.
        let crash = |node: NodeId,
                     at_us: u64,
                     assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
                     shard_router: &mut crate::ShardRouter,
                     traffic: &crate::TrafficLedger,
                     dead: &mut BTreeSet<NodeId>| {
            if !dead.insert(node) {
                return; // a duplicate crash of a dead node is a no-op
            }
            let (reply, rx) = mpsc::channel();
            if !queues[index_of[&node]].push(Ingest::Crash { node, at_us, reply }) {
                // The worker already died for real (error/panic closed its
                // queue): nothing to evacuate — its loss surfaces as a
                // NodeFailure after the join.
                return;
            }
            let Ok((packages, orphans)) = rx.recv() else {
                // Worker died between accepting the control and replying.
                return;
            };
            shard_router.remove_node(node);
            let moves = plan_evacuation(shard_router, assignments, traffic, node, load_factor);
            debug_assert_eq!(moves.len(), packages.len(), "every account gets a home");
            for (package, (tenant, family, dest)) in packages.into_iter().zip(moves) {
                debug_assert_eq!(package.tenant, tenant, "both walk tenants in id order");
                if !queues[index_of[&dest]].push(Ingest::Absorb { to: dest, package }) {
                    continue; // survivor itself already dead for real
                }
                assignments.insert(tenant, (dest, family));
                shard_router.pin(tenant, dest);
            }
            for orphan in orphans {
                if let Some((home, _)) = assignments.get(&orphan.tenant) {
                    let _ = queues[index_of[home]].push(Ingest::Refund {
                        tenant: orphan.tenant,
                        at_us,
                    });
                }
            }
        };
        let fire = |trigger: &(u64, FleetTrigger<'_>),
                    at_us: u64,
                    records: &mut Vec<MigrationRecord>,
                    assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
                    shard_router: &mut crate::ShardRouter,
                    traffic: &crate::TrafficLedger,
                    dead: &mut BTreeSet<NodeId>| match trigger.1 {
            FleetTrigger::Crash { node } => {
                crash(node, at_us, assignments, shard_router, traffic, dead);
            }
            FleetTrigger::Migrate(spec) => {
                if dead.contains(&spec.to) {
                    // Destination died first: the migration never starts
                    // (same freeze as the simulator).
                    let from = assignments
                        .get(&spec.tenant)
                        .map(|(n, _)| *n)
                        .unwrap_or(spec.to);
                    records.push(MigrationRecord::planned(spec, from, at_us));
                } else {
                    records.push(migrate(spec, at_us, assignments, shard_router));
                }
            }
        };
        // Controller tick, the live mirror of the simulator's
        // `execute_control_tick`: sample every live node in id order
        // (Sample controls ride in stream position, so the counters are
        // the simulator's), ask the same controller, apply the actions
        // through the same migrate primitive and router mutations.
        let tick = |at_us: u64,
                    records: &mut Vec<MigrationRecord>,
                    assignments: &mut BTreeMap<TenantId, (NodeId, String)>,
                    shard_router: &mut crate::ShardRouter,
                    controller: &mut FleetController,
                    traffic: &mut crate::TrafficLedger| {
            let mut active: Vec<crate::ShardNode> = Vec::new();
            let mut snapshots = Vec::new();
            for node in shard_router.nodes().to_vec() {
                let (reply, rx) = mpsc::channel();
                if !queues[index_of[&node.id]].push(Ingest::Sample { at_us, reply }) {
                    continue; // worker genuinely died; skip it this tick
                }
                let Ok(sample) = rx.recv() else { continue };
                snapshots.push((node.id, sample));
                active.push(node);
            }
            let actions = {
                let view = ControllerView {
                    active: &active,
                    assignments: &*assignments,
                    max_total_pending,
                };
                controller.tick(at_us, &snapshots, &view, traffic)
            };
            for action in actions {
                match action {
                    ControlAction::Brownout { node, floor } => {
                        let _ = queues[index_of[&node]].push(Ingest::SetBrownoutFloor {
                            level: floor,
                            at_us,
                        });
                    }
                    ControlAction::Migrate { tenant, to, .. } => {
                        let spec = crate::controller::spec_of(tenant, to, at_us);
                        records.push(migrate(&spec, at_us, assignments, shard_router));
                    }
                    ControlAction::Join {
                        node,
                        weight,
                        moves,
                    } => {
                        shard_router.add_node(crate::ShardNode { id: node, weight });
                        for (tenant, dest) in moves {
                            let spec = crate::controller::spec_of(tenant, dest, at_us);
                            records.push(migrate(&spec, at_us, assignments, shard_router));
                        }
                    }
                    ControlAction::Drain { node, moves } => {
                        for (tenant, dest) in moves {
                            let spec = crate::controller::spec_of(tenant, dest, at_us);
                            records.push(migrate(&spec, at_us, assignments, shard_router));
                        }
                        shard_router.remove_node(node);
                    }
                }
            }
        };

        for request in stream {
            loop {
                let trig_at = pending
                    .peek()
                    .map(|(at, _)| *at)
                    .filter(|at| *at <= request.arrival_us);
                let tick_at =
                    (controller_on && next_tick <= request.arrival_us).then_some(next_tick);
                let fire_trigger = match (trig_at, tick_at) {
                    (Some(t), Some(k)) => t <= k, // triggers win ties
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if !fire_trigger {
                    tick(
                        next_tick,
                        &mut records,
                        assignments,
                        shard_router,
                        &mut controller,
                        traffic,
                    );
                    next_tick += tick_interval;
                    continue;
                }
                let trigger = pending.next().expect("peeked");
                fire(
                    trigger,
                    trigger.0,
                    &mut records,
                    assignments,
                    shard_router,
                    traffic,
                    &mut dead,
                );
            }
            let home = match assignments.get(&request.tenant) {
                Some((node, _)) => *node,
                None => shard_router.assign(request.tenant, &request.model),
            };
            if mode == ExecMode::Wall {
                wall.advance_to(request.arrival_us);
            }
            // A `false` return means the node worker exited early (error
            // or panic) and closed its queue; keep feeding the healthy
            // nodes — the dead node's result surfaces after the join, with
            // the undeliverable count attached.
            if !queues[index_of[&home]].push(Ingest::Arrival(request.clone())) {
                *lost.entry(home).or_default() += 1;
            }
        }
        // Triggers past the last arrival execute at end of stream,
        // mirroring the simulator.
        let end_us = stream.last().map_or(0, |r| r.arrival_us);
        for trigger in pending {
            fire(
                trigger,
                end_us,
                &mut records,
                assignments,
                shard_router,
                traffic,
                &mut dead,
            );
        }
        for queue in &queues {
            queue.close();
        }
        handles.into_iter().map(|h| h.join()).collect()
    });

    let node_ids: Vec<_> = fabric.nodes().iter().map(|n| n.id).collect();
    let mut per_node = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (id, result) in node_ids.into_iter().zip(results) {
        match result {
            // A setup error (e.g. NoFamilies) still fails the whole run —
            // that's a misconfiguration, not a fault.
            Ok(stats) => per_node.push((id, stats?)),
            Err(panic) => {
                // A genuinely dead worker: report it structurally instead
                // of poisoning the run. Its un-evacuated state is gone;
                // the surviving nodes' merged report remains exact for
                // their own traffic.
                let reason = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "node worker panicked".to_string());
                failures.push(NodeFailure {
                    node: id,
                    reason,
                    lost_requests: lost.get(&id).copied().unwrap_or(0),
                });
                per_node.push((id, ServeStats::default()));
            }
        }
    }
    let (control, standby) = controller.into_parts();
    fabric.restore_standby(standby);
    let fabric_report = fabric.assemble_report(per_node, refunded_before, control);
    Ok((
        LiveReport {
            fabric: fabric_report,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            requests: stream.len(),
            failures,
        },
        records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn req(id: u64, arrival_us: u64) -> Request {
        Request {
            id,
            tenant: 1,
            model: "m".into(),
            arrival_us,
            deadline_us: 10_000,
            features: None,
        }
    }

    #[test]
    fn queue_is_fifo_across_threads() {
        let q = IngestQueue::new(8);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..1000 {
                    assert!(q.push(req(i, i * 10)));
                }
                q.close();
            });
            let mut expected = 0;
            while let Some(r) = q.pop() {
                assert_eq!(r.id, expected, "FIFO order preserved");
                expected += 1;
            }
            assert_eq!(expected, 1000);
        });
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let q = IngestQueue::new(4);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Slow consumer: the producer must block at capacity, not
                // buffer all 64 requests.
                while q.pop().is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                    assert!(q.len() <= 4, "capacity bound holds");
                    std::thread::yield_now();
                }
            });
            for i in 0..64 {
                assert!(q.push(req(i, 0)));
            }
            q.close();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn closed_queue_drains_then_refuses() {
        let q = IngestQueue::new(8);
        assert!(q.push(req(0, 0)));
        q.close();
        assert!(!q.push(req(1, 1)), "closed queue refuses pushes");
        assert!(q.pop().is_some(), "buffered item still drains");
        assert!(q.pop().is_none(), "then the queue reports closed");
    }

    #[test]
    fn close_and_clear_drops_buffered_items() {
        let q = IngestQueue::new(8);
        assert!(q.push(req(0, 0)));
        assert!(q.push(req(1, 1)));
        q.close_and_clear();
        assert!(q.pop().is_none(), "cleared queue has nothing to drain");
        assert!(!q.push(req(2, 2)));
    }

    #[test]
    fn close_and_clear_releases_concurrently_pushed_reply_channels() {
        // Regression: a control entry (here modeled by its reply Sender)
        // pushed concurrently with the dying worker's `close_and_clear`
        // must never be stranded in the ring — the dropped Sender is what
        // unblocks a feeder waiting on `rx.recv()`. Without the post-push
        // `cleared` re-drain in `push`, the worker's drain can complete
        // before the slot becomes visible and the item (plus its reply
        // channel) leaks into a ring nobody will ever pop.
        for _ in 0..500 {
            let q: IngestQueue<mpsc::Sender<()>> = IngestQueue::new(4);
            let (tx, rx) = mpsc::channel::<()>();
            std::thread::scope(|s| {
                s.spawn(|| q.close_and_clear());
                // Whether the push wins or loses the race, the Sender
                // must be dropped by one of the two drains.
                let _ = q.push(tx);
            });
            assert_eq!(q.len(), 0, "nothing may survive the clear");
            assert!(
                matches!(rx.try_recv(), Err(mpsc::TryRecvError::Disconnected)),
                "the buffered reply channel must be released, not stranded"
            );
        }
    }

    #[test]
    fn mutex_baseline_queue_matches_semantics() {
        let q = MutexIngestQueue::new(4);
        assert!(q.push(1u64));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.close();
        assert!(!q.push(3), "closed queue refuses pushes");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then reports closed");
    }

    #[test]
    fn splice_extracts_matching_items_in_order() {
        let q = IngestQueue::new(16);
        for i in 0..10 {
            assert!(q.push(req(i, i)));
        }
        let odd = q.splice(|r| r.id % 2 == 1);
        assert_eq!(
            odd.iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 3, 5, 7, 9]
        );
        q.close();
        let mut survivors = Vec::new();
        while let Some(r) = q.pop() {
            survivors.push(r.id);
        }
        assert_eq!(survivors, [0, 2, 4, 6, 8], "survivors keep their order");
    }

    #[test]
    fn splice_unblocks_a_full_queue_producer() {
        let q = IngestQueue::new(2);
        assert!(q.push(req(0, 0)));
        assert!(q.push(req(1, 1)));
        std::thread::scope(|s| {
            s.spawn(|| {
                // Queue is full: this blocks until the splice frees a slot.
                assert!(q.push(req(2, 2)));
            });
            std::thread::yield_now();
            let spliced = q.splice(|r| r.id == 0);
            assert_eq!(spliced.len(), 1);
        });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_until_times_out_for_due_timers() {
        let q: IngestQueue<Request> = IngestQueue::new(8);
        let wall = WallClock::new();
        let due = wall.now_us() + 2_000;
        match q.pop_until(Some(due), &wall) {
            Popped::TimerDue => assert!(wall.now_us() >= due, "woke at or after the deadline"),
            _ => panic!("empty queue with a deadline must report TimerDue"),
        }
    }
}
