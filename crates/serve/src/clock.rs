//! Time sources for the serving drivers.
//!
//! The serving components ([`crate::Gateway`], [`crate::MicroBatcher`],
//! [`crate::ModelCache`], [`crate::Router`]) and the event engine behind
//! them are all parameterized by explicit microsecond timestamps — none
//! of them reads a host clock. What differs between backends is how the
//! *driver* produces those timestamps, and the [`Clock`] trait is that
//! seam:
//!
//! * replay drivers ([`crate::ServeSim`], `exec`'s replay mode) take
//!   timestamps straight from the stream — logical time, modeled by
//!   [`VirtualClock`], where advancing is a free jump and exact
//!   100k-request replays are a pure function of the seed;
//! * the wall-clock executor ([`crate::exec`]) paces ingest and stamps
//!   arrivals from a [`WallClock`] against `std::time::Instant` —
//!   advancing really sleeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone microsecond time source shared by serving drivers.
pub trait Clock: Send + Sync {
    /// Current time in microseconds since the run origin.
    fn now_us(&self) -> u64;

    /// Block (wall) or jump (virtual) until `t_us`. A `t_us` in the past
    /// is a no-op; the clock never moves backwards.
    fn advance_to(&self, t_us: u64);
}

/// Simulated time: an atomic microsecond counter that only moves when a
/// driver advances it. `advance_to` returns immediately, which is what
/// makes a 100k-request replay run in milliseconds.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Acquire)
    }

    fn advance_to(&self, t_us: u64) {
        self.now_us.fetch_max(t_us, Ordering::AcqRel);
    }
}

/// Wall-clock time: microseconds elapsed since the clock was created.
/// `advance_to` really sleeps, so deadline-triggered batch flushes fire
/// at honest wall times in the live backend.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl WallClock {
    /// A wall clock whose origin (t = 0) is now.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn advance_to(&self, t_us: u64) {
        let now = self.now_us();
        if t_us > now {
            std::thread::sleep(Duration::from_micros(t_us - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_jumps_and_never_rewinds() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_to(1_000_000);
        assert_eq!(c.now_us(), 1_000_000);
        c.advance_to(500); // stale advance must not rewind
        assert_eq!(c.now_us(), 1_000_000);
    }

    #[test]
    fn wall_clock_advances_and_sleeps() {
        let c = WallClock::new();
        let t0 = c.now_us();
        c.advance_to(t0 + 2_000);
        assert!(c.now_us() >= t0 + 2_000, "advance_to really slept");
        c.advance_to(0); // past deadline: no-op
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(VirtualClock::new()), Box::new(WallClock::new())];
        for c in &clocks {
            c.advance_to(c.now_us());
        }
    }
}
