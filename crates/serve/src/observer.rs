//! Per-node observability: the serving-plane wiring of `observe`'s
//! flight recorder, window tracker, and detector bank.
//!
//! A [`NodeObserver`] is owned by one node's `ServeEngine` (`&mut` access
//! only — no locks) and fed at the same engine points on both backends,
//! keyed exclusively on logical timestamps the engine already computes.
//! It therefore never influences a serving decision and produces
//! bit-identical output under `ExecMode::Replay` on the simulator and the
//! threaded live path. When disabled (the default) the engine carries no
//! observer and the hot path pays a single `Option` check per hook.

use crate::request::{Request, ShedReason, TenantId};
use crate::NodeId;
use tinymlops_observe::{
    Alarm, AlarmKind, AnomalyScorer, DriftBank, FlightRecorder, SpanKind, TraceEvent, WindowSample,
    WindowTracker,
};

/// Observability configuration for a serving fabric. Disabled by default:
/// a default-constructed config adds no events, windows, or alarms, and
/// fabric reports stay byte-identical to pre-observability runs.
#[derive(Debug, Clone)]
pub struct ObserveConfig {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Flight-recorder ring capacity per node (events; fixed memory).
    /// The default keeps the ring cache-resident — the ring is written
    /// several times per request, and a ring larger than L2 turns every
    /// event into a cache miss. Raise it (e.g. to cover a whole run for
    /// a trace dump) only when the extra overhead is acceptable.
    pub trace_capacity: usize,
    /// Time-series window length, logical microseconds.
    pub window_us: u64,
    /// Per-tenant KS drift window over completion latencies (min 8).
    pub drift_window: usize,
    /// KS significance level for drift alarms.
    pub drift_alpha: f64,
    /// Z-score threshold for window-shape anomaly alarms.
    pub anomaly_threshold: f64,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            enabled: false,
            trace_capacity: 512,
            window_us: 100_000,
            drift_window: 64,
            drift_alpha: 0.001,
            anomaly_threshold: 6.0,
        }
    }
}

impl ObserveConfig {
    /// An enabled config with default knobs.
    #[must_use]
    pub fn enabled() -> Self {
        ObserveConfig {
            enabled: true,
            ..ObserveConfig::default()
        }
    }
}

/// Everything one node's observer collected over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// Node that produced this observation.
    pub node: NodeId,
    /// Sealed time-series windows, chronological.
    pub windows: Vec<WindowSample>,
    /// Alarms raised (drift first, then window anomalies), chronological
    /// within each kind.
    pub alarms: Vec<Alarm>,
    /// Flight-recorder contents, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite.
    pub dropped_events: u64,
}

/// Per-node observer: flight recorder + window tracker + detectors.
#[derive(Debug)]
pub struct NodeObserver {
    node: NodeId,
    cfg: ObserveConfig,
    recorder: FlightRecorder,
    windows: WindowTracker,
    drift: DriftBank,
    anomaly: AnomalyScorer,
    anomaly_alarms: Vec<Alarm>,
}

/// Number of windows the anomaly scorer must fit before judging.
const ANOMALY_WARMUP_WINDOWS: u64 = 8;

impl NodeObserver {
    /// New observer for `node` (callers gate on `cfg.enabled`).
    #[must_use]
    pub fn new(node: NodeId, cfg: ObserveConfig) -> Self {
        NodeObserver {
            node,
            recorder: FlightRecorder::new(cfg.trace_capacity),
            windows: WindowTracker::new(cfg.window_us),
            drift: DriftBank::new(cfg.drift_window, cfg.drift_alpha),
            anomaly: AnomalyScorer::new(3),
            anomaly_alarms: Vec::new(),
            cfg,
        }
    }

    fn event(
        &mut self,
        ts_us: u64,
        dur_us: u64,
        kind: SpanKind,
        tenant: TenantId,
        id: u64,
        detail: u64,
    ) {
        self.recorder.record(TraceEvent {
            ts_us,
            dur_us,
            kind,
            node: self.node,
            tenant,
            id,
            detail,
        });
    }

    /// A request arrived at the gateway (before the admission verdict).
    pub fn on_arrival(&mut self, now_us: u64) {
        self.windows.on_arrival(now_us);
    }

    /// The gateway admitted a request; `depth` is the batcher queue depth
    /// right after enqueue.
    pub fn on_admit(&mut self, now_us: u64, request: &Request, depth: usize) {
        self.event(now_us, 0, SpanKind::Admit, request.tenant, request.id, 0);
        self.event(
            now_us,
            0,
            SpanKind::Enqueue,
            request.tenant,
            request.id,
            depth as u64,
        );
        self.windows.on_queue_depth(now_us, depth as u64);
    }

    /// A request was shed, at admission or later.
    pub fn on_shed(&mut self, now_us: u64, tenant: TenantId, id: u64, reason: ShedReason) {
        self.event(now_us, 0, SpanKind::Shed, tenant, id, reason.index() as u64);
        self.windows.on_shed(now_us);
    }

    /// A batch of `items` requests was formed and is being dispatched;
    /// `service_us` is the device service time, `seq` the in-flight slot.
    pub fn on_dispatch(&mut self, now_us: u64, seq: u64, items: usize, service_us: u64) {
        self.event(now_us, 0, SpanKind::Batch, 0, seq, items as u64);
        self.event(
            now_us,
            service_us.max(1),
            SpanKind::Dispatch,
            0,
            seq,
            items as u64,
        );
        self.windows.on_batch(now_us, items as u64);
    }

    /// The model-cache lookup for a dispatch resolved; on a miss that
    /// evicted residents, `evicted > 0`.
    pub fn on_cache(&mut self, now_us: u64, hit: bool, evicted: usize) {
        self.windows.on_cache(now_us, hit);
        if evicted > 0 {
            self.event(now_us, 0, SpanKind::CacheEvict, 0, 0, evicted as u64);
        }
    }

    /// A request completed: full-latency span plus window and per-tenant
    /// drift feeds.
    pub fn on_complete(&mut self, done_us: u64, request: &Request, latency_us: u64) {
        self.event(
            request.arrival_us,
            latency_us.max(1),
            SpanKind::Complete,
            request.tenant,
            request.id,
            0,
        );
        self.windows.on_served(done_us, latency_us);
        // `on_served` just rolled the tracker to `done_us`, so its
        // current window start is exactly `window_start(done_us)` —
        // reused here to keep the completion path division-free.
        self.drift.observe(
            request.tenant,
            self.windows.current_start(),
            latency_us as f64 / 1000.0,
        );
    }

    /// A tenant handoff (live migration) touched this node; `to_peer` is
    /// true on the draining source, false on the adopting destination.
    pub fn on_handoff(&mut self, at_us: u64, tenant: TenantId, peer: NodeId, to_peer: bool) {
        self.event(
            at_us,
            0,
            SpanKind::Handoff,
            tenant,
            u64::from(to_peer),
            u64::from(peer),
        );
    }

    /// Finish: seal windows, run the window-shape anomaly pass, and
    /// package everything. The anomaly scorer fits sealed windows in
    /// order, judging each against the windows before it — deterministic,
    /// no wall-clock input.
    #[must_use]
    pub fn finish(mut self) -> NodeObservation {
        let windows = self.windows.finish();
        for w in &windows {
            let features = [w.served as f32, w.shed as f32, (w.p99_us as f32).ln_1p()];
            if self.anomaly.fitted() >= ANOMALY_WARMUP_WINDOWS
                && self
                    .anomaly
                    .is_anomalous(&features, self.cfg.anomaly_threshold)
            {
                self.anomaly_alarms.push(Alarm {
                    tenant: 0,
                    window_start_us: w.start_us,
                    kind: AlarmKind::WindowAnomaly,
                    detector: "zscore",
                });
            }
            self.anomaly.fit_one(&features);
        }
        let mut alarms = self.drift.finish();
        alarms.extend(self.anomaly_alarms);
        let dropped_events = self.recorder.dropped();
        NodeObservation {
            node: self.node,
            windows,
            alarms,
            events: self.recorder.drain(),
            dropped_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, tenant: TenantId, arrival_us: u64) -> Request {
        Request {
            id,
            tenant,
            model: "m".into(),
            arrival_us,
            deadline_us: 100_000,
            features: None,
        }
    }

    #[test]
    fn default_config_is_disabled() {
        assert!(!ObserveConfig::default().enabled);
        assert!(ObserveConfig::enabled().enabled);
    }

    #[test]
    fn lifecycle_events_and_windows() {
        let mut obs = NodeObserver::new(3, ObserveConfig::enabled());
        let r = request(1, 9, 1000);
        obs.on_arrival(r.arrival_us);
        obs.on_admit(r.arrival_us, &r, 1);
        obs.on_dispatch(2000, 0, 1, 500);
        obs.on_cache(2000, false, 2);
        obs.on_complete(2500, &r, 1500);
        obs.on_handoff(3000, 9, 1, true);
        let out = obs.finish();
        assert_eq!(out.node, 3);
        let kinds: Vec<SpanKind> = out.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Admit,
                SpanKind::Enqueue,
                SpanKind::Batch,
                SpanKind::Dispatch,
                SpanKind::CacheEvict,
                SpanKind::Complete,
                SpanKind::Handoff,
            ]
        );
        assert!(out.events.iter().all(|e| e.node == 3));
        assert_eq!(out.windows.len(), 1);
        let w = &out.windows[0];
        assert_eq!(w.arrivals, 1);
        assert_eq!(w.served, 1);
        assert_eq!(w.cache_misses, 1);
        assert_eq!(out.dropped_events, 0);
    }

    #[test]
    fn stable_stream_raises_no_alarms() {
        let mut obs = NodeObserver::new(0, ObserveConfig::enabled());
        for i in 0..512u64 {
            let r = request(i, 1, i * 1000);
            obs.on_arrival(r.arrival_us);
            obs.on_admit(r.arrival_us, &r, 1);
            obs.on_complete(r.arrival_us + 2000, &r, 2000 + (i % 4) * 10);
        }
        let out = obs.finish();
        assert!(out.alarms.is_empty(), "{:?}", out.alarms);
        assert!(!out.windows.is_empty());
    }

    #[test]
    fn latency_shift_raises_tenant_drift_alarm() {
        let mut obs = NodeObserver::new(0, ObserveConfig::enabled());
        for i in 0..512u64 {
            let r = request(i, 7, i * 1000);
            obs.on_arrival(r.arrival_us);
            // Latency regime change at the halfway point.
            let latency = if i < 256 {
                2000 + (i % 16) * 20
            } else {
                9000 + (i % 16) * 20
            };
            obs.on_complete(r.arrival_us + latency, &r, latency);
        }
        let out = obs.finish();
        assert!(
            out.alarms
                .iter()
                .any(|a| a.tenant == 7 && a.kind == AlarmKind::LatencyDrift),
            "{:?}",
            out.alarms
        );
    }

    #[test]
    fn ring_capacity_bounds_events() {
        let mut cfg = ObserveConfig::enabled();
        cfg.trace_capacity = 16;
        let mut obs = NodeObserver::new(0, cfg);
        for i in 0..100u64 {
            let r = request(i, 1, i * 10);
            obs.on_admit(r.arrival_us, &r, 0);
        }
        let out = obs.finish();
        assert_eq!(out.events.len(), 16);
        assert_eq!(out.dropped_events, 200 - 16, "admit+enqueue per request");
    }
}
