//! Multi-tenant admission control and load shedding.
//!
//! The gateway is the front door of the serving plane: every request is
//! checked against its tenant's prepaid `meter` quota (§III-C — the same
//! `QuotaManager`/audit-chain machinery devices use offline), then
//! against per-tenant and global backpressure limits. Rejections are
//! cheap and immediate; admitted requests are owed a disposition.

use crate::request::{Request, ShedReason, TenantId};
use std::collections::BTreeMap;
use tinymlops_meter::QuotaManager;

/// Gateway limits.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Maximum in-flight (admitted, unresolved) requests per tenant.
    pub max_pending_per_tenant: usize,
    /// Maximum in-flight requests across all tenants (global shed point).
    pub max_total_pending: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_pending_per_tenant: 64,
            max_total_pending: 1024,
        }
    }
}

/// Per-tenant serving account.
#[derive(Debug)]
pub struct TenantAccount {
    /// Prepaid-query balance + tamper-evident audit chain.
    pub quota: QuotaManager,
    /// Admitted requests not yet served or shed.
    pub pending: usize,
    /// Lifetime admitted count.
    pub admitted: u64,
    /// Lifetime shed count (any reason).
    pub shed: u64,
    /// Prepaid queries refunded for admitted-then-shed work.
    pub refunded: u64,
}

/// The admission-controlling front door.
pub struct Gateway {
    cfg: GatewayConfig,
    tenants: BTreeMap<TenantId, TenantAccount>,
    total_pending: usize,
}

impl Gateway {
    /// New gateway under `cfg` with no tenants.
    #[must_use]
    pub fn new(cfg: GatewayConfig) -> Self {
        Gateway {
            cfg,
            tenants: BTreeMap::new(),
            total_pending: 0,
        }
    }

    /// Open a tenant account keyed by the tenant's metering key (the
    /// audit chain is verifiable against this key at billing sync).
    pub fn register_tenant(&mut self, tenant: TenantId, meter_key: [u8; 32]) {
        self.tenants.entry(tenant).or_insert_with(|| TenantAccount {
            quota: QuotaManager::new(meter_key),
            pending: 0,
            admitted: 0,
            shed: 0,
            refunded: 0,
        });
    }

    /// Detach a tenant's whole account — balance, counters and the audit
    /// chain travel together. Used by the shard fabric when a rebalance
    /// moves the tenant to another node's gateway; the chain stays intact
    /// so billing sync still verifies end-to-end.
    pub fn remove_tenant(&mut self, tenant: TenantId) -> Option<TenantAccount> {
        let account = self.tenants.remove(&tenant)?;
        self.total_pending = self.total_pending.saturating_sub(account.pending);
        Some(account)
    }

    /// Attach an account detached from another gateway (rebalance landing
    /// side). Replaces any existing account for the tenant.
    pub fn adopt_tenant(&mut self, tenant: TenantId, account: TenantAccount) {
        self.total_pending += account.pending;
        if let Some(old) = self.tenants.insert(tenant, account) {
            self.total_pending = self.total_pending.saturating_sub(old.pending);
        }
    }

    /// Credit prepaid queries from a redeemed voucher (`serial` lands in
    /// the audit chain, as in `Platform::sell_package`).
    pub fn credit(
        &mut self,
        tenant: TenantId,
        queries: u64,
        serial: u64,
        now_ms: u64,
    ) -> Result<(), crate::ServeError> {
        let account = self
            .tenants
            .get_mut(&tenant)
            .ok_or(crate::ServeError::UnknownTenant(tenant))?;
        account.quota.credit(queries, serial, now_ms);
        Ok(())
    }

    /// Admit or shed one request. Admission consumes one prepaid query —
    /// the §III-C model: the meter charges at the door, exactly like the
    /// on-device `QuotaManager` does before running inference.
    pub fn admit(&mut self, request: &Request) -> Result<(), ShedReason> {
        let now_ms = request.arrival_us / 1000;
        if self.total_pending >= self.cfg.max_total_pending {
            self.note_shed(request.tenant);
            return Err(ShedReason::Overload);
        }
        let Some(account) = self.tenants.get_mut(&request.tenant) else {
            // Unknown tenant: no account, no quota — same denial the
            // paper's metering layer gives an unprovisioned device.
            return Err(ShedReason::QuotaExhausted);
        };
        if account.pending >= self.cfg.max_pending_per_tenant {
            account.shed += 1;
            return Err(ShedReason::TenantBackpressure);
        }
        if account.quota.consume(1, now_ms).is_err() {
            account.shed += 1;
            return Err(ShedReason::QuotaExhausted);
        }
        account.pending += 1;
        account.admitted += 1;
        self.total_pending += 1;
        Ok(())
    }

    /// Resolve an admitted request that was served.
    pub fn resolve(&mut self, tenant: TenantId) {
        if let Some(account) = self.tenants.get_mut(&tenant) {
            debug_assert!(account.pending > 0, "resolve without admit");
            account.pending = account.pending.saturating_sub(1);
            self.total_pending = self.total_pending.saturating_sub(1);
        }
    }

    /// Resolve an admitted request that was shed downstream (NoRoute or
    /// deadline expiry after admission). Admission charged one prepaid
    /// query at the door; the work was never served, so the query is
    /// refunded through the audit chain (`EntryKind::Refund`) instead of
    /// being silently burned.
    pub fn resolve_shed(&mut self, tenant: TenantId, now_ms: u64) {
        if let Some(account) = self.tenants.get_mut(&tenant) {
            debug_assert!(account.pending > 0, "resolve without admit");
            account.pending = account.pending.saturating_sub(1);
            self.total_pending = self.total_pending.saturating_sub(1);
            account.quota.refund(1, now_ms);
            account.refunded += 1;
            account.shed += 1;
        }
    }

    /// Refund one prepaid query for a request that died on a *different*
    /// node — a crashed node held in-flight work of a tenant that had
    /// already migrated here (the PR 5 drain leaves dispatched work on
    /// the source and pre-subtracts it from the moving account's pending
    /// count). The shed is counted on the dead node; only the refund
    /// lands here, on the account that was charged, without touching
    /// `pending` (that debit already happened at drain time).
    pub fn refund_orphan(&mut self, tenant: TenantId, now_ms: u64) {
        if let Some(account) = self.tenants.get_mut(&tenant) {
            account.quota.refund(1, now_ms);
            account.refunded += 1;
            account.shed += 1;
        }
    }

    /// Borrow a tenant account (balances, audit log, counters).
    #[must_use]
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantAccount> {
        self.tenants.get(&tenant)
    }

    /// All tenant ids.
    #[must_use]
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// Iterate all accounts (for fleet-level quota/billing aggregation).
    pub fn accounts(&self) -> impl Iterator<Item = (TenantId, &TenantAccount)> {
        self.tenants.iter().map(|(t, a)| (*t, a))
    }

    /// Total in-flight requests.
    #[must_use]
    pub fn total_pending(&self) -> usize {
        self.total_pending
    }

    fn note_shed(&mut self, tenant: TenantId) {
        if let Some(account) = self.tenants.get_mut(&tenant) {
            account.shed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tenant: TenantId) -> Request {
        Request {
            id,
            tenant,
            model: "m".into(),
            arrival_us: id * 1000,
            deadline_us: 10_000,
            features: None,
        }
    }

    fn gateway(per_tenant: usize, total: usize) -> Gateway {
        let mut g = Gateway::new(GatewayConfig {
            max_pending_per_tenant: per_tenant,
            max_total_pending: total,
        });
        g.register_tenant(1, [1; 32]);
        g.register_tenant(2, [2; 32]);
        g
    }

    #[test]
    fn admission_consumes_quota_and_denies_when_empty() {
        let mut g = gateway(10, 100);
        g.credit(1, 2, 77, 0).unwrap();
        assert!(g.admit(&req(0, 1)).is_ok());
        assert!(g.admit(&req(1, 1)).is_ok());
        assert_eq!(g.admit(&req(2, 1)), Err(ShedReason::QuotaExhausted));
        let account = g.tenant(1).unwrap();
        assert_eq!(account.quota.balance(), 0);
        assert_eq!(account.admitted, 2);
        assert_eq!(account.shed, 1);
    }

    #[test]
    fn admissions_land_in_the_audit_chain() {
        let mut g = gateway(10, 100);
        g.credit(1, 5, 9, 0).unwrap();
        for i in 0..3 {
            g.admit(&req(i, 1)).unwrap();
        }
        let log = g.tenant(1).unwrap().quota.log();
        assert_eq!(log.query_count(), 3);
        log.verify(&[1; 32]).unwrap();
    }

    #[test]
    fn unknown_tenant_is_denied() {
        let mut g = gateway(10, 100);
        assert_eq!(g.admit(&req(0, 99)), Err(ShedReason::QuotaExhausted));
    }

    #[test]
    fn per_tenant_backpressure_before_quota_burn() {
        let mut g = gateway(1, 100);
        g.credit(1, 10, 9, 0).unwrap();
        g.admit(&req(0, 1)).unwrap();
        assert_eq!(g.admit(&req(1, 1)), Err(ShedReason::TenantBackpressure));
        assert_eq!(
            g.tenant(1).unwrap().quota.balance(),
            9,
            "backpressure shed must not burn quota"
        );
        g.resolve(1);
        assert!(g.admit(&req(2, 1)).is_ok());
    }

    #[test]
    fn downstream_shed_refunds_quota_through_the_chain() {
        let mut g = gateway(10, 100);
        g.credit(1, 2, 77, 0).unwrap();
        g.admit(&req(0, 1)).unwrap();
        g.admit(&req(1, 1)).unwrap();
        assert_eq!(g.tenant(1).unwrap().quota.balance(), 0);
        // First request is served, second sheds downstream.
        g.resolve(1);
        g.resolve_shed(1, 5);
        let account = g.tenant(1).unwrap();
        assert_eq!(account.quota.balance(), 1, "shed query returned");
        assert_eq!(account.refunded, 1);
        assert_eq!(account.pending, 0);
        let log = account.quota.log();
        assert_eq!(log.query_count(), 2);
        assert_eq!(log.refund_count(), 1);
        assert_eq!(log.net_query_count(), 1, "billing sees only served work");
        log.verify(&[1; 32]).unwrap();
        // The refunded query is re-admittable.
        assert!(g.admit(&req(2, 1)).is_ok());
    }

    #[test]
    fn account_moves_between_gateways_with_chain_intact() {
        let mut a = gateway(10, 100);
        a.credit(1, 5, 9, 0).unwrap();
        a.admit(&req(0, 1)).unwrap();
        a.resolve(1);
        let account = a.remove_tenant(1).expect("registered");
        assert!(a.tenant(1).is_none());
        let mut b = gateway(10, 100);
        b.adopt_tenant(1, account);
        let moved = b.tenant(1).unwrap();
        assert_eq!(moved.quota.balance(), 4);
        assert_eq!(moved.admitted, 1);
        moved.quota.log().verify(&[1; 32]).unwrap();
        // The adopted account keeps serving on the new gateway.
        assert!(b.admit(&req(1, 1)).is_ok());
    }

    #[test]
    fn global_overload_sheds_any_tenant() {
        let mut g = gateway(10, 2);
        g.credit(1, 10, 9, 0).unwrap();
        g.credit(2, 10, 8, 0).unwrap();
        g.admit(&req(0, 1)).unwrap();
        g.admit(&req(1, 2)).unwrap();
        assert_eq!(g.admit(&req(2, 1)), Err(ShedReason::Overload));
    }
}
