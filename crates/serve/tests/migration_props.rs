//! Property tests for the live-migration drain/handoff protocol and
//! bounded-load tenant placement.
//!
//! The migration contract: moving a tenant between fabric nodes *while
//! requests are in flight* must (a) be bit-identical between the
//! simulator (`ServeFabric::run_migrating`) and the threaded backend
//! (`run_live_migrating`) in `ExecMode::Replay` — reports, records and
//! per-tenant quota state; (b) conserve every prepaid query exactly
//! (spliced work is never dropped or double-billed, every downstream
//! shed refunds); and (c) keep every audit chain — now carrying
//! `EntryKind::Handoff` entries — verifiable. The bounded-load contract:
//! no node's tenant count ever exceeds `load_factor ×` its fair share,
//! and join/leave still move only who they must.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tinymlops_registry::{ModelFormat, ModelId, ModelRecord, SemVer};
use tinymlops_serve::{
    ExecConfig, ExecMode, FabricConfig, LoadPlan, MigrationPhase, MigrationSpec, ServeConfig,
    ServeFabric, TenantSpec,
};

fn family(name: &str, base_id: u64) -> Vec<ModelRecord> {
    [
        (ModelFormat::F32, 40_000u64, 0.96),
        (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
        (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (format, size, acc))| {
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        ModelRecord {
            id: ModelId(base_id + i as u64),
            name: name.into(),
            version: SemVer::new(1, 0, 0),
            format,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 100_000,
            metrics,
            tags: vec![],
            created_ms: 0,
        }
    })
    .collect()
}

fn fabric(cfg: &FabricConfig, fleet_size: usize, seed: u64) -> ServeFabric {
    let fleets =
        tinymlops_device::Fleet::generate(fleet_size, &tinymlops_device::default_mix(), seed)
            .partition(cfg.node_weights.len());
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", family("kws", 0));
    f.install_family("vision", family("vision", 100));
    f
}

fn plan(seed: u64, rps: f64, prepaid: u64, tenants: u32, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / f64::from(tenants),
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: prepaid,
                deadline_us,
            })
            .collect(),
        duration_us: 1_000_000,
        seed,
        feature_dim: 0,
    }
}

/// Run the same (stream, specs) through both backends on fresh fabrics
/// and demand bitwise equality plus exact conservation.
fn assert_migrating_parity_and_conservation(
    cfg: &FabricConfig,
    p: &LoadPlan,
    specs: &[MigrationSpec],
    fleet_size: usize,
    queue_capacity: usize,
) -> Result<(), TestCaseError> {
    let stream = p.generate();
    let prepaid_total: u64 = p.tenants.iter().map(|t| t.prepaid_queries).sum();

    let mut sim = fabric(cfg, fleet_size, 5);
    sim.provision(p);
    let (sim_report, sim_records) = sim.run_migrating(&stream, specs).expect("sim run");

    let mut live = fabric(cfg, fleet_size, 5);
    live.provision(p);
    let (live_report, live_records) = live
        .run_live_migrating(
            &stream,
            &ExecConfig {
                mode: ExecMode::Replay,
                queue_capacity,
            },
            specs,
        )
        .expect("live run");

    prop_assert_eq!(&live_report.fabric, &sim_report);
    prop_assert_eq!(&live_records, &sim_records);
    prop_assert_eq!(live.quota_census(), sim.quota_census());

    // Every migration completed its state machine.
    prop_assert_eq!(sim_records.len(), specs.len());
    for record in &sim_records {
        prop_assert_eq!(record.phase, MigrationPhase::Resumed);
        prop_assert_eq!(record.queue_spliced, 0usize, "replay never queue-splices");
    }
    // Conservation: every arrival accounted, every downstream shed
    // refunded, prepaid quota neither burned nor minted, chains (with
    // their handoff entries) verifiable under the provisioning keys.
    prop_assert_eq!(
        sim_report.fleet.served + sim_report.fleet.shed_total,
        stream.len() as u64
    );
    prop_assert_eq!(sim_report.unrefunded_sheds(), 0);
    prop_assert!(sim_report.refunds_balance());
    let census = sim.quota_census();
    prop_assert_eq!(census.len(), p.tenants.len(), "no tenant lost in a move");
    let spent: u64 = census.iter().map(|q| q.consumed - q.refunded).sum();
    let left: u64 = census.iter().map(|q| q.balance).sum();
    prop_assert_eq!(spent + left, prepaid_total);
    let checked = sim
        .verify_chains(|t| {
            let mut key = [0u8; 32];
            key[..4].copy_from_slice(&t.to_le_bytes());
            key
        })
        .expect("all chains verify across handoffs");
    prop_assert_eq!(checked, p.tenants.len());
    // Migrated tenants actually live on their final destinations.
    for record in &sim_records {
        if record.from != record.to {
            let last_for_tenant = sim_records
                .iter()
                .rev()
                .find(|r| r.tenant == record.tenant)
                .expect("record exists");
            prop_assert_eq!(sim.home_node(record.tenant), Some(last_for_tenant.to));
        }
    }
    Ok(())
}

proptest! {
    /// Random migration points under refund-heavy overload: tight
    /// deadlines make NoRoute/deadline sheds (and thus refunds) routine,
    /// and the migration trigger lands anywhere in (or past) the stream.
    #[test]
    fn random_migration_points_under_overload(
        seed in 0u64..500,
        trigger_us in 0u64..1_400_000,
        tenant in 1u32..9,
        to in 0u32..3,
        deadline_us in proptest::sample::select(vec![1_500u64, 40_000, 250_000]),
    ) {
        let cfg = FabricConfig::default();
        let p = plan(seed, 3_000.0, 1_000_000_000, 8, deadline_us);
        let specs = [MigrationSpec { tenant, to, trigger_us }];
        assert_migrating_parity_and_conservation(&cfg, &p, &specs, 24, 256)?;
    }

    /// Queue capacity 1: every ingest entry — arrivals *and* the
    /// drain/adopt control entries — forces a full handoff between the
    /// feeder and the node threads, maximizing interleavings.
    #[test]
    fn migration_survives_capacity_one_queues(
        seed in 0u64..200,
        trigger_us in 100_000u64..900_000,
        tenant in 1u32..7,
        to in 0u32..3,
    ) {
        let cfg = FabricConfig::default();
        let p = plan(seed, 2_000.0, 100_000, 6, 50_000);
        let specs = [MigrationSpec { tenant, to, trigger_us }];
        assert_migrating_parity_and_conservation(&cfg, &p, &specs, 18, 1)?;
    }

    /// Repeated migrations of the same tenant (including ping-pong back
    /// to the original home and no-op moves to the current home): the
    /// account hops across live threads multiple times in one run, and
    /// every hop appends a verifiable handoff entry.
    #[test]
    fn repeated_migrations_of_one_tenant(
        seed in 0u64..200,
        tenant in 1u32..7,
        hops in proptest::collection::vec((0u32..3, 1u64..10), 2..5),
    ) {
        let cfg = FabricConfig::default();
        let p = plan(seed, 2_500.0, 1_000_000_000, 6, 40_000);
        // Spread the hops across the stream in order.
        let step = 1_000_000 / (hops.len() as u64 + 1);
        let specs: Vec<MigrationSpec> = hops
            .iter()
            .enumerate()
            .map(|(i, (to, jitter))| MigrationSpec {
                tenant,
                to: *to,
                trigger_us: step * (i as u64 + 1) + jitter,
            })
            .collect();
        assert_migrating_parity_and_conservation(&cfg, &p, &specs, 18, 64)?;
    }

    /// Several tenants migrating at several points in one run, under
    /// fleet churn (periodic device battery/connectivity steps), with
    /// wall-mode conservation checked on the same workload.
    #[test]
    fn concurrent_migrations_with_fleet_churn(
        seed in 0u64..100,
        moves in proptest::collection::vec((1u32..9, 0u32..3, 0u64..1_100_000), 1..4),
    ) {
        let cfg = FabricConfig {
            serve: ServeConfig {
                fleet_step_period_us: 150_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let p = plan(seed, 3_000.0, 1_000_000_000, 8, 30_000);
        let specs: Vec<MigrationSpec> = moves
            .iter()
            .map(|(tenant, to, trigger_us)| MigrationSpec {
                tenant: *tenant,
                to: *to,
                trigger_us: *trigger_us,
            })
            .collect();
        assert_migrating_parity_and_conservation(&cfg, &p, &specs, 24, 128)?;
    }

    /// Bounded-load placement: for any topology, weights, affinity and
    /// population, no node ever exceeds `load_factor ×` its fair share —
    /// at registration time and across join/leave rebalances — and with
    /// the bound disabled, join still moves tenants only onto the joiner
    /// (classic rendezvous minimal movement through the fabric path).
    #[test]
    fn bounded_load_caps_hold_across_churn(
        nodes in 2usize..6,
        affinity in 0.0f64..1.0,
        load_factor in proptest::sample::select(vec![1.0f64, 1.1, 1.25, 2.0, f64::INFINITY]),
        tenants in 4u32..48,
        join_weight in 0.5f64..2.0,
    ) {
        let cfg = FabricConfig {
            node_weights: vec![1.0; nodes],
            tenant_affinity: affinity,
            load_factor,
            serve: ServeConfig::default(),
            ..FabricConfig::default()
        };
        let fleets = tinymlops_device::Fleet::generate(6 * nodes, &tinymlops_device::default_mix(), 3)
            .partition(nodes);
        let mut f = ServeFabric::new(&cfg, fleets);
        f.install_family("kws", family("kws", 0));
        f.install_family("vision", family("vision", 100));
        let family_of = |t: u32| if t.is_multiple_of(3) { "kws" } else { "vision" };
        for t in 1..=tenants {
            f.register_tenant(t, family_of(t), [0u8; 32]);
        }
        let check_caps = |f: &ServeFabric, total: usize, label: &str| -> Result<(), TestCaseError> {
            let caps = f.shard_router.bounded_caps(total, load_factor);
            for (node, load) in f.tenant_loads() {
                let cap = caps
                    .iter()
                    .find(|(n, _)| *n == node)
                    .map(|(_, c)| *c)
                    .unwrap_or(usize::MAX);
                prop_assert!(
                    load <= cap,
                    "{}: node {} holds {} > cap {}", label, node, load, cap
                );
            }
            prop_assert_eq!(
                f.tenant_loads().iter().map(|(_, l)| *l).sum::<usize>(),
                total,
                "every tenant has exactly one home ({})", label
            );
            Ok(())
        };
        check_caps(&f, tenants as usize, "after registration")?;

        let homes_before: Vec<(u32, _)> =
            (1..=tenants).map(|t| (t, f.home_node(t).unwrap())).collect();
        let extra = tinymlops_device::Fleet::generate(6, &tinymlops_device::default_mix(), 9);
        let (new_id, moved) = f.add_node(join_weight, extra);
        check_caps(&f, tenants as usize, "after join")?;
        if load_factor.is_infinite() {
            for (t, old) in &homes_before {
                let new = f.home_node(*t).unwrap();
                if new != *old {
                    prop_assert_eq!(new, new_id, "unbounded movers only land on the joiner");
                }
            }
        }
        prop_assert!(moved <= tenants as usize);

        let moved_back = f.remove_node(new_id).expect("node exists");
        check_caps(&f, tenants as usize, "after leave")?;
        prop_assert!(moved_back <= tenants as usize);
    }
}
