//! Property-based tests for the sharding fabric: tenant placement must be
//! stable under node join/leave (rendezvous minimal movement), and the
//! quota refund path must keep every audit chain verifiable.

use proptest::prelude::*;
use tinymlops_serve::{Gateway, GatewayConfig, Request, ShardNode, ShardRouter};

fn router(weights: &[f64], affinity: f64) -> ShardRouter {
    ShardRouter::new(
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| ShardNode {
                id: i as u32,
                weight: w,
            })
            .collect(),
        affinity,
    )
}

fn request(id: u64, tenant: u32, arrival_us: u64) -> Request {
    Request {
        id,
        tenant,
        model: "m".into(),
        arrival_us,
        deadline_us: 1_000_000,
        features: None,
    }
}

proptest! {
    /// Node join: every tenant either keeps its node or moves *to the
    /// joining node*, and (at affinity 0, where placements are
    /// independent) only about its fair share `K/N` of tenants moves.
    #[test]
    fn join_is_minimal_movement(
        node_count in 2usize..8,
        new_weight in 0.5f64..2.0,
        affinity in 0.0f64..0.9,
        tenants in proptest::collection::vec((0u32..10_000, 0u8..6), 1..300),
    ) {
        let weights = vec![1.0; node_count];
        let mut r = router(&weights, affinity);
        let family_name = |f: u8| format!("family{f}");
        let before: Vec<u32> = tenants
            .iter()
            .map(|(t, f)| r.assign(*t, &family_name(*f)))
            .collect();
        r.add_node(ShardNode { id: 1000, weight: new_weight });
        let mut moved = 0usize;
        for ((t, f), old) in tenants.iter().zip(&before) {
            let new = r.assign(*t, &family_name(*f));
            if new != *old {
                prop_assert_eq!(new, 1000, "movers only land on the joiner");
                moved += 1;
            }
        }
        if affinity == 0.0 {
            // Independent placements: expected share = w/(N+w). Allow wide
            // sampling slack but rule out mass reshuffles.
            let share = new_weight / (node_count as f64 + new_weight);
            let bound = (share * 3.0 + 0.15) * tenants.len() as f64;
            prop_assert!(
                (moved as f64) <= bound,
                "moved {} of {} (expected share {:.2})", moved, tenants.len(), share
            );
        }
    }

    /// Node leave: only tenants homed on the departed node move, and the
    /// survivors' assignments are exactly what a fresh router over the
    /// surviving topology computes (no history dependence).
    #[test]
    fn leave_is_minimal_movement_and_history_free(
        node_count in 3usize..8,
        victim in 0usize..8,
        affinity in 0.0f64..0.9,
        tenants in proptest::collection::vec((0u32..10_000, 0u8..6), 1..300),
    ) {
        let victim = (victim % node_count) as u32;
        let weights = vec![1.0; node_count];
        let mut r = router(&weights, affinity);
        let family_name = |f: u8| format!("family{f}");
        let before: Vec<u32> = tenants
            .iter()
            .map(|(t, f)| r.assign(*t, &family_name(*f)))
            .collect();
        prop_assert!(r.remove_node(victim));
        let fresh = ShardRouter::new(
            (0..node_count as u32)
                .filter(|id| *id != victim)
                .map(|id| ShardNode { id, weight: 1.0 })
                .collect(),
            affinity,
        );
        for ((t, f), old) in tenants.iter().zip(&before) {
            let new = r.assign(*t, &family_name(*f));
            if *old != victim {
                prop_assert_eq!(new, *old, "survivor tenant {} moved", t);
            } else {
                prop_assert_ne!(new, victim);
            }
            prop_assert_eq!(new, fresh.assign(*t, &family_name(*f)));
        }
    }

    /// Any interleaving of credits, admissions, serves and downstream
    /// sheds keeps the audit chain verifiable, keeps the balance equal to
    /// credited − consumed + refunded, and never refunds more than was
    /// consumed.
    #[test]
    fn refund_path_keeps_chains_verifiable(
        credits in proptest::collection::vec(1u64..50, 1..4),
        // true = downstream shed (refund), false = served.
        outcomes in proptest::collection::vec(any::<bool>(), 1..150),
    ) {
        let key = [42u8; 32];
        let mut g = Gateway::new(GatewayConfig::default());
        g.register_tenant(1, key);
        for (serial, c) in credits.iter().enumerate() {
            g.credit(1, *c, serial as u64, serial as u64).unwrap();
        }
        let credited: u64 = credits.iter().sum();
        let mut admitted = 0u64;
        for (i, shed_downstream) in outcomes.iter().enumerate() {
            let req = request(i as u64, 1, i as u64 * 1000);
            if g.admit(&req).is_err() {
                continue;
            }
            admitted += 1;
            if *shed_downstream {
                g.resolve_shed(1, i as u64);
            } else {
                g.resolve(1);
            }
        }
        let account = g.tenant(1).unwrap();
        let log = account.quota.log();
        log.verify(&key).expect("chain verifies with refund entries");
        prop_assert_eq!(log.query_count(), admitted);
        prop_assert_eq!(log.refund_count(), account.refunded);
        prop_assert!(log.refund_count() <= log.query_count());
        prop_assert_eq!(
            account.quota.balance(),
            credited + account.refunded - admitted,
            "balance reconstructs from the chain"
        );
        prop_assert_eq!(
            log.net_query_count(),
            admitted - account.refunded,
            "billing sees exactly the served work"
        );
    }
}
