//! Concurrency stress tests for the wall-clock serving backend.
//!
//! The contract under test: `ServeFabric::run_live` in `ExecMode::Replay`
//! — one OS thread per node behind real bounded ingest queues — produces
//! a `FabricReport` **bit-identical** to the single-threaded simulator
//! (`ServeFabric::run`) for the same stream, across seeds, node counts,
//! batch policies, fleet churn, and refund-heavy overload. `ExecMode::
//! Wall` gives up bitwise determinism but must keep every conservation
//! law: arrivals = served + shed, refunds = downstream sheds, prepaid
//! quota neither burned nor minted.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tinymlops_device::{default_mix, Fleet, NetworkKind};
use tinymlops_registry::{ModelFormat, ModelId, ModelRecord, SemVer};
use tinymlops_serve::{
    ExecConfig, ExecMode, FabricConfig, LoadPlan, ServeConfig, ServeFabric, TenantSpec,
};

fn family(name: &str, base_id: u64) -> Vec<ModelRecord> {
    [
        (ModelFormat::F32, 40_000u64, 0.96),
        (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
        (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (format, size, acc))| {
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        ModelRecord {
            id: ModelId(base_id + i as u64),
            name: name.into(),
            version: SemVer::new(1, 0, 0),
            format,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 100_000,
            metrics,
            tags: vec![],
            created_ms: 0,
        }
    })
    .collect()
}

fn fabric(cfg: &FabricConfig, fleet_size: usize, seed: u64) -> ServeFabric {
    let fleets =
        Fleet::generate(fleet_size, &default_mix(), seed).partition(cfg.node_weights.len());
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", family("kws", 0));
    f.install_family("vision", family("vision", 100));
    f
}

fn plan(seed: u64, rps: f64, prepaid: u64, tenants: u32, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / f64::from(tenants),
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: prepaid,
                deadline_us,
            })
            .collect(),
        duration_us: 1_000_000,
        seed,
        feature_dim: 0,
    }
}

/// Run the same stream through the simulator and the threaded backend on
/// fresh, identically-built fabrics, and demand bitwise equality.
fn assert_live_matches_sim(cfg: &FabricConfig, p: &LoadPlan, fleet_size: usize, queue_cap: usize) {
    let stream = p.generate();
    let mut sim_fabric = fabric(cfg, fleet_size, 5);
    sim_fabric.provision(p);
    let sim_report = sim_fabric.run(&stream).expect("sim replay");
    let mut live_fabric = fabric(cfg, fleet_size, 5);
    live_fabric.provision(p);
    let live = live_fabric
        .run_live(
            &stream,
            &ExecConfig {
                mode: ExecMode::Replay,
                queue_capacity: queue_cap,
            },
        )
        .expect("live replay");
    assert_eq!(
        live.fabric, sim_report,
        "threaded replay diverged from the simulator"
    );
    assert_eq!(live.requests, stream.len());
    assert!(live.wall_ms > 0.0);
    // The per-tenant quota state must match too, not just the report.
    assert_eq!(live_fabric.quota_census(), sim_fabric.quota_census());
}

#[test]
fn live_replay_matches_sim_at_scale_with_churn_and_refunds() {
    // Tight deadlines + periodic fleet churn: deadline and NoRoute sheds
    // exercise the refund path from worker threads.
    let cfg = FabricConfig {
        node_weights: vec![1.0, 2.0, 1.0],
        serve: ServeConfig {
            fleet_step_period_us: 150_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let p = plan(41, 8_000.0, u64::MAX / 2, 12, 1_900);
    let stream = p.generate();
    let mut live_fabric = fabric(&cfg, 30, 5);
    live_fabric.provision(&p);
    let live = live_fabric
        .run_live(&stream, &ExecConfig::default())
        .expect("live");
    assert!(
        live.fabric.downstream_sheds() > 0,
        "stress workload must produce admitted-then-shed work"
    );
    assert_eq!(live.fabric.unrefunded_sheds(), 0);
    assert!(live.fabric.refunds_balance());
    assert_live_matches_sim(&cfg, &p, 30, 1024);
}

#[test]
fn live_replay_matches_sim_under_tiny_queues() {
    // Capacity 1 forces a queue handoff per request — maximum
    // backpressure, maximum interleaving of feeder and node threads.
    let cfg = FabricConfig::default();
    let p = plan(7, 2_000.0, 1_000_000, 8, 200_000);
    assert_live_matches_sim(&cfg, &p, 45, 1);
}

#[test]
fn live_replay_matches_sim_when_all_routes_are_down() {
    // Every admitted batch hits NoRoute: the refund path carries the
    // whole run, concurrently on every node thread.
    let cfg = FabricConfig::default();
    let mut fleets = Fleet::generate(30, &default_mix(), 2).partition(3);
    for fleet in &mut fleets {
        for d in &mut fleet.devices {
            d.state.network = NetworkKind::Offline;
        }
    }
    let build = || {
        let mut f = ServeFabric::new(&cfg, {
            let mut fs = Fleet::generate(30, &default_mix(), 2).partition(3);
            for fleet in &mut fs {
                for d in &mut fleet.devices {
                    d.state.network = NetworkKind::Offline;
                }
            }
            fs
        });
        f.install_family("kws", family("kws", 0));
        f.install_family("vision", family("vision", 100));
        f
    };
    drop(fleets);
    let p = plan(3, 500.0, 10_000, 6, 200_000);
    let stream = p.generate();
    let mut sim_fabric = build();
    sim_fabric.provision(&p);
    let sim_report = sim_fabric.run(&stream).unwrap();
    let mut live_fabric = build();
    live_fabric.provision(&p);
    let live = live_fabric
        .run_live(&stream, &ExecConfig::default())
        .unwrap();
    assert_eq!(live.fabric, sim_report);
    assert_eq!(live.fabric.fleet.served, 0);
    assert!(live.fabric.downstream_sheds() > 0);
    assert_eq!(live.fabric.unrefunded_sheds(), 0);
    for q in live_fabric.quota_census() {
        assert_eq!(q.balance, 10_000, "refunds restored tenant {}", q.tenant);
    }
}

#[test]
fn wall_mode_keeps_conservation_laws() {
    // Wall-clock outcomes are timing-dependent, but nothing may leak:
    // every arrival is served or shed, every downstream shed refunds,
    // and prepaid balances add up.
    let cfg = FabricConfig::default();
    let prepaid = 4_000u64;
    // Short plan (0.25 s simulated) so the paced feeder finishes fast.
    let p = LoadPlan {
        duration_us: 250_000,
        ..plan(11, 4_000.0, prepaid, 6, 50_000)
    };
    let stream = p.generate();
    let mut f = fabric(&cfg, 30, 5);
    f.provision(&p);
    let live = f
        .run_live(
            &stream,
            &ExecConfig {
                mode: ExecMode::Wall,
                queue_capacity: 256,
            },
        )
        .expect("wall run");
    let fleet = &live.fabric.fleet;
    assert_eq!(
        fleet.served + fleet.shed_total,
        stream.len() as u64,
        "every arrival is accounted for"
    );
    assert!(
        live.fabric.refunds_balance(),
        "refunds ({}) must match downstream sheds ({})",
        live.fabric.refunds,
        live.fabric.downstream_sheds()
    );
    assert_eq!(live.fabric.unrefunded_sheds(), 0);
    let census = f.quota_census();
    let spent: u64 = census.iter().map(|q| q.consumed - q.refunded).sum();
    let left: u64 = census.iter().map(|q| q.balance).sum();
    assert_eq!(
        spent + left,
        prepaid * 6,
        "prepaid quota neither burned nor minted"
    );
    // Wall time really elapsed: the feeder paces up to the *last
    // arrival's* timestamp (strictly below the nominal 250 ms plan
    // duration), so that — not the plan duration — is the hard floor.
    let last_arrival_ms = stream.last().expect("non-empty stream").arrival_us as f64 / 1e3;
    assert!(
        live.wall_ms >= last_arrival_ms,
        "paced run took {} ms, below the last arrival at {} ms",
        live.wall_ms,
        last_arrival_ms
    );
}

#[test]
fn errored_node_returns_instead_of_deadlocking_the_feeder() {
    // A fabric with no installed families makes every node worker exit
    // with `NoFamilies` *before* draining its queue. With a bounded
    // queue smaller than the stream, the feeder must not block forever
    // against the dead consumer — the run returns the error, exactly
    // like the simulated backend does for the identical input.
    let cfg = FabricConfig::default();
    let fleets = Fleet::generate(9, &default_mix(), 1).partition(3);
    let mut empty_fabric = ServeFabric::new(&cfg, fleets);
    let p = plan(5, 1_000.0, 1_000, 4, 200_000);
    empty_fabric.provision(&p);
    let stream = p.generate();
    assert!(stream.len() > 16, "stream must overflow the tiny queues");
    let result = empty_fabric.run_live(
        &stream,
        &ExecConfig {
            mode: ExecMode::Replay,
            queue_capacity: 4,
        },
    );
    assert!(
        matches!(result, Err(tinymlops_serve::ServeError::NoFamilies)),
        "live backend must surface the node error: {result:?}"
    );
}

#[test]
fn live_backend_is_reusable_across_runs() {
    // Back-to-back live runs on one fabric: balances carry over and the
    // second run still matches a sim replay of a twice-run fabric.
    let cfg = FabricConfig::default();
    let p = plan(17, 1_000.0, 50_000, 8, 200_000);
    let stream = p.generate();
    let mut live_fabric = fabric(&cfg, 30, 5);
    live_fabric.provision(&p);
    let mut sim_fabric = fabric(&cfg, 30, 5);
    sim_fabric.provision(&p);
    let first_live = live_fabric
        .run_live(&stream, &ExecConfig::default())
        .unwrap();
    let first_sim = sim_fabric.run(&stream).unwrap();
    assert_eq!(first_live.fabric, first_sim);
    let second_live = live_fabric
        .run_live(&stream, &ExecConfig::default())
        .unwrap();
    let second_sim = sim_fabric.run(&stream).unwrap();
    assert_eq!(second_live.fabric, second_sim);
}

proptest! {
    /// Randomized workloads: node count, rates, batch size, deadlines and
    /// queue capacity all vary; the threaded replay must stay bit-exact.
    #[test]
    fn live_replay_matches_sim_for_arbitrary_workloads(
        seed in 0u64..1000,
        nodes in 2usize..5,
        tenants in 2u32..10,
        rps in 500.0f64..3_000.0,
        max_batch in 1usize..12,
        deadline_us in proptest::sample::select(vec![1_500u64, 50_000, 250_000]),
        queue_capacity in proptest::sample::select(vec![1usize, 64, 4096]),
    ) {
        let cfg = FabricConfig {
            node_weights: vec![1.0; nodes],
            serve: ServeConfig {
                batch: tinymlops_serve::BatchPolicy {
                    max_batch,
                    max_delay_us: 2_000,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let p = plan(seed, rps, 100_000, tenants, deadline_us);
        assert_live_matches_sim(&cfg, &p, 8 * nodes, queue_capacity);
    }
}
