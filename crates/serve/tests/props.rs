//! Property-based tests: serving-plane invariants under arbitrary
//! traffic shapes.
//!
//! The batcher must never exceed its size or delay bounds and must
//! preserve per-tenant FIFO order; the model cache must never exceed its
//! byte budget and must evict in strict LRU order.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tinymlops_serve::{Admission, BatchPolicy, MicroBatcher, ModelCache, PushOutcome, Request};

use tinymlops_registry::{ModelFormat, ModelId, ModelRecord, SemVer};

fn request(id: u64, tenant: u32, model: &str, arrival_us: u64) -> Request {
    Request {
        id,
        tenant,
        model: model.into(),
        arrival_us,
        deadline_us: 1_000_000,
        features: None,
    }
}

fn record(id: u64, size: u64) -> ModelRecord {
    ModelRecord {
        id: ModelId(id),
        name: format!("m{id}"),
        version: SemVer::new(1, 0, 0),
        format: ModelFormat::F32,
        parent: None,
        artifact: [0; 32],
        size_bytes: size,
        macs: 1,
        metrics: BTreeMap::new(),
        tags: vec![],
        created_ms: 0,
    }
}

proptest! {
    /// Every flushed batch respects `max_batch`, holds one family only,
    /// and flushes no earlier than necessary / no later than allowed:
    /// a deadline-triggered batch's oldest member has waited at least
    /// `max_delay_us`.
    #[test]
    fn batcher_never_exceeds_size_or_delay_bounds(
        max_batch in 1usize..12,
        max_delay_us in 100u64..5_000,
        // (tenant, family, gap_us) per arriving request.
        arrivals in proptest::collection::vec((0u32..4, 0u8..3, 0u64..2_000), 1..200),
    ) {
        let mut batcher = MicroBatcher::new(BatchPolicy { max_batch, max_delay_us });
        let mut now = 0u64;
        let mut flushed: Vec<(u64, tinymlops_serve::Batch)> = Vec::new();
        for (id, (tenant, family, gap)) in arrivals.iter().enumerate() {
            now += gap;
            // Deadline triggers that became due before this arrival.
            while let Some((f, due)) = batcher.next_deadline_us() {
                if due > now { break; }
                let batch = batcher.flush_due(&f, due).expect("due timer flushes");
                flushed.push((due, batch));
            }
            let family_name = ["a", "b", "c"][*family as usize];
            if let PushOutcome::Flushed(batch) = batcher.push(request(id as u64, *tenant, family_name, now)) {
                flushed.push((now, batch));
            }
        }
        // Drain the tail via deadline triggers.
        while let Some((f, due)) = batcher.next_deadline_us() {
            let batch = batcher.flush_due(&f, due).expect("due timer flushes");
            flushed.push((due, batch));
        }
        prop_assert_eq!(batcher.pending(), 0);
        let mut total = 0usize;
        for (flush_time, batch) in &flushed {
            prop_assert!(batch.requests.len() <= max_batch, "batch over size bound");
            prop_assert!(!batch.requests.is_empty());
            total += batch.requests.len();
            for r in &batch.requests {
                prop_assert_eq!(&r.model, &batch.model, "one family per batch");
                let waited = flush_time.saturating_sub(r.arrival_us);
                prop_assert!(
                    waited <= max_delay_us,
                    "request waited {}us > bound {}us", waited, max_delay_us
                );
            }
            if batch.trigger == tinymlops_serve::FlushTrigger::Deadline {
                let oldest = batch.requests.first().expect("non-empty");
                prop_assert!(
                    flush_time - oldest.arrival_us >= max_delay_us,
                    "deadline flush fired early"
                );
            }
        }
        prop_assert_eq!(total, arrivals.len(), "no request lost or duplicated");
    }

    /// Concatenating flushed batches preserves, per tenant, the exact
    /// arrival order (FIFO fairness: batching never reorders a tenant's
    /// own requests).
    #[test]
    fn batcher_preserves_per_tenant_fifo(
        max_batch in 1usize..10,
        tenants in proptest::collection::vec(0u32..5, 1..150),
    ) {
        let mut batcher = MicroBatcher::new(BatchPolicy { max_batch, max_delay_us: 1_000 });
        let mut dispatched: Vec<Request> = Vec::new();
        for (id, tenant) in tenants.iter().enumerate() {
            if let PushOutcome::Flushed(batch) = batcher.push(request(id as u64, *tenant, "m", id as u64)) {
                dispatched.extend(batch.requests);
            }
        }
        for batch in batcher.drain() {
            dispatched.extend(batch.requests);
        }
        for tenant in 0u32..5 {
            let order: Vec<u64> = dispatched
                .iter()
                .filter(|r| r.tenant == tenant)
                .map(|r| r.id)
                .collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&order, &sorted, "tenant {} reordered: {:?}", tenant, order);
        }
    }

    /// Under any interleaving of admits and lookups the cache never
    /// exceeds its byte budget, and evictions happen in exact LRU order.
    #[test]
    fn cache_holds_budget_and_evicts_strict_lru(
        budget in 1u64..2_000,
        // (model id, size, lookup-first flag) operations.
        ops in proptest::collection::vec((0u64..30, 1u64..600, any::<bool>()), 1..200),
    ) {
        let mut cache = ModelCache::new(budget);
        // Shadow model: perfect LRU list of (id, size), hottest last.
        let mut shadow: Vec<(u64, u64)> = Vec::new();
        for (id, size, lookup_first) in ops.iter() {
            if *lookup_first {
                let hit = cache.get(ModelId(*id)).is_some();
                let shadow_hit = shadow.iter().any(|(sid, _)| sid == id);
                prop_assert_eq!(hit, shadow_hit, "hit/miss diverges from shadow LRU");
                if shadow_hit {
                    let pos = shadow.iter().position(|(sid, _)| sid == id).expect("hit");
                    let entry = shadow.remove(pos);
                    shadow.push(entry);
                }
                continue;
            }
            // Admission: resident ids refresh; new ids evict coldest-first.
            let resident = shadow.iter().any(|(sid, _)| sid == id);
            let outcome = cache.admit(record(*id, *size));
            if resident {
                prop_assert_eq!(outcome, Admission::AlreadyResident);
                let pos = shadow.iter().position(|(sid, _)| sid == id).expect("resident");
                let entry = shadow.remove(pos);
                shadow.push(entry);
            } else if *size > budget {
                prop_assert_eq!(outcome, Admission::TooLarge);
            } else {
                let mut used: u64 = shadow.iter().map(|(_, s)| s).sum();
                let mut evicted = 0usize;
                while used + size > budget {
                    let (_, gone) = shadow.remove(0);
                    used -= gone;
                    evicted += 1;
                }
                shadow.push((*id, *size));
                prop_assert_eq!(outcome, Admission::Inserted(evicted));
            }
            let used: u64 = shadow.iter().map(|(_, s)| s).sum();
            prop_assert!(cache.used_bytes() <= budget, "budget exceeded");
            prop_assert_eq!(cache.used_bytes(), used, "byte accounting diverges");
            let order: Vec<u64> = cache.resident_lru_order().iter().map(|m| m.0).collect();
            let shadow_order: Vec<u64> = shadow.iter().map(|(sid, _)| *sid).collect();
            prop_assert_eq!(&order, &shadow_order, "LRU order diverges from shadow");
        }
    }
}
