//! Property tests for the lock-free ingest queue and the closed-loop
//! client driver.
//!
//! The queue contract under test ([`IngestQueue`]): multi-producer
//! single-consumer FIFO — items from one producer are popped in push
//! order under arbitrary interleavings and capacities (including the
//! degenerate capacity-1 ring, which forces a lockstep handoff per
//! item); a producer-side [`IngestQueue::close`] drains every accepted
//! item before pops report closed; and the consumer-death path
//! ([`IngestQueue::close_and_clear`]) releases parked producers *and*
//! every buffered control entry's reply channel even while pushes are
//! still racing the teardown — the regression the exec layer guards
//! against, generalized over seeds and schedules.
//!
//! The closed-loop contract: [`ServeFabric::run_closed_loop`] is a pure
//! function of its plan — same seed, same population, bit-identical
//! trace, client stats and fleet report, for arbitrary populations,
//! think times and windows.

use proptest::prelude::*;
use std::sync::mpsc;
use std::thread;
use tinymlops_serve::{
    ClientPlan, ClientSpec, FabricConfig, IngestQueue, LoadPlan, RetryPolicy, TenantSpec,
};

/// Tagged item: (producer id, per-producer sequence number).
type Tagged = (usize, u64);

/// Drive `producers` threads, each pushing `per_producer` tagged items,
/// while the calling thread pops them all; returns the pop order.
fn run_handoff(producers: usize, per_producer: u64, capacity: usize) -> Vec<Tagged> {
    let queue = IngestQueue::<Tagged>::new(capacity);
    let total = producers as u64 * per_producer;
    let mut popped = Vec::with_capacity(total as usize);
    thread::scope(|scope| {
        for pid in 0..producers {
            let queue = &queue;
            scope.spawn(move || {
                for seq in 0..per_producer {
                    assert!(queue.push((pid, seq)), "queue closed under the producer");
                }
            });
        }
        for _ in 0..total {
            assert!(queue.len() <= capacity, "ring grew past its capacity bound");
            popped.push(queue.pop().expect("closed before all items drained"));
        }
    });
    // All producers have joined (scope end): a producer-side close is now
    // in contract, and the queue must be empty.
    queue.close();
    assert_eq!(queue.pop(), None, "drained queue must report closed");
    popped
}

/// Assert per-producer FIFO: each producer's sequence numbers appear in
/// increasing order, exactly once each.
fn assert_fifo_per_producer(popped: &[Tagged], producers: usize, per_producer: u64) {
    let mut next = vec![0u64; producers];
    for &(pid, seq) in popped {
        assert_eq!(
            seq, next[pid],
            "producer {pid}: popped {seq}, expected {} (FIFO violated)",
            next[pid]
        );
        next[pid] += 1;
    }
    assert!(
        next.iter().all(|&n| n == per_producer),
        "not every pushed item was popped: {next:?}"
    );
}

/// A queue item that mimics the exec layer's control entries: `Control`
/// carries a reply channel a coordinating feeder would block on.
enum Item {
    Work(#[allow(dead_code)] u64),
    Control(#[allow(dead_code)] mpsc::Sender<u64>),
}

proptest! {
    /// MPSC FIFO holds for arbitrary producer counts, item counts and
    /// capacities — including capacity 1, where every item is a
    /// park/wake handoff.
    #[test]
    fn fifo_per_producer_across_interleavings(
        producers in 1usize..4,
        per_producer in 1u64..300,
        capacity in proptest::sample::select(vec![1usize, 2, 7, 64, 1024]),
    ) {
        let popped = run_handoff(producers, per_producer, capacity);
        assert_fifo_per_producer(&popped, producers, per_producer);
    }

    /// The capacity-1 ring is a strict lockstep pipe: at most one item
    /// is ever buffered, and a single producer's stream arrives intact
    /// and in order.
    #[test]
    fn capacity_one_is_a_lockstep_pipe(items in 1u64..500) {
        let popped = run_handoff(1, items, 1);
        assert_fifo_per_producer(&popped, 1, items);
    }

    /// Consumer death while producers are parked on a full ring: every
    /// producer must return (push -> false) instead of sleeping forever,
    /// and every control entry's reply channel must be released —
    /// whether it was popped before the teardown, stranded in the ring,
    /// or still in a racing producer's hands.
    #[test]
    fn close_while_full_releases_producers_and_reply_channels(
        producers in 1usize..4,
        per_producer in 1u64..40,
        capacity in proptest::sample::select(vec![1usize, 2, 5]),
        control_every in 1u64..5,
        pop_first in 0u64..8,
    ) {
        let queue = IngestQueue::<Item>::new(capacity);
        let mut receivers = Vec::new();
        let (rx_tx, rx_rx) = mpsc::channel::<mpsc::Receiver<u64>>();
        thread::scope(|scope| {
            for pid in 0..producers {
                let queue = &queue;
                let rx_tx = rx_tx.clone();
                scope.spawn(move || {
                    for seq in 0..per_producer {
                        let item = if seq % control_every == 0 {
                            let (tx, rx) = mpsc::channel();
                            // Hand the receiver out *before* pushing, so
                            // the main thread tracks channels even when
                            // this push is refused.
                            rx_tx.send(rx).unwrap();
                            Item::Control(tx)
                        } else {
                            Item::Work(pid as u64 * 1_000 + seq)
                        };
                        if !queue.push(item) {
                            // Closed: the rest of this producer's stream
                            // is dropped, exactly like a feeder whose
                            // node died mid-run.
                            break;
                        }
                    }
                });
            }
            drop(rx_tx);
            // Consume a prefix, then die. `pop` blocks on an open queue,
            // so cap the prefix below the total the producers will push —
            // before the teardown no push is refused, so each of these
            // pops is guaranteed an eventual item.
            let total = producers as u64 * per_producer;
            for _ in 0..pop_first.min(total - 1) {
                let _ = queue.pop();
            }
            queue.close_and_clear();
            // Liveness: scope exit joins every producer — a parked
            // producer that never woke would hang the test here.
        });
        while let Ok(rx) = rx_rx.try_recv() {
            receivers.push(rx);
        }
        assert!(!queue.push(Item::Work(0)), "cleared queue must refuse pushes");
        assert_eq!(
            queue.len(), 0,
            "close_and_clear must leave nothing buffered"
        );
        // Every reply channel resolves: nobody replied, so each receiver
        // must observe its sender dropped (popped-and-dropped, cleared
        // from the ring, or refused at push) rather than block a
        // coordinating feeder forever.
        for rx in receivers {
            assert!(
                rx.recv().is_err(),
                "a control reply channel survived the teardown"
            );
        }
    }

    /// `run_closed_loop` is deterministic: identical plans on identically
    /// provisioned fabrics produce bit-identical traces, client stats and
    /// fleet reports, across arbitrary populations and windows.
    #[test]
    fn closed_loop_replay_is_deterministic(
        seed in 0u64..1000,
        clients_per_tenant in 1usize..4,
        think_mean_us in 500.0f64..20_000.0,
        duration_us in 50_000u64..300_000,
    ) {
        let tenants: Vec<TenantSpec> = (1..=3u32)
            .map(|id| TenantSpec {
                id,
                rate_rps: 0.0, // demand comes from the clients
                model: if id % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: 100_000,
                deadline_us: 40_000,
            })
            .collect();
        let run = || {
            let cfg = FabricConfig {
                node_weights: vec![1.0, 1.0],
                ..FabricConfig::default()
            };
            let mut fabric = tinymlops_serve::testkit::test_fabric(&cfg, 16, 7);
            fabric.provision(&LoadPlan {
                tenants: tenants.clone(),
                duration_us: 0,
                seed: 0,
                feature_dim: 0,
            });
            let plan = ClientPlan {
                clients: tenants
                    .iter()
                    .flat_map(|t| {
                        (0..clients_per_tenant).map(|_| ClientSpec {
                            tenant: t.id,
                            model: t.model.clone(),
                            think_mean_us,
                            deadline_us: t.deadline_us,
                        })
                    })
                    .collect(),
                duration_us,
                seed,
                feature_dim: 0,
                retry: RetryPolicy::default(),
            };
            fabric.run_closed_loop(&plan).expect("closed loop runs")
        };
        let a = run();
        let b = run();
        prop_assert!(!a.trace.is_empty(), "population issued no work");
        prop_assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            prop_assert_eq!(
                (x.id, x.tenant, x.arrival_us, x.deadline_us),
                (y.id, y.tenant, y.arrival_us, y.deadline_us)
            );
        }
        prop_assert_eq!(&a.clients, &b.clients);
        prop_assert_eq!(&a.fabric, &b.fabric);
        // Demand-side conservation holds for every parameterization.
        prop_assert_eq!(a.clients.served + a.clients.shed_final, a.clients.issued);
        prop_assert_eq!(a.clients.lost, 0);
    }
}
