//! Property tests for the fault-injection plane and self-healing fabric.
//!
//! The contracts under test:
//!
//! * **Conservation across failover** — an injected node crash with real
//!   in-flight and queued work loses nothing: every admitted-then-killed
//!   request resolves as a refunded failover shed (`unrefunded_sheds()
//!   == 0`, `refunds_balance()`), the fleet-wide prepaid census stays
//!   exact (spent + left == credited), and every evacuated tenant's
//!   audit chain still verifies — now carrying a domain-separated
//!   `Failover` entry sealed by the survivor.
//! * **Backend parity** — the same `FaultPlan` (crashes, stalls,
//!   slowdowns) replays bit-identically on the simulator and the
//!   threaded backend in `ExecMode::Replay`, with and without
//!   concurrent live migrations.
//! * **Genuine death containment** — a `DispatchPanic` worker death
//!   (threaded only) surfaces as a structured `NodeFailure` instead of
//!   poisoning the run, even with capacity-1 queues and a migration
//!   drain racing the dead node (`close_and_clear` releases the
//!   buffered drain's reply channel, so the feeder never deadlocks).
//! * **Off means off** — a default (disabled) plan and an armed-but-
//!   empty plan are byte-identical to a run with no fault plane at all.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tinymlops_device::{default_mix, Fleet};
use tinymlops_registry::{ModelFormat, ModelId, ModelRecord, SemVer};
use tinymlops_serve::{
    ExecConfig, ExecMode, FabricConfig, FaultEvent, FaultKind, FaultPlan, LoadPlan, MigrationSpec,
    ServeFabric, TenantSpec,
};

fn family(name: &str, base_id: u64) -> Vec<ModelRecord> {
    [
        (ModelFormat::F32, 40_000u64, 0.96),
        (ModelFormat::Quantized { bits: 8 }, 10_000, 0.95),
        (ModelFormat::Quantized { bits: 2 }, 2_500, 0.88),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (format, size, acc))| {
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        ModelRecord {
            id: ModelId(base_id + i as u64),
            name: name.into(),
            version: SemVer::new(1, 0, 0),
            format,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs: 100_000,
            metrics,
            tags: vec![],
            created_ms: 0,
        }
    })
    .collect()
}

fn fabric(cfg: &FabricConfig, fleet_size: usize, seed: u64) -> ServeFabric {
    let fleets =
        Fleet::generate(fleet_size, &default_mix(), seed).partition(cfg.node_weights.len());
    let mut f = ServeFabric::new(cfg, fleets);
    f.install_family("kws", family("kws", 0));
    f.install_family("vision", family("vision", 100));
    f
}

fn plan(seed: u64, rps: f64, prepaid: u64, tenants: u32, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: rps / f64::from(tenants),
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: prepaid,
                deadline_us,
            })
            .collect(),
        duration_us: 1_000_000,
        seed,
        feature_dim: 0,
    }
}

/// The test meter-key scheme `ServeFabric::provision` uses.
fn key_of(tenant: u32) -> [u8; 32] {
    let mut key = [0u8; 32];
    key[..4].copy_from_slice(&tenant.to_le_bytes());
    key
}

/// Assert every fault-plane conservation law on a finished fabric.
fn assert_conservation(
    fabric: &ServeFabric,
    report: &tinymlops_serve::FabricReport,
    arrivals: u64,
    prepaid_total: u64,
) {
    assert_eq!(
        report.fleet.served + report.fleet.shed_total,
        arrivals,
        "every arrival is served or shed"
    );
    assert_eq!(report.unrefunded_sheds(), 0, "no prepaid query burned");
    assert!(
        report.refunds_balance(),
        "refunds ({}) must equal downstream sheds ({})",
        report.refunds,
        report.downstream_sheds()
    );
    let census = fabric.quota_census();
    let spent: u64 = census.iter().map(|q| q.consumed - q.refunded).sum();
    let left: u64 = census.iter().map(|q| q.balance).sum();
    assert_eq!(
        spent + left,
        prepaid_total,
        "prepaid quota neither burned nor minted across failover"
    );
}

#[test]
fn crash_with_inflight_work_conserves_everything() {
    // Crash a loaded node mid-stream: its queued + dispatched work must
    // resolve as refunded failover sheds, every tenant must land on a
    // survivor, and every audit chain (now with Failover entries) must
    // still verify under the tenant's key.
    let cfg = FabricConfig {
        node_weights: vec![1.0, 1.0, 1.0],
        fault: FaultPlan::with_events(vec![FaultEvent {
            node: 1,
            at_us: 400_000,
            kind: FaultKind::Crash,
        }]),
        ..Default::default()
    };
    let tenants = 12u32;
    let prepaid = 100_000u64;
    let p = plan(23, 6_000.0, prepaid, tenants, 200_000);
    let stream = p.generate();
    let mut f = fabric(&cfg, 30, 5);
    f.provision(&p);
    let doomed: Vec<u32> = (1..=tenants)
        .filter(|t| f.home_node(*t) == Some(1))
        .collect();
    assert!(!doomed.is_empty(), "node 1 must be hosting tenants");
    let report = f.run(&stream).expect("crash run");
    assert!(
        report.fleet.shed_by(tinymlops_serve::ShedReason::Failover) > 0,
        "a loaded node's death must kill real in-flight work"
    );
    assert_conservation(
        &f,
        &report,
        stream.len() as u64,
        prepaid * u64::from(tenants),
    );
    for t in &doomed {
        let home = f.home_node(*t).expect("evacuated tenant still homed");
        assert_ne!(home, 1, "tenant {t} must leave the dead node");
    }
    let checked = f.verify_chains(key_of).expect("chains verify");
    assert_eq!(checked, tenants as usize);
    // The survivor sealed the emergency handoff into each moved chain.
    for node in f.nodes() {
        for (tenant, account) in node.plane.gateway.accounts() {
            if doomed.contains(&tenant) {
                assert!(
                    account.quota.log().failover_count() >= 1,
                    "tenant {tenant} moved without a Failover chain entry"
                );
            }
        }
    }
}

#[test]
fn fault_runs_replay_bit_identically_on_the_live_backend() {
    // Crash + stall + slowdown in one plan, driven through both
    // backends on identically-built fabrics: reports and quota censuses
    // must match bit-for-bit.
    let fault = FaultPlan::with_events(vec![
        FaultEvent {
            node: 0,
            at_us: 300_000,
            kind: FaultKind::Crash,
        },
        FaultEvent {
            node: 1,
            at_us: 150_000,
            kind: FaultKind::Stall { until_us: 220_000 },
        },
        FaultEvent {
            node: 2,
            at_us: 0,
            kind: FaultKind::SlowNode { multiplier: 1.7 },
        },
    ]);
    let cfg = FabricConfig {
        node_weights: vec![1.0, 2.0, 1.0],
        fault,
        ..Default::default()
    };
    let p = plan(31, 5_000.0, 50_000, 10, 100_000);
    let stream = p.generate();
    let mut sim = fabric(&cfg, 30, 5);
    sim.provision(&p);
    let sim_report = sim.run(&stream).expect("sim fault run");
    let mut live = fabric(&cfg, 30, 5);
    live.provision(&p);
    let live_report = live
        .run_live(&stream, &ExecConfig::default())
        .expect("live fault run");
    assert_eq!(
        live_report.fabric, sim_report,
        "fault replay diverged between backends"
    );
    assert!(live_report.failures.is_empty(), "a crash is not a panic");
    assert_eq!(live.quota_census(), sim.quota_census());
}

#[test]
fn disabled_and_armed_empty_plans_change_nothing() {
    // PR 6 observer discipline, extended to the fault plane: a disabled
    // plan and an enabled-but-empty plan must both be byte-identical to
    // a fabric that predates the fault plane entirely.
    let p = plan(47, 3_000.0, 50_000, 8, 100_000);
    let stream = p.generate();
    let run_with = |fault: FaultPlan| {
        let cfg = FabricConfig {
            fault,
            ..Default::default()
        };
        let mut f = fabric(&cfg, 30, 5);
        f.provision(&p);
        f.run(&stream).expect("run")
    };
    let off = run_with(FaultPlan::default());
    let armed = run_with(FaultPlan::armed());
    assert_eq!(off, armed, "an empty armed plan must cost nothing");
}

#[test]
fn panicked_worker_is_contained_even_at_capacity_one_with_a_racing_drain() {
    // The dead-worker satellite: a DispatchPanic kills node 1's worker
    // for real while a migration *into* node 1 is scheduled right
    // behind it, all over capacity-1 queues. The worker's CloseOnExit
    // guard runs `close_and_clear`, dropping any buffered drain reply
    // sender — so the coordinating feeder must return (no deadlock),
    // report exactly one structured NodeFailure, and keep the surviving
    // accounts' books exact (no double billing).
    let cfg = FabricConfig {
        node_weights: vec![1.0, 1.0, 1.0],
        fault: FaultPlan::with_events(vec![FaultEvent {
            node: 1,
            at_us: 200_000,
            kind: FaultKind::DispatchPanic,
        }]),
        ..Default::default()
    };
    let p = plan(11, 4_000.0, 50_000, 9, 200_000);
    let stream = p.generate();
    let mut f = fabric(&cfg, 30, 5);
    f.provision(&p);
    let survivor_tenant = (1..=9)
        .find(|t| f.home_node(*t) != Some(1))
        .expect("some tenant lives off the doomed node");
    let specs = vec![MigrationSpec {
        tenant: survivor_tenant,
        to: 1,
        trigger_us: 250_000,
    }];
    let (report, records) = f
        .run_live_migrating(
            &stream,
            &ExecConfig {
                mode: ExecMode::Replay,
                queue_capacity: 1,
            },
            &specs,
        )
        .expect("run completes despite the dead worker");
    assert_eq!(report.failures.len(), 1, "exactly one worker died");
    assert_eq!(report.failures[0].node, 1);
    assert!(
        report.failures[0].reason.contains("dispatch panic"),
        "panic payload surfaces: {:?}",
        report.failures[0].reason
    );
    assert_eq!(records.len(), 1, "the migration record still comes back");
    // Survivors' books stay exact: each untouched account's net spend
    // equals its served count, and its chain still verifies.
    for node in f.nodes() {
        if node.id == 1 {
            continue;
        }
        for (tenant, account) in node.plane.gateway.accounts() {
            account.quota.log().verify(&key_of(tenant)).unwrap();
            let consumed = account.quota.log().query_count();
            let refunded = account.quota.log().refund_count();
            assert!(
                consumed >= refunded,
                "tenant {tenant} was refunded more than it consumed"
            );
            assert_eq!(
                consumed - refunded,
                account.admitted - account.refunded,
                "tenant {tenant}'s chain and counters disagree (double billing)"
            );
        }
    }
}

proptest! {
    /// Random crash plans (node, time, with/without a concurrent
    /// migration) under refund-heavy overload and random queue
    /// capacities: conservation, census exactness and sim ≡ live parity
    /// must all survive.
    #[test]
    fn random_crash_plans_conserve_and_replay_identically(
        seed in 0u64..500,
        crash_node in 0u32..3,
        crash_at in 50_000u64..950_000,
        rps in 2_000.0f64..8_000.0,
        deadline_us in proptest::sample::select(vec![1_500u64, 50_000, 200_000]),
        queue_capacity in proptest::sample::select(vec![1usize, 64, 1024]),
        migrate_too in any::<bool>(),
    ) {
        let fault = FaultPlan::with_events(vec![FaultEvent {
            node: crash_node,
            at_us: crash_at,
            kind: FaultKind::Crash,
        }]);
        let cfg = FabricConfig {
            node_weights: vec![1.0, 1.0, 1.0],
            fault,
            ..Default::default()
        };
        let tenants = 9u32;
        let prepaid = 50_000u64;
        let p = plan(seed, rps, prepaid, tenants, deadline_us);
        let stream = p.generate();
        let mut sim = fabric(&cfg, 30, 5);
        sim.provision(&p);
        // Optionally race a migration against the crash; destinations
        // are picked off the doomed node so the spec stays executable
        // (a dead destination freezes the record instead).
        let specs: Vec<MigrationSpec> = if migrate_too {
            vec![MigrationSpec {
                tenant: 1 + (seed % u64::from(tenants)) as u32,
                to: (crash_node + 1) % 3,
                trigger_us: crash_at.saturating_sub(20_000),
            }]
        } else {
            Vec::new()
        };
        let (sim_report, sim_records) = sim.run_migrating(&stream, &specs).expect("sim");
        assert_conservation(&sim, &sim_report, stream.len() as u64,
                            prepaid * u64::from(tenants));
        prop_assert_eq!(sim.verify_chains(key_of).expect("chains"), tenants as usize);
        // Every tenant must be homed on a survivor.
        for t in 1..=tenants {
            prop_assert_ne!(sim.home_node(t), Some(crash_node));
        }
        let mut live = fabric(&cfg, 30, 5);
        live.provision(&p);
        let (live_report, live_records) = live
            .run_live_migrating(
                &stream,
                &ExecConfig { mode: ExecMode::Replay, queue_capacity },
                &specs,
            )
            .expect("live");
        prop_assert!(live_report.failures.is_empty());
        prop_assert_eq!(live_report.fabric, sim_report);
        prop_assert_eq!(live_records, sim_records);
        prop_assert_eq!(live.quota_census(), sim.quota_census());
    }

    /// Stalls and slowdowns never lose work and stay bit-identical
    /// across backends, whatever their windows.
    #[test]
    fn random_stall_and_slowdown_plans_replay_identically(
        seed in 0u64..500,
        node in 0u32..3,
        at in 0u64..800_000,
        width in 0u64..300_000,
        multiplier in 1.0f64..4.0,
    ) {
        let fault = FaultPlan::with_events(vec![
            FaultEvent { node, at_us: at, kind: FaultKind::Stall { until_us: at + width } },
            FaultEvent {
                node: (node + 1) % 3,
                at_us: at / 2,
                kind: FaultKind::SlowNode { multiplier },
            },
        ]);
        let cfg = FabricConfig {
            node_weights: vec![1.0, 1.0, 1.0],
            fault,
            ..Default::default()
        };
        let prepaid = 50_000u64;
        let p = plan(seed, 4_000.0, prepaid, 6, 50_000);
        let stream = p.generate();
        let mut sim = fabric(&cfg, 30, 5);
        sim.provision(&p);
        let sim_report = sim.run(&stream).expect("sim");
        assert_conservation(&sim, &sim_report, stream.len() as u64, prepaid * 6);
        let mut live = fabric(&cfg, 30, 5);
        live.provision(&p);
        let live_report = live.run_live(&stream, &ExecConfig::default()).expect("live");
        prop_assert_eq!(live_report.fabric, sim_report);
    }
}
