//! Property tests for the autonomous fleet controller.
//!
//! The contracts under test:
//!
//! * **Determinism** — the same configuration and workload produce the
//!   same decisions, byte for byte: two fresh simulator runs agree on
//!   the full report *including the control log*, and the threaded
//!   backend in `ExecMode::Replay` is bit-identical to the simulator
//!   (reports, migration records, control records, quota censuses) —
//!   via [`tinymlops_serve::testkit::assert_sim_live_parity`].
//! * **Cooldowns** — the decision log never ping-pongs: a tenant the
//!   controller moved stays put for `tenant_cooldown_us`, and topology
//!   changes (join/drain) are at least `scale_cooldown_us` apart.
//! * **Offline safety** — after a crash, no control decision references
//!   the dead node: not as a migration source or destination, not as a
//!   relief-move target, not as a brownout nudgee.
//! * **Conservation** — controller-initiated migrations and topology
//!   changes lose nothing: every arrival resolves, every downstream
//!   shed refunds, the prepaid census stays exact and every audit
//!   chain (with its handoff entries) verifies.
//! * **Off is off** — an armed controller whose thresholds can never
//!   trip is byte-identical to a disabled one.
//! * **Traffic-weighted caps** — with a non-empty ledger, bounded-load
//!   caps measured in traffic units hold across join/leave/pin churn,
//!   and a node join actually relieves a node pushed over its cap by
//!   pinned tenants (the `enforce_caps` regression).

use proptest::prelude::*;
use std::collections::BTreeMap;
use tinymlops_serve::testkit::{assert_conservation, assert_sim_live_parity, test_fabric};
use tinymlops_serve::{
    ControlAction, ControlRecord, ControllerConfig, FabricConfig, FaultEvent, FaultKind, FaultPlan,
    GatewayConfig, LoadPlan, MigrationSpec, NodeId, Request, ServeConfig, ServeFabric, TenantSpec,
};

const PREPAID: u64 = 1_000_000_000;

/// A load plan where tenant 1 carries `hot_share` of the total rate and
/// the rest split the remainder — the skew that makes one node hot.
fn skewed_plan(seed: u64, rps: f64, tenants: u32, hot_share: f64, deadline_us: u64) -> LoadPlan {
    LoadPlan {
        tenants: (0..tenants)
            .map(|i| TenantSpec {
                id: i + 1,
                rate_rps: if i == 0 {
                    rps * hot_share
                } else {
                    rps * (1.0 - hot_share) / f64::from(tenants - 1)
                },
                model: if i % 2 == 0 { "kws" } else { "vision" }.into(),
                prepaid_queries: PREPAID,
                deadline_us,
            })
            .collect(),
        duration_us: 1_000_000,
        seed,
        feature_dim: 0,
    }
}

/// A baseline stream with a burst spliced in at `offset_us`, re-keyed
/// so request ids stay monotone in arrival order (the e20 flash-crowd
/// shape).
fn surge_stream(base: &LoadPlan, burst: &LoadPlan, offset_us: u64) -> Vec<Request> {
    let mut stream = base.generate();
    stream.extend(burst.generate().into_iter().map(|mut r| {
        r.arrival_us += offset_us;
        r
    }));
    stream.sort_by_key(|r| r.arrival_us);
    for (i, r) in stream.iter_mut().enumerate() {
        r.id = i as u64;
    }
    stream
}

/// A small-ceiling fabric config (pressure and sheds come easily) with
/// the controller armed over `standby` spare nodes.
fn controlled_cfg(nodes: usize, standby_weights: Vec<f64>) -> FabricConfig {
    FabricConfig {
        node_weights: vec![1.0; nodes],
        serve: ServeConfig {
            gateway: GatewayConfig {
                max_pending_per_tenant: 24,
                max_total_pending: 64,
            },
            ..Default::default()
        },
        controller: ControllerConfig {
            interval_us: 100_000,
            tenant_cooldown_us: 250_000,
            scale_cooldown_us: 300_000,
            standby_weights,
            ..ControllerConfig::enabled()
        },
        ..Default::default()
    }
}

/// Every node a control record touches, as (node, is_destination).
fn touched_nodes(action: &ControlAction) -> Vec<NodeId> {
    match action {
        ControlAction::Migrate { from, to, .. } => vec![*from, *to],
        ControlAction::Join { node, moves, .. } | ControlAction::Drain { node, moves } => {
            let mut out = vec![*node];
            out.extend(moves.iter().map(|(_, dest)| *dest));
            out
        }
        ControlAction::Brownout { node, .. } => vec![*node],
    }
}

/// Every tenant a control record moved.
fn moved_tenants(action: &ControlAction) -> Vec<u32> {
    match action {
        ControlAction::Migrate { tenant, .. } => vec![*tenant],
        ControlAction::Join { moves, .. } | ControlAction::Drain { moves, .. } => {
            moves.iter().map(|(t, _)| *t).collect()
        }
        ControlAction::Brownout { .. } => vec![],
    }
}

/// The anti-ping-pong laws over a decision log: per-tenant *policy*
/// moves (hot-tenant migrations, join relief) at least
/// `tenant_cooldown_us` apart, topology changes at least
/// `scale_cooldown_us` apart. Drain moves are forced evacuations — the
/// node is leaving, cooldown or not — so they reset a tenant's clock
/// but are never themselves violations.
fn assert_cooldowns(control: &[ControlRecord], cfg: &ControllerConfig) {
    let mut last_move: BTreeMap<u32, u64> = BTreeMap::new();
    let mut last_scale: Option<u64> = None;
    for record in control {
        let forced = matches!(record.action, ControlAction::Drain { .. });
        for tenant in moved_tenants(&record.action) {
            if let Some(prev) = last_move.insert(tenant, record.at_us) {
                assert!(
                    forced || record.at_us - prev >= cfg.tenant_cooldown_us,
                    "tenant {} moved twice within the cooldown ({} then {})",
                    tenant,
                    prev,
                    record.at_us
                );
            }
        }
        if matches!(
            record.action,
            ControlAction::Join { .. } | ControlAction::Drain { .. }
        ) {
            if let Some(prev) = last_scale.replace(record.at_us) {
                assert!(
                    record.at_us - prev >= cfg.scale_cooldown_us,
                    "topology changed twice within the scale cooldown ({prev} then {})",
                    record.at_us
                );
            }
        }
    }
}

/// Traffic-unit load per node, derived from the fabric's own ledger.
fn unit_loads(f: &ServeFabric, tenants: u32) -> BTreeMap<NodeId, u64> {
    let mut loads: BTreeMap<NodeId, u64> = BTreeMap::new();
    for t in 1..=tenants {
        if let Some(node) = f.home_node(t) {
            *loads.entry(node).or_default() += f.traffic().weight(t);
        }
    }
    loads
}

/// Assert every node's traffic-unit load is within its bounded cap,
/// modulo the one-placement overshoot the admission rule allows (a
/// tenant admitted while the node was under cap may carry it past by
/// less than its own weight).
fn assert_unit_caps(f: &ServeFabric, tenants: u32, load_factor: f64, label: &str) {
    let total: u64 = (1..=tenants).map(|t| f.traffic().weight(t)).sum();
    let heaviest: u64 = (1..=tenants)
        .map(|t| f.traffic().weight(t))
        .max()
        .unwrap_or(0);
    let caps: BTreeMap<NodeId, usize> = f
        .shard_router
        .bounded_caps(total as usize, load_factor)
        .into_iter()
        .collect();
    for (node, load) in unit_loads(f, tenants) {
        let cap = caps.get(&node).copied().unwrap_or(usize::MAX);
        assert!(
            (load as usize) < cap.saturating_add(heaviest as usize),
            "{label}: node {node} carries {load} units, cap {cap} + heaviest {heaviest}"
        );
    }
}

#[test]
fn surge_scales_up_then_down_deterministically_and_in_parity() {
    // A flash crowd against two active nodes with one standby: the
    // controller must join the spare under sustained pressure and drain
    // it again in the quiet tail — and every bit of it must agree
    // between two simulator runs and across backends.
    let cfg = controlled_cfg(2, vec![1.0]);
    let base = skewed_plan(11, 600.0, 8, 0.4, 40_000);
    let burst = LoadPlan {
        seed: 12,
        duration_us: 250_000,
        ..skewed_plan(12, 14_000.0, 8, 0.4, 40_000)
    };
    let stream = surge_stream(&base, &burst, 100_000);

    let outcome = assert_sim_live_parity(
        || {
            let mut f = test_fabric(&cfg, 24, 5);
            f.provision(&base);
            f
        },
        &stream,
        &[],
    );

    // Two fresh simulator runs agree byte for byte (control log included).
    let mut again = test_fabric(&cfg, 24, 5);
    again.provision(&base);
    let (report2, records2) = again.run_migrating(&stream, &[]).expect("rerun");
    assert_eq!(
        report2, outcome.report,
        "controller decisions are deterministic"
    );
    assert_eq!(records2, outcome.records);

    let joins = outcome
        .report
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Join { .. }))
        .count();
    let drains = outcome
        .report
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Drain { .. }))
        .count();
    assert!(joins >= 1, "the surge must trigger a scale-up");
    assert!(drains >= 1, "the quiet tail must trigger a scale-down");
    assert_cooldowns(&outcome.report.control, &cfg.controller);
    assert_conservation(
        &outcome.sim,
        &outcome.report,
        stream.len() as u64,
        u64::from(8u32) * PREPAID,
    );
    // Drained spare is back in standby, ready for the next surge.
    assert_eq!(outcome.sim.standby().len(), 1);
    assert_eq!(outcome.live.standby().len(), 1);
}

#[test]
fn hot_tenant_rebalance_fires_and_respects_cooldowns() {
    // No standby: the only lever is the hot-tenant migration. A heavily
    // skewed tenant sheds on its home node while the others idle; the
    // controller must move load off the hot node, and never ping-pong.
    let cfg = controlled_cfg(3, vec![]);
    let base = skewed_plan(29, 800.0, 9, 0.6, 40_000);
    let burst = LoadPlan {
        seed: 31,
        duration_us: 400_000,
        ..skewed_plan(31, 9_000.0, 9, 0.6, 40_000)
    };
    let stream = surge_stream(&base, &burst, 100_000);

    let outcome = assert_sim_live_parity(
        || {
            let mut f = test_fabric(&cfg, 24, 7);
            f.provision(&base);
            f
        },
        &stream,
        &[],
    );
    let migrates = outcome
        .report
        .control
        .iter()
        .filter(|r| matches!(r.action, ControlAction::Migrate { .. }))
        .count();
    assert!(
        migrates >= 1,
        "a skewed surge with no spare capacity must trigger a hot-tenant move; log: {:?}",
        outcome.report.control
    );
    assert_cooldowns(&outcome.report.control, &cfg.controller);
    // Controller-initiated moves show up as ordinary migration records,
    // and each completed its state machine.
    assert_eq!(outcome.records.len(), migrates);
    assert_conservation(
        &outcome.sim,
        &outcome.report,
        stream.len() as u64,
        u64::from(9u32) * PREPAID,
    );
}

#[test]
fn controller_never_targets_an_offline_node() {
    // Crash a node mid-surge with the controller armed: every decision
    // logged at or after the crash instant must avoid the dead node
    // entirely, and the run still replays bit-identically live.
    let crash_at = 300_000u64;
    let mut cfg = controlled_cfg(3, vec![1.0]);
    cfg.fault = FaultPlan::with_events(vec![FaultEvent {
        node: 1,
        at_us: crash_at,
        kind: FaultKind::Crash,
    }]);
    let base = skewed_plan(43, 900.0, 8, 0.5, 40_000);
    let burst = LoadPlan {
        seed: 44,
        duration_us: 300_000,
        ..skewed_plan(44, 10_000.0, 8, 0.5, 40_000)
    };
    let stream = surge_stream(&base, &burst, 150_000);

    let outcome = assert_sim_live_parity(
        || {
            let mut f = test_fabric(&cfg, 24, 3);
            f.provision(&base);
            f
        },
        &stream,
        &[],
    );
    for record in &outcome.report.control {
        if record.at_us >= crash_at {
            assert!(
                !touched_nodes(&record.action).contains(&1),
                "decision at {} touches the crashed node: {:?}",
                record.at_us,
                record.action
            );
        }
    }
    for record in &outcome.records {
        if record.trigger_us >= crash_at {
            assert_ne!(record.to, 1, "no migration may land on the dead node");
        }
    }
    assert_cooldowns(&outcome.report.control, &cfg.controller);
    assert_conservation(
        &outcome.sim,
        &outcome.report,
        stream.len() as u64,
        u64::from(8u32) * PREPAID,
    );
}

#[test]
fn armed_but_untrippable_controller_is_byte_identical_to_off() {
    // Same workload, same fabric; one run with the controller disabled,
    // one with it armed but thresholds no sample can reach. The two
    // reports — every counter, histogram, trace and the (empty) control
    // log — must be byte-identical on both backends.
    let base = skewed_plan(53, 2_500.0, 8, 0.4, 30_000);
    let stream = base.generate();
    let cfg_of = |controller: ControllerConfig| FabricConfig {
        node_weights: vec![1.0; 3],
        serve: ServeConfig {
            gateway: GatewayConfig {
                max_pending_per_tenant: 24,
                max_total_pending: 64,
            },
            ..Default::default()
        },
        controller,
        ..Default::default()
    };
    let idle = ControllerConfig {
        enabled: true,
        high_pressure: f64::INFINITY,
        high_shed_rate: f64::INFINITY,
        low_pressure: -1.0,
        ..ControllerConfig::default()
    };
    let run = |cfg: &FabricConfig, live: bool| {
        let mut f = test_fabric(cfg, 24, 9);
        f.provision(&base);
        if live {
            let (r, _) = f
                .run_live_migrating(&stream, &Default::default(), &[])
                .expect("live run");
            r.fabric
        } else {
            let (r, _) = f.run_migrating(&stream, &[]).expect("sim run");
            r
        }
    };
    let off_cfg = cfg_of(ControllerConfig::default());
    let idle_cfg = cfg_of(idle);
    let off = run(&off_cfg, false);
    let armed = run(&idle_cfg, false);
    assert!(
        armed.control.is_empty(),
        "an untrippable controller decides nothing"
    );
    assert_eq!(
        armed, off,
        "armed-but-idle must be byte-identical to off (sim)"
    );
    let off_live = run(&off_cfg, true);
    let armed_live = run(&idle_cfg, true);
    assert_eq!(
        armed_live, off_live,
        "armed-but-idle must be byte-identical to off (live)"
    );
}

#[test]
fn join_relieves_a_node_pushed_over_cap_by_pins() {
    // The enforce_caps regression: migrations pin tenants wherever the
    // operator (or controller) put them, and pins bypass the bounded
    // cap. Pile pinned tenants onto node 0 until it is over its cap,
    // then join a node — the rebalance must re-run cap enforcement and
    // actually relieve node 0, not just seed the pins back.
    let tenants = 8u32;
    let load_factor = 1.0;
    let cfg = FabricConfig {
        node_weights: vec![1.0, 1.0],
        load_factor,
        // Armed but untrippable: ticks fold the traffic ledger (so caps
        // are genuinely traffic-weighted) without the controller acting.
        controller: ControllerConfig {
            enabled: true,
            high_pressure: f64::INFINITY,
            high_shed_rate: f64::INFINITY,
            low_pressure: -1.0,
            ..ControllerConfig::default()
        },
        ..Default::default()
    };
    let plan = skewed_plan(61, 2_000.0, tenants, 0.3, 40_000);
    let mut f = test_fabric(&cfg, 16, 11);
    f.provision(&plan);
    let stream = plan.generate();
    // Pin six of the eight tenants onto node 0 mid-run.
    let specs: Vec<MigrationSpec> = (1..=6)
        .map(|t| MigrationSpec {
            tenant: t,
            to: 0,
            trigger_us: 200_000 + u64::from(t) * 50_000,
        })
        .collect();
    f.run_migrating(&stream, &specs).expect("pinning run");
    assert!(
        !f.traffic().is_empty(),
        "controller ticks folded the ledger"
    );

    let total: u64 = (1..=tenants).map(|t| f.traffic().weight(t)).sum();
    let cap0 = f
        .shard_router
        .bounded_caps(total as usize, load_factor)
        .into_iter()
        .find(|(n, _)| *n == 0)
        .map(|(_, c)| c)
        .expect("node 0 is live");
    let before = unit_loads(&f, tenants).get(&0).copied().unwrap_or(0);
    assert!(
        before as usize > cap0,
        "setup must leave node 0 over cap ({before} units vs cap {cap0})"
    );

    let extra = tinymlops_device::Fleet::generate(8, &tinymlops_device::default_mix(), 13);
    let (_, moved) = f.add_node(1.0, extra);
    assert!(
        moved > 0,
        "the join must move tenants off the over-cap node"
    );
    let after = unit_loads(&f, tenants).get(&0).copied().unwrap_or(0);
    assert!(
        after < before,
        "node 0 must shed load at the join ({before} -> {after})"
    );
    assert_unit_caps(&f, tenants, load_factor, "after join");
}

proptest! {
    /// Any surge shape, any spare capacity: controlled runs replay
    /// bit-identically across backends and hold every conservation and
    /// cooldown law.
    #[test]
    fn controlled_runs_hold_all_laws_under_random_surges(
        seed in 0u64..100,
        burst_rps in proptest::sample::select(vec![6_000.0f64, 11_000.0, 16_000.0]),
        offset_us in 50_000u64..400_000,
        hot_share in proptest::sample::select(vec![0.2f64, 0.5, 0.7]),
        standby in 0usize..2,
        tenants in 6u32..10,
    ) {
        let cfg = controlled_cfg(2, vec![1.0; standby]);
        let base = skewed_plan(seed, 1_200.0, tenants, hot_share, 40_000);
        let burst = LoadPlan {
            seed: seed + 1,
            duration_us: 200_000,
            ..skewed_plan(seed + 1, burst_rps, tenants, hot_share, 40_000)
        };
        let stream = surge_stream(&base, &burst, offset_us);
        let outcome = assert_sim_live_parity(
            || {
                let mut f = test_fabric(&cfg, 18, seed.wrapping_mul(31) % 17);
                f.provision(&base);
                f
            },
            &stream,
            &[],
        );
        assert_cooldowns(&outcome.report.control, &cfg.controller);
        for record in &outcome.report.control {
            for node in touched_nodes(&record.action) {
                prop_assert!(
                    (node as usize) < 2 + standby,
                    "decision touches a node that never existed: {:?}", record.action
                );
            }
        }
        assert_conservation(
            &outcome.sim,
            &outcome.report,
            stream.len() as u64,
            u64::from(tenants) * PREPAID,
        );
        // The standby pool is whole again: every joined node either
        // drained back or is still live in the router.
        let live_now = outcome.sim.shard_router.nodes().len();
        prop_assert_eq!(live_now + outcome.sim.standby().len(), 2 + standby);
    }

    /// Traffic-weighted caps hold across join/leave churn layered over
    /// pin churn, for any load factor — the bounded-load law restated
    /// in traffic units on a warm ledger.
    #[test]
    fn traffic_caps_hold_across_join_leave_pin_churn(
        seed in 0u64..100,
        load_factor in proptest::sample::select(vec![1.0f64, 1.25, 2.0, f64::INFINITY]),
        join_weight in proptest::sample::select(vec![0.5f64, 1.0, 2.0]),
        pins in proptest::collection::vec((1u32..12, 0u32..3), 0..4),
        tenants in 8u32..12,
    ) {
        let cfg = FabricConfig {
            node_weights: vec![1.0; 3],
            load_factor,
            controller: ControllerConfig {
                enabled: true,
                high_pressure: f64::INFINITY,
                high_shed_rate: f64::INFINITY,
                low_pressure: -1.0,
                ..ControllerConfig::default()
            },
            ..Default::default()
        };
        let plan = skewed_plan(seed, 2_500.0, tenants, 0.5, 40_000);
        let mut f = test_fabric(&cfg, 18, seed % 7);
        f.provision(&plan);
        let stream = plan.generate();
        // Pin churn: operator migrations mid-run (ids clamped to live
        // tenants, targets to live nodes).
        let specs: Vec<MigrationSpec> = pins
            .iter()
            .enumerate()
            .map(|(i, (t, to))| MigrationSpec {
                tenant: (t % tenants) + 1,
                to: *to,
                trigger_us: 150_000 + i as u64 * 120_000,
            })
            .collect();
        f.run_migrating(&stream, &specs).expect("churn run");
        prop_assert!(!f.traffic().is_empty());
        // No cap claim *here*: mid-run pins bypass caps and the ledger
        // drifts between rebalances. The law is that the next topology
        // change restores the bound.

        let extra = tinymlops_device::Fleet::generate(
            6,
            &tinymlops_device::default_mix(),
            seed + 21,
        );
        let (new_id, _) = f.add_node(join_weight, extra);
        assert_unit_caps(&f, tenants, load_factor, "after join");
        f.remove_node(new_id).expect("node exists");
        assert_unit_caps(&f, tenants, load_factor, "after leave");
    }
}
