//! The registry façade: records + artifacts + lineage queries.

use crate::record::{ModelFormat, ModelId, ModelRecord, SemVer};
use crate::store::ArtifactStore;
use crate::RegistryError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use tinymlops_nn::Sequential;

/// A thread-safe model registry.
///
/// Records are immutable once registered (new knowledge = new record),
/// matching MLOps lineage expectations: you can always answer "what exactly
/// ran on device X last Tuesday".
#[derive(Default)]
pub struct Registry {
    store: ArtifactStore,
    records: RwLock<BTreeMap<ModelId, ModelRecord>>,
    next_id: RwLock<u64>,
}

impl Registry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register an artifact with its metadata; returns the new id.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &self,
        name: &str,
        version: SemVer,
        format: ModelFormat,
        parent: Option<ModelId>,
        artifact_bytes: Vec<u8>,
        size_bytes: u64,
        macs: u64,
        metrics: BTreeMap<String, f64>,
        tags: Vec<String>,
        created_ms: u64,
    ) -> ModelId {
        let digest = self.store.put(artifact_bytes);
        let mut next = self.next_id.write();
        let id = ModelId(*next);
        *next += 1;
        let record = ModelRecord {
            id,
            name: name.to_string(),
            version,
            format,
            parent,
            artifact: digest,
            size_bytes,
            macs,
            metrics,
            tags,
            created_ms,
        };
        self.records.write().insert(id, record);
        id
    }

    /// Fetch a record by id.
    pub fn get(&self, id: ModelId) -> Result<ModelRecord, RegistryError> {
        self.records
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(format!("model {id:?}")))
    }

    /// Fetch an artifact's raw bytes (integrity-checked).
    pub fn artifact(&self, id: ModelId) -> Result<Vec<u8>, RegistryError> {
        let record = self.get(id)?;
        self.store.get(&record.artifact)
    }

    /// Deserialize an f32 [`Sequential`] artifact.
    pub fn load_model(&self, id: ModelId) -> Result<Sequential, RegistryError> {
        let bytes = self.artifact(id)?;
        Sequential::from_bytes(&bytes).map_err(|e| RegistryError::Serialization(e.to_string()))
    }

    /// Deserialize a quantized-variant artifact (stored by the
    /// optimization pipeline as a serialized [`tinymlops_quant::QuantizedModel`]).
    pub fn load_quantized(
        &self,
        id: ModelId,
    ) -> Result<tinymlops_quant::QuantizedModel, RegistryError> {
        let bytes = self.artifact(id)?;
        serde_json::from_slice(&bytes).map_err(|e| RegistryError::Serialization(e.to_string()))
    }

    /// All records (sorted by id).
    #[must_use]
    pub fn all(&self) -> Vec<ModelRecord> {
        self.records.read().values().cloned().collect()
    }

    /// Total registered model instances.
    #[must_use]
    pub fn count(&self) -> usize {
        self.records.read().len()
    }

    /// Direct children (variants derived from `id`).
    #[must_use]
    pub fn children(&self, id: ModelId) -> Vec<ModelRecord> {
        self.records
            .read()
            .values()
            .filter(|r| r.parent == Some(id))
            .cloned()
            .collect()
    }

    /// Lineage from the root base model down to `id` (inclusive).
    pub fn lineage(&self, id: ModelId) -> Result<Vec<ModelRecord>, RegistryError> {
        let mut chain = Vec::new();
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let record = self.get(cur)?;
            cursor = record.parent;
            chain.push(record);
            if chain.len() > 10_000 {
                return Err(RegistryError::Pipeline("lineage cycle detected".into()));
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// The newest base (parent-less) record for a model family.
    #[must_use]
    pub fn latest_base(&self, name: &str) -> Option<ModelRecord> {
        self.records
            .read()
            .values()
            .filter(|r| r.name == name && r.parent.is_none())
            .max_by_key(|r| r.version)
            .cloned()
    }

    /// Every record of a family at a specific version (base + variants).
    #[must_use]
    pub fn family_at(&self, name: &str, version: SemVer) -> Vec<ModelRecord> {
        self.records
            .read()
            .values()
            .filter(|r| r.name == name && r.version == version)
            .cloned()
            .collect()
    }

    /// Records matching a tag (e.g. `target:mcu-m4`).
    #[must_use]
    pub fn tagged(&self, tag: &str) -> Vec<ModelRecord> {
        self.records
            .read()
            .values()
            .filter(|r| r.has_tag(tag))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    fn register_simple(
        reg: &Registry,
        name: &str,
        version: SemVer,
        parent: Option<ModelId>,
    ) -> ModelId {
        reg.register(
            name,
            version,
            ModelFormat::F32,
            parent,
            format!("{name}-{version}-{parent:?}").into_bytes(),
            100,
            1000,
            BTreeMap::new(),
            vec![],
            0,
        )
    }

    #[test]
    fn register_and_fetch() {
        let reg = Registry::new();
        let id = register_simple(&reg, "kws", SemVer::new(1, 0, 0), None);
        let rec = reg.get(id).unwrap();
        assert_eq!(rec.name, "kws");
        assert!(reg.artifact(id).is_ok());
    }

    #[test]
    fn missing_id_errors() {
        let reg = Registry::new();
        assert!(reg.get(ModelId(99)).is_err());
    }

    #[test]
    fn lineage_walks_to_root() {
        let reg = Registry::new();
        let base = register_simple(&reg, "kws", SemVer::new(1, 0, 0), None);
        let child = register_simple(&reg, "kws", SemVer::new(1, 0, 0), Some(base));
        let grandchild = register_simple(&reg, "kws", SemVer::new(1, 0, 0), Some(child));
        let chain = reg.lineage(grandchild).unwrap();
        let ids: Vec<ModelId> = chain.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![base, child, grandchild]);
    }

    #[test]
    fn children_enumerates_variants() {
        let reg = Registry::new();
        let base = register_simple(&reg, "kws", SemVer::new(1, 0, 0), None);
        for _ in 0..3 {
            register_simple(&reg, "kws", SemVer::new(1, 0, 0), Some(base));
        }
        assert_eq!(reg.children(base).len(), 3);
    }

    #[test]
    fn latest_base_picks_highest_version() {
        let reg = Registry::new();
        register_simple(&reg, "kws", SemVer::new(1, 0, 0), None);
        let v2 = register_simple(&reg, "kws", SemVer::new(1, 1, 0), None);
        register_simple(&reg, "other", SemVer::new(9, 0, 0), None);
        assert_eq!(reg.latest_base("kws").unwrap().id, v2);
        assert!(reg.latest_base("absent").is_none());
    }

    #[test]
    fn model_round_trip_through_registry() {
        let reg = Registry::new();
        let mut rng = TensorRng::seed(0);
        let model = mlp(&[4, 8, 2], &mut rng);
        let bytes = model.to_bytes().unwrap();
        let id = reg.register(
            "m",
            SemVer::new(1, 0, 0),
            ModelFormat::F32,
            None,
            bytes,
            model.param_bytes() as u64,
            0,
            BTreeMap::new(),
            vec![],
            0,
        );
        let loaded = reg.load_model(id).unwrap();
        let x = rng.uniform(&[2, 4], -1.0, 1.0);
        assert_eq!(model.forward(&x), loaded.forward(&x));
    }

    #[test]
    fn tagged_query() {
        let reg = Registry::new();
        let id = reg.register(
            "m",
            SemVer::new(1, 0, 0),
            ModelFormat::F32,
            None,
            vec![1],
            1,
            1,
            BTreeMap::new(),
            vec!["watermark:alice".into()],
            0,
        );
        assert_eq!(reg.tagged("watermark:alice")[0].id, id);
        assert!(reg.tagged("watermark:bob").is_empty());
    }

    #[test]
    fn identical_artifacts_share_storage() {
        let reg = Registry::new();
        register_simple(&reg, "a", SemVer::new(1, 0, 0), None);
        register_simple(&reg, "a", SemVer::new(1, 0, 0), None);
        // Same artifact bytes → deduplicated in the store but two records.
        assert_eq!(reg.count(), 2);
    }
}
