//! Model records: identity, version, format, lineage and metrics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Registry-unique model identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub u64);

/// Semantic version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SemVer {
    /// Breaking-change counter.
    pub major: u32,
    /// Feature counter.
    pub minor: u32,
    /// Patch counter.
    pub patch: u32,
}

impl SemVer {
    /// Construct a version.
    #[must_use]
    pub fn new(major: u32, minor: u32, patch: u32) -> Self {
        SemVer {
            major,
            minor,
            patch,
        }
    }

    /// Next minor version (the default bump for a retrained base model).
    #[must_use]
    pub fn bump_minor(self) -> SemVer {
        SemVer {
            major: self.major,
            minor: self.minor + 1,
            patch: 0,
        }
    }
}

impl std::fmt::Display for SemVer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// The numeric/structural format of a stored model instance — §III-A's
/// "recording what optimizations are applied to every instance".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelFormat {
    /// Full-precision float reference model.
    F32,
    /// Statically quantized; `bits` ∈ {8,4,2,1}.
    Quantized {
        /// Bits per weight.
        bits: u32,
    },
    /// Magnitude-pruned to the given sparsity, stored dense-f32.
    Pruned {
        /// Fraction of zeroed weights.
        sparsity: f32,
    },
    /// Pruned then quantized.
    PrunedQuantized {
        /// Fraction of zeroed weights.
        sparsity: f32,
        /// Bits per weight.
        bits: u32,
    },
    /// Distilled into a smaller architecture.
    Distilled,
}

impl ModelFormat {
    /// Stable name used in reports and selection tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            ModelFormat::F32 => "f32".to_string(),
            ModelFormat::Quantized { bits } => format!("int{bits}"),
            ModelFormat::Pruned { sparsity } => format!("pruned{:.0}", sparsity * 100.0),
            ModelFormat::PrunedQuantized { sparsity, bits } => {
                format!("pruned{:.0}-int{bits}", sparsity * 100.0)
            }
            ModelFormat::Distilled => "distilled".to_string(),
        }
    }
}

/// One registered model instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Registry-unique id.
    pub id: ModelId,
    /// Logical model family name (e.g. `wake-word`).
    pub name: String,
    /// Version of the *base* model this instance derives from.
    pub version: SemVer,
    /// Optimization format of this instance.
    pub format: ModelFormat,
    /// Lineage parent (None for base models).
    pub parent: Option<ModelId>,
    /// SHA-256 of the stored artifact.
    pub artifact: [u8; 32],
    /// Deployment size in bytes.
    pub size_bytes: u64,
    /// MACs per inference (batch 1).
    pub macs: u64,
    /// Measured metrics (accuracy, etc.) — name → value.
    pub metrics: BTreeMap<String, f64>,
    /// Free-form tags (`watermark:alice`, `target:mcu-m4`, …).
    pub tags: Vec<String>,
    /// Registration time, simulated ms.
    pub created_ms: u64,
}

impl ModelRecord {
    /// Convenience accessor for the measured accuracy (0 when absent).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.metrics.get("accuracy").copied().unwrap_or(0.0)
    }

    /// Whether the record carries a given tag.
    #[must_use]
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semver_ordering() {
        assert!(SemVer::new(1, 0, 0) < SemVer::new(1, 0, 1));
        assert!(SemVer::new(1, 9, 0) < SemVer::new(2, 0, 0));
        assert_eq!(SemVer::new(1, 2, 3).to_string(), "1.2.3");
    }

    #[test]
    fn bump_minor_resets_patch() {
        let v = SemVer::new(1, 2, 7).bump_minor();
        assert_eq!(v, SemVer::new(1, 3, 0));
    }

    #[test]
    fn format_names() {
        assert_eq!(ModelFormat::F32.name(), "f32");
        assert_eq!(ModelFormat::Quantized { bits: 4 }.name(), "int4");
        assert_eq!(ModelFormat::Pruned { sparsity: 0.5 }.name(), "pruned50");
        assert_eq!(
            ModelFormat::PrunedQuantized {
                sparsity: 0.8,
                bits: 8
            }
            .name(),
            "pruned80-int8"
        );
    }

    #[test]
    fn record_accessors() {
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".to_string(), 0.93);
        let r = ModelRecord {
            id: ModelId(1),
            name: "kws".into(),
            version: SemVer::new(1, 0, 0),
            format: ModelFormat::F32,
            parent: None,
            artifact: [0; 32],
            size_bytes: 1000,
            macs: 5000,
            metrics,
            tags: vec!["target:mcu-m4".into()],
            created_ms: 0,
        };
        assert!((r.accuracy() - 0.93).abs() < 1e-12);
        assert!(r.has_tag("target:mcu-m4"));
        assert!(!r.has_tag("missing"));
    }
}
