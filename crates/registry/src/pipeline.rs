//! The automatically-triggered optimization pipeline.
//!
//! §III-A: *"If the base model is updated or retrained, we also have to
//! automatically trigger the execution of the optimization pipeline that
//! generates different quantized or pruned versions of the base model."*
//!
//! [`OptimizationPipeline::process_base`] is that trigger: hand it a new
//! base model and it registers the base plus the full variant matrix —
//! four quantization bit-widths, pruning levels (with mask-preserving
//! fine-tuning), and pruned-then-quantized combinations — each with
//! measured accuracy, size and MAC count, and lineage pointing at the base.

use crate::record::{ModelFormat, ModelId, SemVer};
use crate::registry::Registry;
use crate::RegistryError;
use std::collections::BTreeMap;
use tinymlops_nn::{profile, Dataset, Sequential};
use tinymlops_quant::{
    binary_aware_finetune, export_quantized, finetune_pruned, magnitude_prune, sparsity_of,
    BinaryAwareConfig, QuantScheme, QuantizedModel,
};

/// A requested variant.
#[derive(Debug, Clone, PartialEq)]
pub enum VariantSpec {
    /// Quantize to a scheme.
    Quantize(QuantScheme),
    /// Prune to a sparsity and fine-tune.
    Prune {
        /// Target sparsity.
        sparsity: f32,
    },
    /// Prune then quantize.
    PruneQuantize {
        /// Target sparsity.
        sparsity: f32,
        /// Quantization scheme applied after pruning.
        scheme: QuantScheme,
    },
}

/// Pipeline configuration: which variants to generate per base model.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Variants to produce.
    pub variants: Vec<VariantSpec>,
    /// Fine-tuning epochs after pruning.
    pub finetune_epochs: usize,
    /// Fine-tuning learning rate.
    pub finetune_lr: f32,
    /// Seed for fine-tuning shuffles.
    pub seed: u64,
    /// Binarization-aware fine-tuning for the int1 variant. Post-hoc 1-bit
    /// conversion collapses to chance (the Courbariaux result E1 measures
    /// honestly), so the pipeline trains the int1 variant with the
    /// straight-through estimator before export; set `epochs: 0` to fall
    /// back to honest post-hoc conversion.
    pub binary: BinaryAwareConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            variants: vec![
                VariantSpec::Quantize(QuantScheme::Int8),
                VariantSpec::Quantize(QuantScheme::Int4),
                VariantSpec::Quantize(QuantScheme::Int2),
                VariantSpec::Quantize(QuantScheme::Binary),
                VariantSpec::Prune { sparsity: 0.5 },
                VariantSpec::Prune { sparsity: 0.8 },
                VariantSpec::PruneQuantize {
                    sparsity: 0.5,
                    scheme: QuantScheme::Int8,
                },
            ],
            finetune_epochs: 2,
            finetune_lr: 0.002,
            seed: 0,
            binary: BinaryAwareConfig {
                epochs: 15,
                // Model input binarization during STE training so the int1
                // variant ships true XNOR kernels on interior layers (a
                // no-op for 2-dense MLPs, where no interior layer exists).
                binarize_activations: true,
                ..Default::default()
            },
        }
    }
}

/// The pipeline runner.
pub struct OptimizationPipeline {
    config: PipelineConfig,
}

impl OptimizationPipeline {
    /// Pipeline with the given config.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        OptimizationPipeline { config }
    }

    /// Pipeline with the default variant matrix.
    #[must_use]
    pub fn standard() -> Self {
        OptimizationPipeline {
            config: PipelineConfig::default(),
        }
    }

    /// Register `base` as a new base version of `name` and auto-generate
    /// all configured variants. Returns `(base_id, variant_ids)`.
    #[allow(clippy::too_many_arguments)]
    pub fn process_base(
        &self,
        registry: &Registry,
        name: &str,
        base: &Sequential,
        version: SemVer,
        train: &Dataset,
        test: &Dataset,
        created_ms: u64,
    ) -> Result<(ModelId, Vec<ModelId>), RegistryError> {
        let input_shape = [train.feature_dim()];
        let base_macs = profile::total_macs(base, &input_shape);
        let base_acc = f64::from(tinymlops_nn::evaluate(base, test));
        let base_bytes = base
            .to_bytes()
            .map_err(|e| RegistryError::Serialization(e.to_string()))?;
        let base_size = base_bytes.len() as u64;
        let base_id = registry.register(
            name,
            version,
            ModelFormat::F32,
            None,
            base_bytes,
            base.param_bytes() as u64,
            base_macs,
            metrics(base_acc),
            vec![],
            created_ms,
        );
        let _ = base_size;

        let mut variant_ids = Vec::with_capacity(self.config.variants.len());
        for spec in &self.config.variants {
            let id = self.build_variant(
                registry, name, base, base_id, version, spec, train, test, base_macs, created_ms,
            )?;
            variant_ids.push(id);
        }
        Ok((base_id, variant_ids))
    }

    #[allow(clippy::too_many_arguments)]
    fn build_variant(
        &self,
        registry: &Registry,
        name: &str,
        base: &Sequential,
        base_id: ModelId,
        version: SemVer,
        spec: &VariantSpec,
        train: &Dataset,
        test: &Dataset,
        base_macs: u64,
        created_ms: u64,
    ) -> Result<ModelId, RegistryError> {
        match spec {
            VariantSpec::Quantize(scheme) => {
                let q = if *scheme == QuantScheme::Binary && self.config.binary.epochs > 0 {
                    // Binary-aware retraining (STE on latent f32 weights)
                    // instead of post-hoc conversion: the exported XNOR
                    // kernels keep deployable accuracy at 1 bit.
                    let mut tuned = base.clone();
                    let cfg = BinaryAwareConfig {
                        seed: self.config.seed,
                        ..self.config.binary.clone()
                    };
                    binary_aware_finetune(&mut tuned, train, &cfg);
                    export_quantized(&tuned, &cfg)
                } else {
                    QuantizedModel::quantize(base, &train.x, *scheme)
                        .map_err(|e| RegistryError::Pipeline(e.to_string()))?
                };
                let acc = f64::from(q.accuracy(&test.x, &test.y));
                let bytes = serde_json::to_vec(&q)
                    .map_err(|e| RegistryError::Serialization(e.to_string()))?;
                let size = q.size_bytes() as u64;
                Ok(registry.register(
                    name,
                    version,
                    ModelFormat::Quantized {
                        bits: scheme.bits(),
                    },
                    Some(base_id),
                    bytes,
                    size,
                    base_macs, // same MAC count; cheaper per-MAC
                    metrics(acc),
                    vec![format!("scheme:{}", scheme.name())],
                    created_ms,
                ))
            }
            VariantSpec::Prune { sparsity } => {
                let pruned = self.pruned_model(base, *sparsity, train);
                let acc = f64::from(tinymlops_nn::evaluate(&pruned, test));
                let bytes = pruned
                    .to_bytes()
                    .map_err(|e| RegistryError::Serialization(e.to_string()))?;
                let effective_macs =
                    (base_macs as f64 * f64::from(1.0 - sparsity_of(&pruned))) as u64;
                Ok(registry.register(
                    name,
                    version,
                    ModelFormat::Pruned {
                        sparsity: *sparsity,
                    },
                    Some(base_id),
                    bytes,
                    (pruned.param_bytes() as f64 * f64::from(1.0 - sparsity) * 2.0) as u64,
                    effective_macs,
                    metrics(acc),
                    vec![],
                    created_ms,
                ))
            }
            VariantSpec::PruneQuantize { sparsity, scheme } => {
                let pruned = self.pruned_model(base, *sparsity, train);
                let q = QuantizedModel::quantize(&pruned, &train.x, *scheme)
                    .map_err(|e| RegistryError::Pipeline(e.to_string()))?;
                let acc = f64::from(q.accuracy(&test.x, &test.y));
                let bytes = serde_json::to_vec(&q)
                    .map_err(|e| RegistryError::Serialization(e.to_string()))?;
                let size = q.size_bytes() as u64;
                let effective_macs = (base_macs as f64 * f64::from(1.0 - sparsity)) as u64;
                Ok(registry.register(
                    name,
                    version,
                    ModelFormat::PrunedQuantized {
                        sparsity: *sparsity,
                        bits: scheme.bits(),
                    },
                    Some(base_id),
                    bytes,
                    size,
                    effective_macs,
                    metrics(acc),
                    vec![format!("scheme:{}", scheme.name())],
                    created_ms,
                ))
            }
        }
    }

    fn pruned_model(&self, base: &Sequential, sparsity: f32, train: &Dataset) -> Sequential {
        let mut pruned = base.clone();
        magnitude_prune(&mut pruned, sparsity);
        if self.config.finetune_epochs > 0 {
            finetune_pruned(
                &mut pruned,
                train,
                self.config.finetune_epochs,
                self.config.finetune_lr,
                self.config.seed,
            );
        }
        pruned
    }
}

fn metrics(accuracy: f64) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    m.insert("accuracy".to_string(), accuracy);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn trained_base() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(900, 0.08, 11);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(2);
        let mut model = mlp(&[64, 24, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 12,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    #[test]
    fn process_base_generates_full_variant_matrix() {
        let (model, train, test) = trained_base();
        let reg = Registry::new();
        let pipeline = OptimizationPipeline::standard();
        let (base_id, variants) = pipeline
            .process_base(
                &reg,
                "digits",
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
                0,
            )
            .unwrap();
        assert_eq!(variants.len(), 7);
        assert_eq!(reg.count(), 8);
        // All variants descend from the base, and every one — including
        // int1, now trained binarization-aware by the pipeline instead of
        // converted post-hoc — keeps deployable accuracy. (Post-hoc 1-bit
        // conversion collapses to ~0.1 on this MLP; E1 still measures that
        // collapse via direct `QuantizedModel::quantize`.)
        for v in &variants {
            let rec = reg.get(*v).unwrap();
            assert_eq!(rec.parent, Some(base_id));
            assert!(
                rec.metrics.contains_key("accuracy"),
                "accuracy must be measured and recorded"
            );
            if rec.format.name() == "int1" {
                assert!(
                    rec.accuracy() > 0.5,
                    "binary-aware int1 acc {} should sit far above the \
                     ~0.1 post-hoc collapse",
                    rec.accuracy()
                );
            } else {
                assert!(
                    rec.accuracy() > 0.1,
                    "variant {} acc {}",
                    rec.format.name(),
                    rec.accuracy()
                );
            }
        }
    }

    #[test]
    fn quantized_variants_shrink_with_bits() {
        let (model, train, test) = trained_base();
        let reg = Registry::new();
        let (_, _) = OptimizationPipeline::standard()
            .process_base(
                &reg,
                "digits",
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
                0,
            )
            .unwrap();
        let size_of = |fmt: &str| {
            reg.all()
                .into_iter()
                .find(|r| r.format.name() == fmt)
                .unwrap()
                .size_bytes
        };
        assert!(size_of("int8") > size_of("int4"));
        assert!(size_of("int4") > size_of("int2"));
        // The int1 variant carries an f32 classifier head (standard BNN
        // practice, what binary-aware export ships), so it is not the
        // smallest artifact — but body-at-1-bit plus the small head must
        // still undercut the full int8 model.
        assert!(
            size_of("int1") < size_of("int8"),
            "int1 {} !< int8 {}",
            size_of("int1"),
            size_of("int8")
        );
    }

    /// A deeper base so the int1 variant has an interior (activation-
    /// binarized) layer — the 2-dense `trained_base` has none.
    fn trained_deep_base() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(900, 0.08, 11);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(2);
        let mut model = mlp(&[64, 32, 24, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 12,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    #[test]
    fn activation_aware_int1_beats_weight_only_baseline() {
        let (model, train, test) = trained_deep_base();
        // Weight-only binary-aware baseline (the pre-activation-aware
        // pipeline behaviour), measured on the same true-XNOR deployment
        // the activation-aware pipeline ships.
        let wo_cfg = BinaryAwareConfig {
            epochs: 15,
            binarize_activations: false,
            ..Default::default()
        };
        let act_cfg = BinaryAwareConfig {
            binarize_activations: true,
            ..wo_cfg.clone()
        };
        let mut wo = model.clone();
        binary_aware_finetune(&mut wo, &train, &wo_cfg);
        let wo_on_xnor = export_quantized(&wo, &act_cfg).accuracy(&test.x, &test.y);

        // The standard pipeline now trains activation-binarization-aware.
        let reg = Registry::new();
        let (_, _) = OptimizationPipeline::standard()
            .process_base(
                &reg,
                "digits-deep",
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
                0,
            )
            .unwrap();
        let int1 = reg
            .all()
            .into_iter()
            .find(|r| r.format.name() == "int1")
            .unwrap();
        assert!(
            int1.accuracy() > f64::from(wo_on_xnor),
            "activation-aware int1 {} must beat the weight-only baseline {} \
             on the XNOR kernel",
            int1.accuracy(),
            wo_on_xnor
        );
        assert!(int1.accuracy() > 0.5, "int1 stays deployable");

        // The stored artifact round-trips the fused-scale metadata: the
        // registered int1 reloads with its XNOR kernels intact, and the
        // registered int8 rebuilds an identical fused requant plan from
        // its serialized scales (predictions via the fused path match the
        // recorded accuracy measurement).
        let q1 = reg.load_quantized(int1.id).unwrap();
        assert!(q1.layers.iter().any(
            |l| matches!(l, tinymlops_quant::qmodel::QLayer::BinaryDense(b) if b.binarize_input)
        ));
        assert_eq!(f64::from(q1.accuracy(&test.x, &test.y)), int1.accuracy());
        let int8 = reg
            .all()
            .into_iter()
            .find(|r| r.format.name() == "int8")
            .unwrap();
        let q8 = reg.load_quantized(int8.id).unwrap();
        assert_eq!(f64::from(q8.accuracy(&test.x, &test.y)), int8.accuracy());
    }

    #[test]
    fn retrain_triggers_new_generation() {
        let (model, train, test) = trained_base();
        let reg = Registry::new();
        let pipeline = OptimizationPipeline::standard();
        let v1 = SemVer::new(1, 0, 0);
        pipeline
            .process_base(&reg, "digits", &model, v1, &train, &test, 0)
            .unwrap();
        let count_v1 = reg.count();
        // "Retrain" (same weights suffice for the bookkeeping test).
        let v2 = v1.bump_minor();
        pipeline
            .process_base(&reg, "digits", &model, v2, &train, &test, 100)
            .unwrap();
        assert_eq!(reg.count(), count_v1 * 2, "second generation registered");
        assert_eq!(reg.latest_base("digits").unwrap().version, v2);
        assert_eq!(reg.family_at("digits", v2).len(), count_v1);
    }

    #[test]
    fn lineage_of_variant_is_base_then_variant() {
        let (model, train, test) = trained_base();
        let reg = Registry::new();
        let (base_id, variants) = OptimizationPipeline::standard()
            .process_base(
                &reg,
                "digits",
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
                0,
            )
            .unwrap();
        let chain = reg.lineage(variants[0]).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].id, base_id);
    }

    #[test]
    fn int8_variant_accuracy_close_to_base() {
        let (model, train, test) = trained_base();
        let reg = Registry::new();
        let (base_id, _) = OptimizationPipeline::standard()
            .process_base(
                &reg,
                "digits",
                &model,
                SemVer::new(1, 0, 0),
                &train,
                &test,
                0,
            )
            .unwrap();
        let base_acc = reg.get(base_id).unwrap().accuracy();
        let int8 = reg
            .all()
            .into_iter()
            .find(|r| r.format.name() == "int8")
            .unwrap();
        assert!(
            int8.accuracy() > base_acc - 0.05,
            "int8 {} vs base {base_acc}",
            int8.accuracy()
        );
    }
}
