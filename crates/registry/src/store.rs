//! Content-addressed artifact storage.

use crate::RegistryError;
use parking_lot::RwLock;
use std::collections::HashMap;
use tinymlops_crypto::{sha256, to_hex, Digest};

/// A thread-safe, content-addressed blob store. Keys are SHA-256 digests
/// of the content, so identical artifacts are stored once and any
/// corruption is detectable on read.
#[derive(Default)]
pub struct ArtifactStore {
    blobs: RwLock<HashMap<Digest, Vec<u8>>>,
}

impl ArtifactStore {
    /// New empty store.
    #[must_use]
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Store `bytes`, returning their digest. Idempotent.
    pub fn put(&self, bytes: Vec<u8>) -> Digest {
        let digest = sha256(&bytes);
        self.blobs.write().entry(digest).or_insert(bytes);
        digest
    }

    /// Fetch and integrity-check an artifact.
    pub fn get(&self, digest: &Digest) -> Result<Vec<u8>, RegistryError> {
        let blobs = self.blobs.read();
        let bytes = blobs
            .get(digest)
            .ok_or_else(|| RegistryError::NotFound(format!("artifact {}", to_hex(digest))))?;
        if sha256(bytes) != *digest {
            return Err(RegistryError::CorruptArtifact(to_hex(digest)));
        }
        Ok(bytes.clone())
    }

    /// Whether a digest is present.
    #[must_use]
    pub fn contains(&self, digest: &Digest) -> bool {
        self.blobs.read().contains_key(digest)
    }

    /// Number of distinct artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blobs.read().len()
    }

    /// True when the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blobs.read().is_empty()
    }

    /// Total stored bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.blobs.read().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let s = ArtifactStore::new();
        let d = s.put(b"model weights".to_vec());
        assert_eq!(s.get(&d).unwrap(), b"model weights");
    }

    #[test]
    fn identical_content_deduplicates() {
        let s = ArtifactStore::new();
        let d1 = s.put(vec![1, 2, 3]);
        let d2 = s.put(vec![1, 2, 3]);
        assert_eq!(d1, d2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 3);
    }

    #[test]
    fn missing_digest_is_not_found() {
        let s = ArtifactStore::new();
        assert!(matches!(s.get(&[0u8; 32]), Err(RegistryError::NotFound(_))));
        assert!(!s.contains(&[0u8; 32]));
    }

    #[test]
    fn concurrent_puts_are_safe() {
        use std::sync::Arc;
        let s = Arc::new(ArtifactStore::new());
        let handles: Vec<_> = (0..8u8)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.put(vec![i; 100]))
            })
            .collect();
        let digests: Vec<Digest> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(s.len(), 8);
        for d in digests {
            assert!(s.contains(&d));
        }
    }
}
