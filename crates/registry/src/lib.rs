//! Model registry: versioned, content-addressed model storage with lineage
//! tracking and an automatically-triggered optimization pipeline.
//!
//! §III-A: *"Existing solutions for storing models in a centralized
//! repository will therefore have to be extended to track the relationship
//! between different versions of the models, recording what optimizations
//! are applied to every instance. If the base model is updated or
//! retrained, we also have to automatically trigger the execution of the
//! optimization pipeline that generates different quantized or pruned
//! versions of the base model."*
//!
//! * [`store`] — content-addressed blob store (SHA-256 keys): identical
//!   artifacts deduplicate, corruption is detectable.
//! * [`record`] — [`ModelRecord`]s: semantic version, format, lineage
//!   parent, measured metrics.
//! * [`registry`] — the [`Registry`]: register/fetch/query + lineage walks.
//! * [`pipeline`] — the [`OptimizationPipeline`]: on every new base
//!   version, regenerates the full variant matrix (quantized at four bit
//!   widths, pruned, pruned+quantized) with measured accuracy.

pub mod pipeline;
pub mod record;
pub mod registry;
pub mod store;

pub use pipeline::{OptimizationPipeline, PipelineConfig, VariantSpec};
pub use record::{ModelFormat, ModelId, ModelRecord, SemVer};
pub use registry::Registry;
pub use store::ArtifactStore;

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Lookup failed.
    NotFound(String),
    /// An artifact's bytes do not match its recorded digest.
    CorruptArtifact(String),
    /// Serialization failure while storing a model.
    Serialization(String),
    /// The optimization pipeline could not produce a requested variant.
    Pipeline(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(what) => write!(f, "not found: {what}"),
            RegistryError::CorruptArtifact(what) => write!(f, "corrupt artifact: {what}"),
            RegistryError::Serialization(what) => write!(f, "serialization: {what}"),
            RegistryError::Pipeline(what) => write!(f, "pipeline: {what}"),
        }
    }
}

impl std::error::Error for RegistryError {}
