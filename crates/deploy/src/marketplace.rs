//! The compute marketplace: bid-based workload offloading.
//!
//! §IV: *"We could then envision a marketplace where every device in the
//! network can potentially execute a certain machine learning workload.
//! Depending on the requirements, a certain target is chosen and the
//! container is transmitted to that device for execution. Owners of the
//! device will be incentivized to run workloads as they receive a monetary
//! compensation. A smartphone app for example could decide to offload its
//! computations to the powerful GPU of a self-driving car while the user
//! is inside."*
//!
//! Implementation: nodes run as threads behind crossbeam channels; a
//! request fan-outs to all nodes, each reachable node answers with a bid
//! (predicted latency + asking price derived from its energy cost), and
//! the requester picks the cheapest feasible bid.

use crate::DeployError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use tinymlops_device::{inference_cost, Device, NumericScheme};

/// A workload to place on the marketplace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// MACs per inference.
    pub macs: u64,
    /// Input payload to ship to the executor.
    pub input_bytes: u64,
    /// Numeric scheme the capsule needs.
    pub scheme: NumericScheme,
    /// Deadline; bids slower than this are discarded.
    pub deadline_ms: f64,
}

/// A node's answer to a workload request.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    /// Bidding node id.
    pub node: u32,
    /// Predicted total latency (transfer + compute).
    pub latency_ms: f64,
    /// Asking price in micro-dollars (energy cost × margin).
    pub price_microdollars: u64,
    /// Predicted energy on the executor.
    pub energy_mj: f64,
}

enum NodeMsg {
    Request {
        workload: Workload,
        reply: Sender<Option<Bid>>,
    },
    Shutdown,
}

/// A running marketplace of executor nodes.
pub struct Marketplace {
    nodes: Vec<Sender<NodeMsg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Price model: energy cost at a nominal $0.10/kWh plus a 50% margin, with
/// a 1 µ$ floor so bids are never free.
fn asking_price(energy_mj: f64) -> u64 {
    // 1 kWh = 3.6e9 mJ → $ per mJ ≈ 2.78e-11; in µ$ ≈ 2.78e-5.
    let cost = energy_mj * 2.78e-5 * 1.5;
    cost.ceil().max(1.0) as u64
}

fn node_loop(device: Device, rx: Receiver<NodeMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            NodeMsg::Shutdown => break,
            NodeMsg::Request { workload, reply } => {
                let bid = compute_bid(&device, &workload);
                let _ = reply.send(bid);
            }
        }
    }
}

fn compute_bid(device: &Device, w: &Workload) -> Option<Bid> {
    if !device.online() {
        return None;
    }
    let inf = inference_cost(&device.profile, w.macs, w.scheme)?;
    let net = device.state.network.model();
    let transfer_ms = net.transfer_ms(w.input_bytes);
    if !transfer_ms.is_finite() {
        return None;
    }
    let latency = transfer_ms + inf.latency_ms;
    if latency > w.deadline_ms {
        return None;
    }
    let energy = inf.energy_mj + net.transfer_energy_mj(w.input_bytes);
    Some(Bid {
        node: device.id,
        latency_ms: latency,
        price_microdollars: asking_price(energy),
        energy_mj: energy,
    })
}

impl Marketplace {
    /// Spawn one executor thread per device.
    #[must_use]
    pub fn spawn(devices: Vec<Device>) -> Self {
        let mut nodes = Vec::with_capacity(devices.len());
        let mut handles = Vec::with_capacity(devices.len());
        for device in devices {
            let (tx, rx) = unbounded();
            nodes.push(tx);
            handles.push(std::thread::spawn(move || node_loop(device, rx)));
        }
        Marketplace { nodes, handles }
    }

    /// Collect bids from every node for a workload.
    #[must_use]
    pub fn collect_bids(&self, workload: &Workload) -> Vec<Bid> {
        let (reply_tx, reply_rx) = unbounded();
        let mut sent = 0usize;
        for node in &self.nodes {
            if node
                .send(NodeMsg::Request {
                    workload: workload.clone(),
                    reply: reply_tx.clone(),
                })
                .is_ok()
            {
                sent += 1;
            }
        }
        drop(reply_tx);
        let mut bids: Vec<Bid> = (0..sent)
            .filter_map(|_| reply_rx.recv().ok().flatten())
            .collect();
        bids.sort_by(|a, b| {
            a.price_microdollars.cmp(&b.price_microdollars).then(
                a.latency_ms
                    .partial_cmp(&b.latency_ms)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        bids
    }

    /// Place a workload: cheapest feasible bid wins.
    pub fn place(&self, workload: &Workload) -> Result<Bid, DeployError> {
        self.collect_bids(workload)
            .into_iter()
            .next()
            .ok_or(DeployError::NoBid)
    }

    /// Shut down all executor threads.
    pub fn shutdown(mut self) {
        for node in &self.nodes {
            let _ = node.send(NodeMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Latency/energy of running locally (no marketplace) — the baseline the
/// E9 experiment compares against. `None` when the device can't run it.
#[must_use]
pub fn local_execution(device: &Device, w: &Workload) -> Option<Bid> {
    let inf = inference_cost(&device.profile, w.macs, w.scheme)?;
    if inf.latency_ms > w.deadline_ms {
        return None;
    }
    Some(Bid {
        node: device.id,
        latency_ms: inf.latency_ms,
        price_microdollars: 0, // own hardware
        energy_mj: inf.energy_mj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_device::{default_mix, Fleet};

    fn fleet(n: usize) -> Vec<Device> {
        Fleet::generate(n, &default_mix(), 77).devices
    }

    fn workload() -> Workload {
        Workload {
            macs: 50_000_000,
            input_bytes: 4096,
            scheme: NumericScheme::Int8,
            deadline_ms: 2_000.0,
        }
    }

    #[test]
    fn marketplace_places_on_capable_node() {
        let market = Marketplace::spawn(fleet(40));
        let bid = market.place(&workload()).unwrap();
        assert!(bid.latency_ms <= 2_000.0);
        assert!(bid.price_microdollars >= 1);
        market.shutdown();
    }

    #[test]
    fn bids_are_price_sorted() {
        let market = Marketplace::spawn(fleet(40));
        let bids = market.collect_bids(&workload());
        assert!(bids.len() > 1, "expect multiple bidders");
        for pair in bids.windows(2) {
            assert!(pair[0].price_microdollars <= pair[1].price_microdollars);
        }
        market.shutdown();
    }

    #[test]
    fn impossible_deadline_yields_no_bid() {
        let market = Marketplace::spawn(fleet(20));
        let mut w = workload();
        w.deadline_ms = 1e-6;
        assert_eq!(market.place(&w), Err(DeployError::NoBid));
        market.shutdown();
    }

    #[test]
    fn offload_beats_weak_local_device() {
        // An M0 can't run a 50M-MAC int8 workload quickly; the market can.
        let devices = fleet(60);
        let weak = devices
            .iter()
            .find(|d| d.profile.class == tinymlops_device::DeviceClass::McuM0)
            .expect("fleet has M0s")
            .clone();
        let market = Marketplace::spawn(devices);
        let w = workload();
        let market_bid = market.place(&w).unwrap();
        let local = local_execution(&weak, &w);
        match local {
            None => {} // deadline-infeasible locally: offload is the only option
            Some(l) => assert!(market_bid.latency_ms < l.latency_ms),
        }
        market.shutdown();
    }

    #[test]
    fn empty_market_has_no_bids() {
        let market = Marketplace::spawn(vec![]);
        assert_eq!(market.node_count(), 0);
        assert_eq!(market.place(&workload()), Err(DeployError::NoBid));
        market.shutdown();
    }
}
