//! Deployment: getting the right model variant onto the right device, in a
//! portable, signed container — papers §III-A and §IV.
//!
//! * [`select`] — constraint-aware model selection. §III-A: *"a different
//!   model could be preferred, depending on the battery level … the user
//!   might prefer a slower, more accurate model or a faster, less accurate
//!   model or even a model that is fast to download on a slow network"*.
//! * [`capsule`] — the portable module format. §III-A/§IV: *"A promising
//!   approach is using WebAssembly to package these different operations in
//!   portable and re-usable modules"* — ours is a deterministic stack-VM
//!   bytecode plus the model artifact, hash-addressed and signed with the
//!   workspace's hash-based signatures.
//! * [`vm`] — the pre/post-processing pipeline VM with the §III-A "control
//!   logic to activate a different part of the pipeline depending on the
//!   result of a first model" (confidence-gated cascades).
//! * [`marketplace`] — §IV: *"a marketplace where every device in the
//!   network can potentially execute a certain machine learning workload
//!   … Owners of the device will be incentivized to run workloads as they
//!   receive a monetary compensation."* Bid-based offload scheduling over
//!   crossbeam channels.
//! * [`split`] — §IV: *"It is even possible to split a model between edge
//!   and cloud"* — an optimal-split-layer solver (Neurosurgeon-style).

pub mod capsule;
pub mod marketplace;
pub mod select;
pub mod split;
pub mod vm;

pub use capsule::{Capsule, CapsuleMeta};
pub use marketplace::{local_execution, Bid, Marketplace, Workload};
pub use select::{select_variant, Requirements, Selection};
pub use split::{all_splits, best_split, SplitPlan};
pub use vm::{Op, Pipeline, VmError};

/// Errors from deployment operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// No registered variant satisfies the device's constraints.
    NoFeasibleVariant(String),
    /// Capsule encoding/decoding failed.
    BadCapsule(&'static str),
    /// Capsule signature or digest rejected.
    Unverified(&'static str),
    /// No marketplace node can run the workload.
    NoBid,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::NoFeasibleVariant(why) => write!(f, "no feasible variant: {why}"),
            DeployError::BadCapsule(why) => write!(f, "bad capsule: {why}"),
            DeployError::Unverified(why) => write!(f, "capsule rejected: {why}"),
            DeployError::NoBid => write!(f, "no marketplace node bid on the workload"),
        }
    }
}

impl std::error::Error for DeployError {}
