//! Edge–cloud model splitting (Neurosurgeon-style).
//!
//! §IV: *"This virtualization could also enable hybrid edge-cloud
//! applications where, depending on the available resources, the model is
//! evaluated on edge or cloud hardware. It is even possible to split a
//! model between edge and cloud."* Given per-layer compute costs and
//! activation sizes, the solver picks the cut minimizing end-to-end
//! latency: device runs layers `[0, split)`, uploads the activation, the
//! cloud runs the rest. `split = 0` is full offload, `split = n` is fully
//! local.

use serde::{Deserialize, Serialize};
use tinymlops_device::NetworkModel;
use tinymlops_nn::LayerProfile;

/// A chosen split with its predicted latency breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Layers `[0, split)` run on the device.
    pub split: usize,
    /// Device compute time.
    pub device_ms: f64,
    /// Activation (or input) upload time.
    pub upload_ms: f64,
    /// Cloud compute time.
    pub cloud_ms: f64,
    /// Total latency.
    pub total_ms: f64,
}

/// Evaluate every cut and return the latency-optimal plan.
///
/// `input_bytes` is the raw input size (uploaded when `split == 0`);
/// activations are 4 bytes/element. Returns `None` for empty profiles.
#[must_use]
pub fn best_split(
    profile: &[LayerProfile],
    input_bytes: u64,
    device_macs_per_sec: f64,
    cloud_macs_per_sec: f64,
    net: &NetworkModel,
) -> Option<SplitPlan> {
    if profile.is_empty() {
        return None;
    }
    let plans = all_splits(
        profile,
        input_bytes,
        device_macs_per_sec,
        cloud_macs_per_sec,
        net,
    );
    plans.into_iter().min_by(|a, b| {
        a.total_ms
            .partial_cmp(&b.total_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// Latency of every possible cut (for sweep figures).
#[must_use]
pub fn all_splits(
    profile: &[LayerProfile],
    input_bytes: u64,
    device_macs_per_sec: f64,
    cloud_macs_per_sec: f64,
    net: &NetworkModel,
) -> Vec<SplitPlan> {
    let n = profile.len();
    let total_macs: u64 = profile.iter().map(|l| l.macs).sum();
    (0..=n)
        .map(|split| {
            let device_macs: u64 = profile[..split].iter().map(|l| l.macs).sum();
            let cloud_macs = total_macs - device_macs;
            let device_ms = device_macs as f64 / device_macs_per_sec * 1000.0;
            let cloud_ms = cloud_macs as f64 / cloud_macs_per_sec * 1000.0;
            let upload_bytes = if split == 0 {
                input_bytes
            } else if split == n {
                0
            } else {
                profile[split - 1].output_len * 4
            };
            let upload_ms = if cloud_macs == 0 {
                0.0
            } else {
                net.transfer_ms(upload_bytes)
            };
            let total_ms = device_ms + upload_ms + cloud_ms;
            SplitPlan {
                split,
                device_ms,
                upload_ms,
                cloud_ms,
                total_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_device::{DeviceClass, NetworkKind};
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::profile::profile;
    use tinymlops_tensor::TensorRng;

    fn mlp_profile() -> Vec<LayerProfile> {
        let mut rng = TensorRng::seed(1);
        // Wide early layers, narrow late layers → natural split point late.
        let m = mlp(&[256, 128, 64, 16, 10], &mut rng);
        profile(&m, &[256])
    }

    #[test]
    fn offline_forces_fully_local() {
        let p = mlp_profile();
        let device = DeviceClass::MobileLow.profile().macs_per_sec;
        let cloud = 1e12;
        let plan = best_split(&p, 1024, device, cloud, &NetworkKind::Offline.model()).unwrap();
        assert_eq!(plan.split, p.len(), "offline → run everything locally");
        assert_eq!(plan.upload_ms, 0.0);
    }

    #[test]
    fn fast_network_slow_device_offloads_everything() {
        let p = mlp_profile();
        // Pathologically slow device, gigabit link.
        let mut net = NetworkKind::Wifi.model();
        net.bandwidth_bps = 1e9;
        net.rtt_ms = 1.0;
        let plan = best_split(&p, 1024, 1e4, 1e12, &net).unwrap();
        assert_eq!(plan.split, 0, "slow device + fast net → full offload");
    }

    #[test]
    fn split_moves_device_ward_as_bandwidth_grows() {
        let p = mlp_profile();
        let device = DeviceClass::McuM7.profile().macs_per_sec;
        let cloud = 1e11;
        let split_at = |bw: f64| {
            let mut net = NetworkKind::Wifi.model();
            net.bandwidth_bps = bw;
            net.rtt_ms = 20.0;
            best_split(&p, 256 * 4, device, cloud, &net).unwrap().split
        };
        // Monotone trend: more bandwidth → offload earlier (smaller split).
        let slow = split_at(1e4);
        let fast = split_at(1e9);
        assert!(
            fast <= slow,
            "faster network should offload at least as early: {fast} vs {slow}"
        );
    }

    #[test]
    fn total_is_sum_of_parts() {
        let p = mlp_profile();
        let net = NetworkKind::Wifi.model();
        for plan in all_splits(&p, 1024, 1e7, 1e11, &net) {
            assert!(
                (plan.total_ms - (plan.device_ms + plan.upload_ms + plan.cloud_ms)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn all_splits_has_n_plus_one_entries() {
        let p = mlp_profile();
        let plans = all_splits(&p, 1024, 1e7, 1e11, &NetworkKind::Wifi.model());
        assert_eq!(plans.len(), p.len() + 1);
        assert!(best_split(&[], 0, 1.0, 1.0, &NetworkKind::Wifi.model()).is_none());
    }

    #[test]
    fn best_split_is_argmin() {
        let p = mlp_profile();
        let net = NetworkKind::Cellular.model();
        let best = best_split(&p, 1024, 1e7, 1e11, &net).unwrap();
        for plan in all_splits(&p, 1024, 1e7, 1e11, &net) {
            assert!(best.total_ms <= plan.total_ms + 1e-9);
        }
    }
}
