//! The portable signed deployment capsule.
//!
//! §IV: containers "could then easily be deployed to different target
//! devices, solving the fragmentation issue. By running the containers in
//! an isolated sandbox, we can restrict the access … improving the
//! security of the whole system." A capsule bundles metadata, pipeline
//! bytecode and the model artifact; the whole payload is hash-addressed
//! and signed with the vendor's hash-based signature so devices execute
//! only authentic modules.
//!
//! Wire format (little-endian lengths):
//! `MAGIC(4) ‖ version(u16) ‖ meta_len(u32) ‖ meta_json ‖ code_len(u32) ‖
//! bytecode ‖ model_len(u32) ‖ model ‖ digest(32) ‖ sig_len(u32) ‖ sig`

use crate::vm::Pipeline;
use crate::DeployError;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use tinymlops_crypto::{sha256, Digest, MerkleSignature, MerkleSigner};

const MAGIC: &[u8; 4] = b"TMLC";
const VERSION: u16 = 1;

/// Capsule metadata visible before verification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapsuleMeta {
    /// Model family name.
    pub name: String,
    /// Version string (e.g. `1.2.0`).
    pub version: String,
    /// Numeric scheme name (`f32`, `int8`, …).
    pub scheme: String,
    /// Target device class name (informational).
    pub target: String,
}

/// A signed deployment capsule.
#[derive(Clone)]
pub struct Capsule {
    /// Metadata.
    pub meta: CapsuleMeta,
    /// Pipeline bytecode.
    pub bytecode: Vec<u8>,
    /// Serialized model artifact.
    pub model_bytes: Vec<u8>,
    /// SHA-256 over meta ‖ bytecode ‖ model.
    pub digest: Digest,
    /// Vendor signature over the digest.
    pub signature: MerkleSignature,
}

fn payload_digest(meta_json: &[u8], bytecode: &[u8], model: &[u8]) -> Digest {
    let mut h = tinymlops_crypto::Sha256::new();
    h.update(&(meta_json.len() as u64).to_le_bytes());
    h.update(meta_json);
    h.update(&(bytecode.len() as u64).to_le_bytes());
    h.update(bytecode);
    h.update(&(model.len() as u64).to_le_bytes());
    h.update(model);
    h.finalize()
}

impl Capsule {
    /// Build and sign a capsule.
    pub fn build(
        meta: CapsuleMeta,
        pipeline: &Pipeline,
        model_bytes: Vec<u8>,
        signer: &mut MerkleSigner,
    ) -> Result<Self, DeployError> {
        let meta_json =
            serde_json::to_vec(&meta).map_err(|_| DeployError::BadCapsule("meta encode"))?;
        let bytecode = pipeline.encode();
        let digest = payload_digest(&meta_json, &bytecode, &model_bytes);
        let signature = signer
            .sign(&digest)
            .map_err(|_| DeployError::BadCapsule("signer exhausted"))?;
        Ok(Capsule {
            meta,
            bytecode,
            model_bytes,
            digest,
            signature,
        })
    }

    /// Verify digest and signature against the vendor's root public key —
    /// the device-side gate before executing anything from the capsule.
    pub fn verify(&self, vendor_root: &Digest) -> Result<(), DeployError> {
        let meta_json =
            serde_json::to_vec(&self.meta).map_err(|_| DeployError::BadCapsule("meta encode"))?;
        let digest = payload_digest(&meta_json, &self.bytecode, &self.model_bytes);
        if digest != self.digest {
            return Err(DeployError::Unverified("digest mismatch"));
        }
        MerkleSigner::verify(vendor_root, &self.digest, &self.signature)
            .map_err(|_| DeployError::Unverified("signature invalid"))
    }

    /// Decode the embedded pipeline.
    pub fn pipeline(&self) -> Result<Pipeline, DeployError> {
        Pipeline::decode(&self.bytecode).map_err(|_| DeployError::BadCapsule("bytecode"))
    }

    /// Serialize to the wire format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta_json = serde_json::to_vec(&self.meta).expect("meta serializes");
        let sig = encode_signature(&self.signature);
        let mut buf = BytesMut::with_capacity(
            4 + 2
                + 12
                + meta_json.len()
                + self.bytecode.len()
                + self.model_bytes.len()
                + 32
                + sig.len(),
        );
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(meta_json.len() as u32);
        buf.put_slice(&meta_json);
        buf.put_u32_le(self.bytecode.len() as u32);
        buf.put_slice(&self.bytecode);
        buf.put_u32_le(self.model_bytes.len() as u32);
        buf.put_slice(&self.model_bytes);
        buf.put_slice(&self.digest);
        buf.put_u32_le(sig.len() as u32);
        buf.put_slice(&sig);
        buf.to_vec()
    }

    /// Parse the wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeployError> {
        let mut buf = bytes;
        if buf.remaining() < 6 || &buf[..4] != MAGIC {
            return Err(DeployError::BadCapsule("magic"));
        }
        buf.advance(4);
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DeployError::BadCapsule("unsupported version"));
        }
        let meta_json = take_block(&mut buf)?;
        let bytecode = take_block(&mut buf)?;
        let model_bytes = take_block(&mut buf)?;
        if buf.remaining() < 32 {
            return Err(DeployError::BadCapsule("digest"));
        }
        let mut digest = [0u8; 32];
        buf.copy_to_slice(&mut digest);
        let sig_bytes = take_block(&mut buf)?;
        let signature = decode_signature(&sig_bytes)?;
        let meta: CapsuleMeta =
            serde_json::from_slice(&meta_json).map_err(|_| DeployError::BadCapsule("meta json"))?;
        Ok(Capsule {
            meta,
            bytecode,
            model_bytes,
            digest,
            signature,
        })
    }

    /// Total wire size.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }
}

fn take_block(buf: &mut &[u8]) -> Result<Vec<u8>, DeployError> {
    if buf.remaining() < 4 {
        return Err(DeployError::BadCapsule("truncated length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DeployError::BadCapsule("truncated block"));
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn encode_signature(sig: &MerkleSignature) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(sig.leaf_index as u64);
    // 256 revealed preimages — reconstructable only via public API? The
    // signature exposes them through size; serialize via serde-free layout:
    for d in sig_revealed(sig) {
        buf.put_slice(d);
    }
    for pair in sig.ots_pub_hashes.iter() {
        buf.put_slice(&pair[0]);
        buf.put_slice(&pair[1]);
    }
    buf.put_u32_le(sig.auth_path.len() as u32);
    for d in &sig.auth_path {
        buf.put_slice(d);
    }
    buf.to_vec()
}

// The OTS revealed preimages are private inside OtsSignature; expose them
// for wire encoding via their byte serialization contract.
fn sig_revealed(sig: &MerkleSignature) -> Vec<&[u8; 32]> {
    sig.ots.revealed_digests()
}

fn decode_signature(bytes: &[u8]) -> Result<MerkleSignature, DeployError> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(DeployError::BadCapsule("sig header"));
    }
    let leaf_index = buf.get_u64_le() as usize;
    let mut revealed = Vec::with_capacity(256);
    for _ in 0..256 {
        if buf.remaining() < 32 {
            return Err(DeployError::BadCapsule("sig revealed"));
        }
        let mut d = [0u8; 32];
        buf.copy_to_slice(&mut d);
        revealed.push(d);
    }
    let mut pub_hashes = Box::new([[[0u8; 32]; 2]; 256]);
    for pair in pub_hashes.iter_mut() {
        for half in pair.iter_mut() {
            if buf.remaining() < 32 {
                return Err(DeployError::BadCapsule("sig pub hashes"));
            }
            buf.copy_to_slice(half);
        }
    }
    if buf.remaining() < 4 {
        return Err(DeployError::BadCapsule("sig path len"));
    }
    let path_len = buf.get_u32_le() as usize;
    if path_len > 64 {
        return Err(DeployError::BadCapsule("sig path too long"));
    }
    let mut auth_path = Vec::with_capacity(path_len);
    for _ in 0..path_len {
        if buf.remaining() < 32 {
            return Err(DeployError::BadCapsule("sig path"));
        }
        let mut d = [0u8; 32];
        buf.copy_to_slice(&mut d);
        auth_path.push(d);
    }
    Ok(MerkleSignature {
        leaf_index,
        ots: tinymlops_crypto::sig::OtsSignature::from_revealed(revealed),
        ots_pub_hashes: pub_hashes,
        auth_path,
    })
}

/// Convenience: digest of raw bytes (used by tests and the platform).
#[must_use]
pub fn content_digest(bytes: &[u8]) -> Digest {
    sha256(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Op;
    use tinymlops_crypto::Drbg;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    fn signer() -> MerkleSigner {
        MerkleSigner::generate(&mut Drbg::from_u64(1, b"capsule-tests"), 2)
    }

    fn sample_capsule(signer: &mut MerkleSigner) -> Capsule {
        let mut rng = TensorRng::seed(1);
        let model = mlp(&[4, 8, 3], &mut rng);
        Capsule::build(
            CapsuleMeta {
                name: "kws".into(),
                version: "1.0.0".into(),
                scheme: "int8".into(),
                target: "mcu-m4".into(),
            },
            &Pipeline::standard_classifier(0.0, 1.0),
            model.to_bytes().unwrap(),
            signer,
        )
        .unwrap()
    }

    #[test]
    fn build_verify_round_trip() {
        let mut s = signer();
        let root = s.public_key();
        let c = sample_capsule(&mut s);
        c.verify(&root).unwrap();
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut s = signer();
        let root = s.public_key();
        let c = sample_capsule(&mut s);
        let parsed = Capsule::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(parsed.meta, c.meta);
        assert_eq!(parsed.model_bytes, c.model_bytes);
        assert_eq!(parsed.digest, c.digest);
        parsed.verify(&root).unwrap();
        let p = parsed.pipeline().unwrap();
        assert_eq!(p.ops[0], Op::LoadInput);
    }

    #[test]
    fn tampered_model_is_rejected() {
        let mut s = signer();
        let root = s.public_key();
        let mut c = sample_capsule(&mut s);
        c.model_bytes[10] ^= 1;
        assert_eq!(
            c.verify(&root),
            Err(DeployError::Unverified("digest mismatch"))
        );
    }

    #[test]
    fn tampered_metadata_is_rejected() {
        let mut s = signer();
        let root = s.public_key();
        let mut c = sample_capsule(&mut s);
        c.meta.version = "6.6.6".into();
        assert!(c.verify(&root).is_err());
    }

    #[test]
    fn wrong_vendor_key_is_rejected() {
        let mut s = signer();
        let c = sample_capsule(&mut s);
        let other = MerkleSigner::generate(&mut Drbg::from_u64(9, b"evil"), 2);
        assert!(c.verify(&other.public_key()).is_err());
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert!(Capsule::from_bytes(b"NOPE").is_err());
        assert!(Capsule::from_bytes(&[]).is_err());
        let mut s = signer();
        let mut bytes = sample_capsule(&mut s).to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(Capsule::from_bytes(&bytes).is_err());
    }

    #[test]
    fn capsule_executes_after_verification() {
        let mut s = signer();
        let root = s.public_key();
        let c = sample_capsule(&mut s);
        c.verify(&root).unwrap();
        let model = tinymlops_nn::Sequential::from_bytes(&c.model_bytes).unwrap();
        let pipeline = c.pipeline().unwrap();
        let x = TensorRng::seed(3).uniform(&[2, 4], -1.0, 1.0);
        let (out, calls) = pipeline.run(&x, &[&model]).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(calls, 1);
    }
}
