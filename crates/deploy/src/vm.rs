//! The pipeline VM: portable pre/post-processing with control flow.
//!
//! §III-A: *"the machine learning pipeline will also require data
//! preprocessing and postprocessing operations such as normalization,
//! thresholding or even some control logic to activate a different part of
//! the pipeline depending on the result of a first model."* The paper
//! points at WebAssembly; our substitution (DESIGN.md) is a deterministic
//! stack machine with a fixed op set — same portability/sandboxing role,
//! auditable in one file. Bytecode round-trips through [`Pipeline::encode`]
//! so capsules can carry it.

use serde::{Deserialize, Serialize};
use tinymlops_nn::Sequential;
use tinymlops_tensor::Tensor;

/// One pipeline instruction. The VM operates on a stack of tensors; the
/// input batch is available via [`Op::LoadInput`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Push the pipeline input.
    LoadInput,
    /// `x ← (x − mean) / std`, element-wise.
    Normalize {
        /// Mean to subtract.
        mean: f32,
        /// Standard deviation to divide by (must be nonzero).
        std: f32,
    },
    /// Clamp elements into `[lo, hi]`.
    Clamp {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Scale elements by a constant.
    Scale {
        /// Multiplier.
        factor: f32,
    },
    /// Pop input, push `models[index]`'s logits.
    RunModel {
        /// Index into the pipeline's model table.
        index: u8,
    },
    /// Row-wise softmax on the top of the stack.
    Softmax,
    /// Replace logits by one-hot-free argmax indices (one scalar per row).
    ArgMax,
    /// Duplicate the top of the stack.
    Dup,
    /// Drop the top of the stack.
    Pop,
    /// Confidence gate (§III-A "control logic"): if every row's max
    /// probability on top-of-stack is ≥ `threshold`, skip the next `skip`
    /// ops (e.g. skip running the big model of a cascade).
    SkipIfConfident {
        /// Confidence threshold on the max softmax probability.
        threshold: f32,
        /// Number of following ops to skip.
        skip: u8,
    },
    /// Stop executing.
    Halt,
}

/// Errors from pipeline execution or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Stack underflow at the given op index.
    StackUnderflow(usize),
    /// Model index out of range.
    NoSuchModel(u8),
    /// Malformed bytecode.
    BadBytecode(&'static str),
    /// Execution finished with an empty stack.
    NoOutput,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::StackUnderflow(at) => write!(f, "stack underflow at op {at}"),
            VmError::NoSuchModel(i) => write!(f, "no model at index {i}"),
            VmError::BadBytecode(why) => write!(f, "bad bytecode: {why}"),
            VmError::NoOutput => write!(f, "pipeline finished with empty stack"),
        }
    }
}

impl std::error::Error for VmError {}

/// A pipeline: ops + the models they reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pipeline {
    /// Instruction sequence.
    pub ops: Vec<Op>,
}

impl Pipeline {
    /// Build from ops.
    #[must_use]
    pub fn new(ops: Vec<Op>) -> Self {
        Pipeline { ops }
    }

    /// The standard classifier pipeline: normalize → model → softmax.
    #[must_use]
    pub fn standard_classifier(mean: f32, std: f32) -> Self {
        Pipeline::new(vec![
            Op::LoadInput,
            Op::Normalize { mean, std },
            Op::RunModel { index: 0 },
            Op::Softmax,
        ])
    }

    /// A two-stage cascade (§III-A control logic): run the small model;
    /// when confident, answer immediately, otherwise run the large model.
    #[must_use]
    pub fn cascade(confidence: f32) -> Self {
        Pipeline::new(vec![
            Op::LoadInput,
            Op::RunModel { index: 0 },
            Op::Softmax,
            Op::SkipIfConfident {
                threshold: confidence,
                skip: 3,
            },
            Op::Pop,
            Op::LoadInput,
            Op::RunModel { index: 1 },
            Op::Softmax,
        ])
    }

    /// Execute on `input` with a model table. Returns the final top of
    /// stack and the number of model invocations (cascade accounting).
    pub fn run(&self, input: &Tensor, models: &[&Sequential]) -> Result<(Tensor, usize), VmError> {
        let mut stack: Vec<Tensor> = Vec::with_capacity(4);
        let mut model_calls = 0usize;
        let mut pc = 0usize;
        while pc < self.ops.len() {
            let op = &self.ops[pc];
            match op {
                Op::LoadInput => stack.push(input.clone()),
                Op::Normalize { mean, std } => {
                    let t = stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                    let (m, s) = (*mean, *std);
                    stack.push(t.map(move |v| (v - m) / s));
                }
                Op::Clamp { lo, hi } => {
                    let t = stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                    let (lo, hi) = (*lo, *hi);
                    stack.push(t.map(move |v| v.clamp(lo, hi)));
                }
                Op::Scale { factor } => {
                    let t = stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                    stack.push(t.scale(*factor));
                }
                Op::RunModel { index } => {
                    let model = models
                        .get(*index as usize)
                        .ok_or(VmError::NoSuchModel(*index))?;
                    let t = stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                    model_calls += 1;
                    stack.push(model.forward(&t));
                }
                Op::Softmax => {
                    let t = stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                    stack.push(t.softmax_rows());
                }
                Op::ArgMax => {
                    let t = stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                    let idx: Vec<f32> = t.argmax_rows().iter().map(|&i| i as f32).collect();
                    let rows = t.rows();
                    stack.push(Tensor::from_vec(idx, &[rows]));
                }
                Op::Dup => {
                    let t = stack.last().ok_or(VmError::StackUnderflow(pc))?.clone();
                    stack.push(t);
                }
                Op::Pop => {
                    stack.pop().ok_or(VmError::StackUnderflow(pc))?;
                }
                Op::SkipIfConfident { threshold, skip } => {
                    let t = stack.last().ok_or(VmError::StackUnderflow(pc))?;
                    let all_confident = (0..t.rows()).all(|r| {
                        t.row(r).iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) >= *threshold
                    });
                    if all_confident {
                        pc += *skip as usize;
                    }
                }
                Op::Halt => break,
            }
            pc += 1;
        }
        let out = stack.pop().ok_or(VmError::NoOutput)?;
        Ok((out, model_calls))
    }

    /// Encode ops into compact bytecode (1-byte tag + fixed operands).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.ops.len() * 5);
        for op in &self.ops {
            match op {
                Op::LoadInput => out.push(0),
                Op::Normalize { mean, std } => {
                    out.push(1);
                    out.extend_from_slice(&mean.to_le_bytes());
                    out.extend_from_slice(&std.to_le_bytes());
                }
                Op::Clamp { lo, hi } => {
                    out.push(2);
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                Op::Scale { factor } => {
                    out.push(3);
                    out.extend_from_slice(&factor.to_le_bytes());
                }
                Op::RunModel { index } => {
                    out.push(4);
                    out.push(*index);
                }
                Op::Softmax => out.push(5),
                Op::ArgMax => out.push(6),
                Op::Dup => out.push(7),
                Op::Pop => out.push(8),
                Op::SkipIfConfident { threshold, skip } => {
                    out.push(9);
                    out.extend_from_slice(&threshold.to_le_bytes());
                    out.push(*skip);
                }
                Op::Halt => out.push(10),
            }
        }
        out
    }

    /// Decode bytecode produced by [`Pipeline::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, VmError> {
        let mut ops = Vec::new();
        let mut i = 0usize;
        let take_f32 = |bytes: &[u8], i: &mut usize| -> Result<f32, VmError> {
            if *i + 4 > bytes.len() {
                return Err(VmError::BadBytecode("truncated f32 operand"));
            }
            let v = f32::from_le_bytes([bytes[*i], bytes[*i + 1], bytes[*i + 2], bytes[*i + 3]]);
            *i += 4;
            Ok(v)
        };
        while i < bytes.len() {
            let tag = bytes[i];
            i += 1;
            let op = match tag {
                0 => Op::LoadInput,
                1 => Op::Normalize {
                    mean: take_f32(bytes, &mut i)?,
                    std: take_f32(bytes, &mut i)?,
                },
                2 => Op::Clamp {
                    lo: take_f32(bytes, &mut i)?,
                    hi: take_f32(bytes, &mut i)?,
                },
                3 => Op::Scale {
                    factor: take_f32(bytes, &mut i)?,
                },
                4 => {
                    if i >= bytes.len() {
                        return Err(VmError::BadBytecode("truncated model index"));
                    }
                    let index = bytes[i];
                    i += 1;
                    Op::RunModel { index }
                }
                5 => Op::Softmax,
                6 => Op::ArgMax,
                7 => Op::Dup,
                8 => Op::Pop,
                9 => {
                    let threshold = take_f32(bytes, &mut i)?;
                    if i >= bytes.len() {
                        return Err(VmError::BadBytecode("truncated skip count"));
                    }
                    let skip = bytes[i];
                    i += 1;
                    Op::SkipIfConfident { threshold, skip }
                }
                10 => Op::Halt,
                _ => return Err(VmError::BadBytecode("unknown opcode")),
            };
            ops.push(op);
        }
        Ok(Pipeline::new(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed(seed);
        mlp(&[4, 8, 3], &mut rng)
    }

    #[test]
    fn standard_classifier_outputs_probabilities() {
        let m = model(1);
        let p = Pipeline::standard_classifier(0.5, 0.25);
        let x = TensorRng::seed(2).uniform(&[3, 4], 0.0, 1.0);
        let (out, calls) = p.run(&x, &[&m]).unwrap();
        assert_eq!(out.shape(), &[3, 3]);
        assert_eq!(calls, 1);
        for r in 0..3 {
            let s: f32 = out.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn normalization_matches_manual() {
        let p = Pipeline::new(vec![
            Op::LoadInput,
            Op::Normalize {
                mean: 2.0,
                std: 4.0,
            },
        ]);
        let x = Tensor::vector(&[6.0, 2.0]);
        let (out, _) = p.run(&x, &[]).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0]);
    }

    #[test]
    fn cascade_skips_big_model_when_confident() {
        // Small model = big model here; confidence 0.0 always skips.
        let small = model(3);
        let big = model(4);
        let p = Pipeline::cascade(0.0);
        let x = TensorRng::seed(5).uniform(&[2, 4], -1.0, 1.0);
        let (_, calls) = p.run(&x, &[&small, &big]).unwrap();
        assert_eq!(calls, 1, "confident cascade runs only the small model");
    }

    #[test]
    fn cascade_escalates_when_unsure() {
        let small = model(3);
        let big = model(4);
        let p = Pipeline::cascade(1.1); // impossible confidence → always escalate
        let x = TensorRng::seed(6).uniform(&[2, 4], -1.0, 1.0);
        let (out, calls) = p.run(&x, &[&small, &big]).unwrap();
        assert_eq!(calls, 2, "unsure cascade runs both models");
        assert_eq!(out.shape(), &[2, 3]);
    }

    #[test]
    fn argmax_and_threshold_ops() {
        let p = Pipeline::new(vec![Op::LoadInput, Op::ArgMax]);
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        let (out, _) = p.run(&x, &[]).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0]);
    }

    #[test]
    fn stack_underflow_is_reported() {
        let p = Pipeline::new(vec![Op::Softmax]);
        let x = Tensor::vector(&[1.0]);
        assert_eq!(p.run(&x, &[]), Err(VmError::StackUnderflow(0)));
    }

    #[test]
    fn missing_model_is_reported() {
        let p = Pipeline::new(vec![Op::LoadInput, Op::RunModel { index: 3 }]);
        let x = Tensor::zeros(&[1, 4]);
        assert_eq!(p.run(&x, &[]), Err(VmError::NoSuchModel(3)));
    }

    #[test]
    fn halt_stops_execution() {
        let p = Pipeline::new(vec![Op::LoadInput, Op::Halt, Op::Pop, Op::Pop, Op::Pop]);
        let x = Tensor::vector(&[1.0]);
        assert!(p.run(&x, &[]).is_ok(), "ops after halt never execute");
    }

    #[test]
    fn bytecode_round_trip() {
        let p = Pipeline::cascade(0.85);
        let decoded = Pipeline::decode(&p.encode()).unwrap();
        assert_eq!(decoded.ops, p.ops);
        // Also for a pipeline exercising every opcode.
        let all = Pipeline::new(vec![
            Op::LoadInput,
            Op::Normalize {
                mean: 1.0,
                std: 2.0,
            },
            Op::Clamp { lo: -1.0, hi: 1.0 },
            Op::Scale { factor: 0.5 },
            Op::RunModel { index: 2 },
            Op::Softmax,
            Op::ArgMax,
            Op::Dup,
            Op::Pop,
            Op::SkipIfConfident {
                threshold: 0.5,
                skip: 2,
            },
            Op::Halt,
        ]);
        assert_eq!(Pipeline::decode(&all.encode()).unwrap().ops, all.ops);
    }

    #[test]
    fn truncated_bytecode_rejected() {
        let p = Pipeline::new(vec![Op::Normalize {
            mean: 0.0,
            std: 1.0,
        }]);
        let mut bytes = p.encode();
        bytes.truncate(bytes.len() - 2);
        assert!(Pipeline::decode(&bytes).is_err());
        assert!(Pipeline::decode(&[255]).is_err());
    }
}
