//! Constraint-aware model-variant selection.
//!
//! The §III-A scenario matrix: the same user may want a smaller model on
//! battery, a fast-to-download model on a slow link, and the most accurate
//! model when plugged in on WiFi. Selection is a filter (hard constraints:
//! scheme support, flash fit, latency/download bounds) followed by a
//! utility maximization whose weights shift with device state.

use crate::DeployError;
use tinymlops_device::{download_cost, inference_cost, Device, NetworkKind, NumericScheme};
use tinymlops_registry::{ModelFormat, ModelRecord};

/// Hard requirements from the application.
#[derive(Debug, Clone)]
pub struct Requirements {
    /// Maximum acceptable inference latency.
    pub max_latency_ms: f64,
    /// Maximum acceptable model download time (∞ if not downloading now).
    pub max_download_ms: f64,
    /// Minimum acceptable accuracy.
    pub min_accuracy: f64,
    /// Maximum energy per inference in millijoules (∞ = unconstrained).
    /// §III-A: a battery-aware caller derives this from remaining charge
    /// and the inferences it still must serve before the next charge.
    pub max_energy_mj: f64,
}

impl Default for Requirements {
    fn default() -> Self {
        Requirements {
            max_latency_ms: 500.0,
            max_download_ms: 120_000.0,
            min_accuracy: 0.0,
            max_energy_mj: f64::INFINITY,
        }
    }
}

/// The chosen variant plus its predicted costs (for reports).
#[derive(Debug, Clone)]
pub struct Selection {
    /// The chosen record.
    pub record: ModelRecord,
    /// Predicted inference latency on this device.
    pub latency_ms: f64,
    /// Predicted inference energy.
    pub energy_mj: f64,
    /// Predicted download time on the current link.
    pub download_ms: f64,
    /// The utility score that won.
    pub utility: f64,
}

fn scheme_of(format: &ModelFormat) -> NumericScheme {
    match format {
        ModelFormat::F32 | ModelFormat::Pruned { .. } | ModelFormat::Distilled => {
            NumericScheme::F32
        }
        ModelFormat::Quantized { bits } | ModelFormat::PrunedQuantized { bits, .. } => match bits {
            8 => NumericScheme::Int8,
            4 => NumericScheme::Int4,
            2 => NumericScheme::Int2,
            _ => NumericScheme::Binary,
        },
    }
}

/// Pick the best variant among `candidates` for `device` in its current
/// state. Returns an error naming the binding constraint when nothing fits.
pub fn select_variant(
    candidates: &[ModelRecord],
    device: &Device,
    req: &Requirements,
) -> Result<Selection, DeployError> {
    let battery_low = device.state.battery.is_low();
    let plugged = device.state.battery.plugged;
    let net = device.state.network.model();
    // Utility weights shift with device state (§III-A's examples).
    let energy_weight = if plugged {
        0.0
    } else if battery_low {
        3.0e-2
    } else {
        3.0e-3
    };
    let latency_weight = 1.0e-4;
    let download_weight = match device.state.network {
        NetworkKind::Wifi => 1.0e-7,
        _ => 2.0e-6,
    };

    let mut best: Option<Selection> = None;
    let mut last_reason = "no candidates".to_string();
    for record in candidates {
        let scheme = scheme_of(&record.format);
        if !device.profile.supports(scheme) {
            last_reason = format!(
                "{} unsupported on {}",
                scheme.name(),
                device.profile.class.name()
            );
            continue;
        }
        if !device.profile.fits_in_flash(record.size_bytes) {
            last_reason = format!("{} bytes exceed flash", record.size_bytes);
            continue;
        }
        if record.accuracy() < req.min_accuracy {
            last_reason = format!("accuracy {:.3} below floor", record.accuracy());
            continue;
        }
        let Some(inf) = inference_cost(&device.profile, record.macs, scheme) else {
            last_reason = "no inference cost (unsupported scheme)".to_string();
            continue;
        };
        if inf.latency_ms > req.max_latency_ms {
            last_reason = format!("latency {:.1}ms over budget", inf.latency_ms);
            continue;
        }
        if inf.energy_mj > req.max_energy_mj {
            last_reason = format!("energy {:.4}mJ over budget", inf.energy_mj);
            continue;
        }
        let download_ms = match download_cost(&net, record.size_bytes) {
            Some(c) => c.latency_ms,
            None => {
                // Offline: can't fetch a new model now. Only acceptable if
                // the caller treats download time as irrelevant (cached).
                if req.max_download_ms.is_finite() {
                    last_reason = "device offline, download required".to_string();
                    continue;
                }
                0.0
            }
        };
        if download_ms > req.max_download_ms {
            last_reason = format!("download {download_ms:.0}ms over budget");
            continue;
        }
        let utility = record.accuracy()
            - latency_weight * inf.latency_ms
            - energy_weight * inf.energy_mj
            - download_weight * download_ms;
        let candidate = Selection {
            record: record.clone(),
            latency_ms: inf.latency_ms,
            energy_mj: inf.energy_mj,
            download_ms,
            utility,
        };
        if best.as_ref().is_none_or(|b| candidate.utility > b.utility) {
            best = Some(candidate);
        }
    }
    best.ok_or(DeployError::NoFeasibleVariant(last_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tinymlops_device::{BatteryModel, DeviceClass, DeviceState, NetworkKind};
    use tinymlops_registry::{ModelId, SemVer};

    fn record(id: u64, format: ModelFormat, size: u64, macs: u64, acc: f64) -> ModelRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        ModelRecord {
            id: ModelId(id),
            name: "m".into(),
            version: SemVer::new(1, 0, 0),
            format,
            parent: None,
            artifact: [0; 32],
            size_bytes: size,
            macs,
            metrics,
            tags: vec![],
            created_ms: 0,
        }
    }

    fn variants() -> Vec<ModelRecord> {
        vec![
            record(0, ModelFormat::F32, 40_000, 10_000_000, 0.96),
            record(
                1,
                ModelFormat::Quantized { bits: 8 },
                10_000,
                10_000_000,
                0.95,
            ),
            record(
                2,
                ModelFormat::Quantized { bits: 4 },
                5_000,
                10_000_000,
                0.93,
            ),
            record(
                3,
                ModelFormat::Quantized { bits: 1 },
                1_300,
                10_000_000,
                0.80,
            ),
        ]
    }

    fn device(class: DeviceClass, level: f64, plugged: bool, net: NetworkKind) -> Device {
        let mut battery = BatteryModel::new(1000.0);
        battery.charge_mj = 1000.0 * level;
        battery.plugged = plugged;
        Device {
            id: 0,
            profile: class.profile(),
            state: DeviceState {
                battery,
                network: net,
            },
        }
    }

    #[test]
    fn plugged_highend_gets_most_accurate() {
        let d = device(DeviceClass::MobileHigh, 1.0, true, NetworkKind::Wifi);
        let s = select_variant(&variants(), &d, &Requirements::default()).unwrap();
        assert_eq!(s.record.format.name(), "f32");
    }

    #[test]
    fn low_battery_prefers_cheaper_scheme() {
        let full = device(DeviceClass::McuM7, 1.0, false, NetworkKind::Wifi);
        let low = device(DeviceClass::McuM7, 0.05, false, NetworkKind::Wifi);
        let req = Requirements {
            max_latency_ms: 5_000.0,
            ..Default::default()
        };
        let s_full = select_variant(&variants(), &full, &req).unwrap();
        let s_low = select_variant(&variants(), &low, &req).unwrap();
        assert!(
            s_low.energy_mj <= s_full.energy_mj,
            "low battery should not pick a hungrier model: {} vs {}",
            s_low.energy_mj,
            s_full.energy_mj
        );
    }

    #[test]
    fn m0_cannot_run_f32() {
        let d = device(DeviceClass::McuM0, 1.0, true, NetworkKind::Wifi);
        let req = Requirements {
            max_latency_ms: 1e7,
            ..Default::default()
        };
        let s = select_variant(&variants(), &d, &req).unwrap();
        assert_ne!(s.record.format.name(), "f32", "M0 has no f32 support");
    }

    #[test]
    fn slow_network_prefers_smaller_download() {
        let wifi = device(DeviceClass::MobileLow, 1.0, true, NetworkKind::Wifi);
        let ble = device(DeviceClass::MobileLow, 1.0, true, NetworkKind::Ble);
        let s_wifi = select_variant(&variants(), &wifi, &Requirements::default()).unwrap();
        let s_ble = select_variant(&variants(), &ble, &Requirements::default()).unwrap();
        assert!(
            s_ble.record.size_bytes <= s_wifi.record.size_bytes,
            "BLE pick {} bytes vs WiFi pick {} bytes",
            s_ble.record.size_bytes,
            s_wifi.record.size_bytes
        );
    }

    #[test]
    fn accuracy_floor_is_enforced() {
        let d = device(DeviceClass::MobileHigh, 1.0, true, NetworkKind::Wifi);
        let req = Requirements {
            min_accuracy: 0.9,
            ..Default::default()
        };
        let s = select_variant(&variants(), &d, &req).unwrap();
        assert!(s.record.accuracy() >= 0.9);
    }

    #[test]
    fn impossible_constraints_name_the_reason() {
        let d = device(DeviceClass::McuM0, 1.0, true, NetworkKind::Wifi);
        let req = Requirements {
            min_accuracy: 0.99,
            ..Default::default()
        };
        let err = select_variant(&variants(), &d, &req).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasibleVariant(_)));
    }

    #[test]
    fn offline_device_with_finite_download_budget_fails() {
        let d = device(DeviceClass::MobileHigh, 1.0, true, NetworkKind::Offline);
        let err = select_variant(&variants(), &d, &Requirements::default()).unwrap_err();
        assert!(matches!(err, DeployError::NoFeasibleVariant(_)));
        // With download waived (already cached), selection succeeds.
        let req = Requirements {
            max_download_ms: f64::INFINITY,
            ..Default::default()
        };
        assert!(select_variant(&variants(), &d, &req).is_ok());
    }

    #[test]
    fn flash_constraint_excludes_big_models() {
        // M0 has 256 KiB flash · 75% budget; make the f32 model too big.
        let mut v = variants();
        v[0].size_bytes = 300 * 1024;
        v[1].size_bytes = 300 * 1024;
        let d = device(DeviceClass::McuM0, 1.0, true, NetworkKind::Wifi);
        let req = Requirements {
            max_latency_ms: 1e7,
            ..Default::default()
        };
        let s = select_variant(&v, &d, &req).unwrap();
        assert!(s.record.size_bytes < 200 * 1024);
    }
}
