//! Model intellectual-property protection (paper §V).
//!
//! §V: *"A trained machine learning model can represent a significant
//! intellectual value for the owner … unscrupulous actors might try to
//! steal the trained model."* The paper's defense menu, implemented:
//!
//! * [`encrypt`] — model encryption at rest/in transit with per-device key
//!   wrapping ("The model is then decrypted as it is loaded in memory").
//! * [`watermark`] — **static** white-box watermarking (a secret
//!   projection of the weights encodes the owner's bitstring, embedded
//!   with a training-time regularizer) and **dynamic** black-box
//!   watermarking (trigger-set backdooring), with the paper's
//!   fidelity / robustness / capacity evaluation axes.
//! * [`poison`] — prediction poisoning against *indirect* stealing: from
//!   the paper's "as simple as rounding the confidence values" to
//!   label-only APIs and reverse-sigmoid noise.
//! * [`extract`] — the student–teacher **extraction attack** itself
//!   (black-box query + distillation), because a defense you haven't
//!   attacked is a defense you don't understand. Used by experiment E12.

pub mod encrypt;
pub mod extract;
pub mod poison;
pub mod scramble;
pub mod watermark;

pub use encrypt::{decrypt_model, encrypt_model, EncryptedModel};
pub use extract::{extraction_attack, AttackReport, ExtractConfig};
pub use poison::Poisoner;
pub use scramble::{descramble, scramble, unlock_checked};
pub use watermark::{DynamicWatermark, StaticWatermark, WatermarkReport};

/// Errors from IP-protection operations.
#[derive(Debug, Clone, PartialEq)]
pub enum IppError {
    /// Decryption failed (wrong key or tampered ciphertext).
    DecryptionFailed,
    /// The model bytes inside a container were malformed.
    BadModel(String),
}

impl std::fmt::Display for IppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IppError::DecryptionFailed => write!(f, "decryption failed"),
            IppError::BadModel(why) => write!(f, "bad model: {why}"),
        }
    }
}

impl std::error::Error for IppError {}
