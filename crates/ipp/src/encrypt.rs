//! Model encryption with per-device key wrapping.
//!
//! §V: *"encryption techniques can protect the model while it is
//! downloaded or stored on the device. The model is then decrypted as it
//! is loaded in memory, right before being used. … A disadvantage of this
//! approach however is the increased computational cost caused by
//! decrypting the model before use"* — experiment E10 measures exactly
//! that cost with this module.
//!
//! Key management: the vendor holds a master key; each device's key is
//! `HKDF(master, device_id)`. Compromising one device never exposes
//! another device's model copy.

use crate::IppError;
use tinymlops_crypto::{hkdf, SealedBox};
use tinymlops_nn::Sequential;

/// An encrypted model blob bound to a device.
#[derive(Debug, Clone)]
pub struct EncryptedModel {
    /// Device this copy is wrapped for.
    pub device_id: u32,
    /// The sealed payload.
    pub sealed: SealedBox,
}

/// Derive the per-device model-wrapping key.
#[must_use]
pub fn device_key(master: &[u8; 32], device_id: u32) -> [u8; 32] {
    let okm = hkdf(
        b"tinymlops.model-wrap",
        master,
        &device_id.to_le_bytes(),
        32,
    );
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    key
}

/// Encrypt a model for one device. The nonce must be unique per (device,
/// model version); callers pass a counter-derived nonce.
#[must_use]
pub fn encrypt_model(
    model: &Sequential,
    master: &[u8; 32],
    device_id: u32,
    nonce: [u8; 12],
) -> EncryptedModel {
    let bytes = model.to_bytes().expect("model serializes");
    let key = device_key(master, device_id);
    let aad = device_id.to_le_bytes();
    EncryptedModel {
        device_id,
        sealed: SealedBox::seal(&key, nonce, &aad, &bytes),
    }
}

/// Decrypt and deserialize on-device ("decrypted as it is loaded in
/// memory"). Fails closed on any tampering or key mismatch.
pub fn decrypt_model(enc: &EncryptedModel, master: &[u8; 32]) -> Result<Sequential, IppError> {
    let key = device_key(master, enc.device_id);
    let aad = enc.device_id.to_le_bytes();
    let bytes = enc
        .sealed
        .open(&key, &aad)
        .map_err(|_| IppError::DecryptionFailed)?;
    Sequential::from_bytes(&bytes).map_err(|e| IppError::BadModel(e.to_string()))
}

/// Decrypt with a raw device key (device-side API; the device never holds
/// the master).
pub fn decrypt_with_device_key(
    enc: &EncryptedModel,
    key: &[u8; 32],
) -> Result<Sequential, IppError> {
    let aad = enc.device_id.to_le_bytes();
    let bytes = enc
        .sealed
        .open(key, &aad)
        .map_err(|_| IppError::DecryptionFailed)?;
    Sequential::from_bytes(&bytes).map_err(|e| IppError::BadModel(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::model::mlp;
    use tinymlops_tensor::TensorRng;

    const MASTER: [u8; 32] = [5u8; 32];

    fn model() -> Sequential {
        mlp(&[8, 16, 4], &mut TensorRng::seed(7))
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let m = model();
        let enc = encrypt_model(&m, &MASTER, 42, [1u8; 12]);
        let dec = decrypt_model(&enc, &MASTER).unwrap();
        let x = TensorRng::seed(1).uniform(&[2, 8], -1.0, 1.0);
        assert_eq!(m.forward(&x), dec.forward(&x));
    }

    #[test]
    fn device_key_decrypts_its_own_copy() {
        let m = model();
        let enc = encrypt_model(&m, &MASTER, 7, [2u8; 12]);
        let key = device_key(&MASTER, 7);
        assert!(decrypt_with_device_key(&enc, &key).is_ok());
    }

    #[test]
    fn one_devices_key_cannot_open_anothers_copy() {
        let m = model();
        let enc_for_1 = encrypt_model(&m, &MASTER, 1, [3u8; 12]);
        let key_of_2 = device_key(&MASTER, 2);
        assert!(matches!(
            decrypt_with_device_key(&enc_for_1, &key_of_2),
            Err(IppError::DecryptionFailed)
        ));
    }

    #[test]
    fn rebinding_device_id_fails_auth() {
        // Copying device 1's ciphertext and claiming it's for device 2
        // breaks the AAD binding even with device 2's key.
        let m = model();
        let mut enc = encrypt_model(&m, &MASTER, 1, [4u8; 12]);
        enc.device_id = 2;
        assert!(matches!(
            decrypt_model(&enc, &MASTER),
            Err(IppError::DecryptionFailed)
        ));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let m = model();
        let mut enc = encrypt_model(&m, &MASTER, 1, [5u8; 12]);
        let mid = enc.sealed.ciphertext.len() / 2;
        enc.sealed.ciphertext[mid] ^= 0xff;
        assert!(matches!(
            decrypt_model(&enc, &MASTER),
            Err(IppError::DecryptionFailed)
        ));
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let m = model();
        let plain = m.to_bytes().unwrap();
        let enc = encrypt_model(&m, &MASTER, 1, [6u8; 12]);
        // No 16-byte window of the plaintext appears in the ciphertext.
        let ct = &enc.sealed.ciphertext;
        assert_eq!(ct.len(), plain.len());
        let window = &plain[0..16];
        assert!(!ct.windows(16).any(|w| w == window));
    }
}
