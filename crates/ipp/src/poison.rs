//! Prediction poisoning: perturbing the served outputs to sabotage
//! extraction attacks without hurting honest users.
//!
//! §V: *"Prediction poisoning … takes a proactive approach by actively
//! perturbing the outputs of the model that is returned to the user. These
//! perturbations are carefully designed to retain the model accuracy while
//! introducing sufficient noise to disturb the training process of a
//! derivative model. Prediction poisoning can be as simple as rounding the
//! confidence values."* All poisoners here preserve the argmax, so the
//! top-1 answer an honest user sees is untouched.

use serde::{Deserialize, Serialize};
use tinymlops_tensor::Tensor;

/// An output-perturbation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Poisoner {
    /// Serve exact probabilities (no defense).
    None,
    /// Round probabilities to `decimals` places, renormalize
    /// (the paper's "as simple as rounding the confidence values").
    Round {
        /// Decimal places kept.
        decimals: u32,
    },
    /// Serve only the top-1 probability; all other mass spread uniformly.
    TopOnly,
    /// Serve only the label (one-hot output).
    LabelOnly,
    /// Reverse-sigmoid-style deceptive perturbation (Lee et al.): add a
    /// sign-alternating distortion that preserves argmax but bends the
    /// soft-probability surface a student would fit.
    ReverseSigmoid {
        /// Perturbation magnitude β.
        beta: f32,
    },
}

impl Poisoner {
    /// Stable name for experiment tables.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Poisoner::None => "none".into(),
            Poisoner::Round { decimals } => format!("round{decimals}"),
            Poisoner::TopOnly => "top1".into(),
            Poisoner::LabelOnly => "label-only".into(),
            Poisoner::ReverseSigmoid { beta } => format!("revsig{beta:.1}"),
        }
    }

    /// Apply the policy to a batch of probability rows.
    #[must_use]
    pub fn apply(self, probs: &Tensor) -> Tensor {
        match self {
            Poisoner::None => probs.clone(),
            Poisoner::Round { decimals } => {
                let scale = 10f32.powi(decimals as i32);
                let mut out = probs.clone();
                for r in 0..out.rows() {
                    let arg = argmax_row(probs.row(r));
                    let row = out.row_mut(r);
                    for v in row.iter_mut() {
                        *v = (*v * scale).round() / scale;
                    }
                    renormalize_keep_argmax(row, arg);
                }
                out
            }
            Poisoner::TopOnly => {
                let mut out = Tensor::zeros(probs.shape());
                for r in 0..probs.rows() {
                    let row_in = probs.row(r);
                    let arg = argmax_row(row_in);
                    let top = row_in[arg];
                    let k = row_in.len();
                    let rest = (1.0 - top) / (k - 1).max(1) as f32;
                    let row = out.row_mut(r);
                    for (i, v) in row.iter_mut().enumerate() {
                        *v = if i == arg { top } else { rest };
                    }
                }
                out
            }
            Poisoner::LabelOnly => {
                let mut out = Tensor::zeros(probs.shape());
                for r in 0..probs.rows() {
                    let arg = argmax_row(probs.row(r));
                    out.row_mut(r)[arg] = 1.0;
                }
                out
            }
            Poisoner::ReverseSigmoid { beta } => {
                let mut out = probs.clone();
                for r in 0..out.rows() {
                    let arg = argmax_row(probs.row(r));
                    let row = out.row_mut(r);
                    for (i, v) in row.iter_mut().enumerate() {
                        // Deceptive bend: push non-max probabilities toward
                        // a flipped ranking while keeping them positive.
                        if i != arg {
                            let bent = *v + beta * (0.5 - *v) * (1.0 - *v);
                            *v = bent.clamp(1e-6, 0.999);
                        }
                    }
                    renormalize_keep_argmax(row, arg);
                }
                out
            }
        }
    }
}

fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Renormalize a probability row to sum 1 while guaranteeing `arg` stays
/// the (strict) argmax.
fn renormalize_keep_argmax(row: &mut [f32], arg: usize) {
    let sum: f32 = row.iter().sum();
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    // Enforce argmax preservation against rounding artifacts.
    let max_other = row
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != arg)
        .map(|(_, &v)| v)
        .fold(0.0f32, f32::max);
    if row[arg] <= max_other {
        row[arg] = max_other + 1e-4;
        let sum: f32 = row.iter().sum();
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs() -> Tensor {
        Tensor::from_vec(
            vec![
                0.613, 0.207, 0.12, 0.06, //
                0.251, 0.249, 0.25, 0.25,
            ],
            &[2, 4],
        )
    }

    #[test]
    fn all_poisoners_preserve_argmax() {
        let p = probs();
        let before = p.argmax_rows();
        for poisoner in [
            Poisoner::None,
            Poisoner::Round { decimals: 1 },
            Poisoner::TopOnly,
            Poisoner::LabelOnly,
            Poisoner::ReverseSigmoid { beta: 0.8 },
        ] {
            let out = poisoner.apply(&p);
            assert_eq!(
                out.argmax_rows(),
                before,
                "{} broke argmax",
                poisoner.name()
            );
        }
    }

    #[test]
    fn outputs_remain_distributions() {
        let p = probs();
        for poisoner in [
            Poisoner::Round { decimals: 1 },
            Poisoner::TopOnly,
            Poisoner::LabelOnly,
            Poisoner::ReverseSigmoid { beta: 0.8 },
        ] {
            let out = poisoner.apply(&p);
            for r in 0..out.rows() {
                let sum: f32 = out.row(r).iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-3,
                    "{} row sum {sum}",
                    poisoner.name()
                );
                assert!(out.row(r).iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn rounding_coarsens_information() {
        let p = probs();
        let out = Poisoner::Round { decimals: 1 }.apply(&p);
        // Distinct fine-grained values collapse onto the 0.1 grid (up to
        // the renormalization): count distinct values drops.
        let distinct = |t: &Tensor| {
            let mut v: Vec<i32> = t.data().iter().map(|x| (x * 1e4).round() as i32).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct(&out) <= distinct(&p));
    }

    #[test]
    fn label_only_is_one_hot() {
        let out = Poisoner::LabelOnly.apply(&probs());
        for r in 0..out.rows() {
            let ones = out.row(r).iter().filter(|&&v| v == 1.0).count();
            let zeros = out.row(r).iter().filter(|&&v| v == 0.0).count();
            assert_eq!((ones, zeros), (1, 3));
        }
    }

    #[test]
    fn reverse_sigmoid_distorts_runner_up_ordering_information() {
        let p = Tensor::from_vec(vec![0.5, 0.3, 0.15, 0.05], &[1, 4]);
        let out = Poisoner::ReverseSigmoid { beta: 0.9 }.apply(&p);
        // The KL between served and true distribution should be material.
        let kl: f32 = p
            .row(0)
            .iter()
            .zip(out.row(0))
            .map(|(&t, &s)| t * (t / s.max(1e-9)).ln())
            .sum();
        assert!(kl > 0.01, "revsig KL {kl}");
    }

    #[test]
    fn none_is_identity() {
        let p = probs();
        assert_eq!(Poisoner::None.apply(&p), p);
    }
}
