//! The model-extraction (indirect stealing) attack.
//!
//! §V: *"by making repeated queries to the model, each time providing an
//! input data point and recording the prediction of the model, he is able
//! to construct a labelled data set over time. He can then use this data
//! to train a machine learning model of his own that mimics the behaviour
//! of the original model. … this student-teacher learning approach can
//! allow the attacker to train a similar model for a fraction of the cost
//! of training the original model."*
//!
//! We implement the attack honestly so the defenses (poisoning, detection)
//! are evaluated against a real adversary, not a strawman: the attacker
//! holds unlabeled transfer data, queries the victim's prediction API
//! (which may poison outputs), and distills a surrogate.

use crate::poison::Poisoner;
use serde::{Deserialize, Serialize};
use tinymlops_nn::{Dataset, Sequential};
use tinymlops_quant::distill::{distill, DistillConfig};
use tinymlops_tensor::Tensor;

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Number of queries the attacker spends.
    pub query_budget: usize,
    /// Distillation settings for surrogate training.
    pub distill: DistillConfig,
    /// Surrogate architecture widths (input/output must match victim).
    pub surrogate_widths: Vec<usize>,
    /// Attack seed.
    pub seed: u64,
}

/// Outcome of one extraction attempt (one row of the E12 table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackReport {
    /// Defense the victim ran.
    pub defense: String,
    /// Queries spent.
    pub queries: usize,
    /// Surrogate's top-1 agreement with the victim on held-out data.
    pub agreement: f32,
    /// Surrogate's accuracy on the true task.
    pub surrogate_accuracy: f32,
}

/// Run the extraction attack against `victim` fronted by `poisoner`.
///
/// `transfer` is the attacker's unlabeled query pool; `eval` is the
/// held-out set used to score the stolen model (the attacker wouldn't have
/// it — we do, for the experiment).
#[must_use]
pub fn extraction_attack(
    victim: &Sequential,
    poisoner: Poisoner,
    transfer: &Dataset,
    eval: &Dataset,
    cfg: &ExtractConfig,
) -> AttackReport {
    let n = cfg.query_budget.min(transfer.len());
    let queries = transfer.subset(&(0..n).collect::<Vec<_>>());
    // The victim's public API: probabilities, possibly poisoned.
    let served: Tensor = poisoner.apply(&victim.predict_proba(&queries.x));
    // Attacker trains a surrogate on (input, served probability) pairs.
    let mut surrogate = tinymlops_nn::model::mlp(
        &cfg.surrogate_widths,
        &mut tinymlops_tensor::TensorRng::seed(cfg.seed),
    );
    distill(&mut surrogate, &queries.x, &served, &cfg.distill);
    // Score the theft.
    let victim_pred = victim.predict(&eval.x);
    let surrogate_pred = surrogate.predict(&eval.x);
    let agreement = victim_pred
        .iter()
        .zip(&surrogate_pred)
        .filter(|(a, b)| a == b)
        .count() as f32
        / victim_pred.len().max(1) as f32;
    let surrogate_accuracy = surrogate_pred
        .iter()
        .zip(&eval.y)
        .filter(|(p, y)| p == y)
        .count() as f32
        / eval.len().max(1) as f32;
    AttackReport {
        defense: poisoner.name(),
        queries: n,
        agreement,
        surrogate_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn victim_and_data() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(1600, 0.08, 99);
        let (train, test) = data.split(0.8, 0);
        let mut rng = TensorRng::seed(12);
        let mut victim = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut victim,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 18,
                batch_size: 32,
                ..Default::default()
            },
        );
        (victim, train, test)
    }

    fn attack_cfg(budget: usize) -> ExtractConfig {
        ExtractConfig {
            query_budget: budget,
            distill: DistillConfig {
                epochs: 25,
                ..Default::default()
            },
            surrogate_widths: vec![64, 24, 10],
            seed: 7,
        }
    }

    #[test]
    fn undefended_extraction_succeeds() {
        let (victim, _, test) = victim_and_data();
        // Attacker's transfer set: noisier digits (their own harvest).
        let transfer = synth_digits(1200, 0.2, 777);
        let report =
            extraction_attack(&victim, Poisoner::None, &transfer, &test, &attack_cfg(1200));
        assert!(
            report.agreement > 0.8,
            "undefended victim should be stolen: agreement {}",
            report.agreement
        );
    }

    #[test]
    fn poisoning_reduces_extraction_quality() {
        let (victim, _, test) = victim_and_data();
        let transfer = synth_digits(1200, 0.2, 778);
        let clean = extraction_attack(&victim, Poisoner::None, &transfer, &test, &attack_cfg(1200));
        let poisoned = extraction_attack(
            &victim,
            Poisoner::ReverseSigmoid { beta: 0.9 },
            &transfer,
            &test,
            &attack_cfg(1200),
        );
        assert!(
            poisoned.agreement <= clean.agreement + 0.02,
            "poisoning should not help the attacker: {} vs {}",
            poisoned.agreement,
            clean.agreement
        );
    }

    #[test]
    fn bigger_budget_steals_better() {
        let (victim, _, test) = victim_and_data();
        let transfer = synth_digits(1500, 0.2, 779);
        let small = extraction_attack(&victim, Poisoner::None, &transfer, &test, &attack_cfg(100));
        let large = extraction_attack(&victim, Poisoner::None, &transfer, &test, &attack_cfg(1500));
        assert!(
            large.agreement > small.agreement,
            "budget {} → {} vs budget {} → {}",
            large.queries,
            large.agreement,
            small.queries,
            small.agreement
        );
    }

    #[test]
    fn report_names_defense() {
        let (victim, _, test) = victim_and_data();
        let transfer = synth_digits(200, 0.2, 780);
        let r = extraction_attack(
            &victim,
            Poisoner::Round { decimals: 1 },
            &transfer,
            &test,
            &attack_cfg(200),
        );
        assert_eq!(r.defense, "round1");
        assert_eq!(r.queries, 200);
    }
}
