//! Neural-network watermarking: static (white-box) and dynamic (black-box).
//!
//! §V: *"Static watermarking techniques embed the watermark into the
//! weights of the model during training … Dynamic watermarking techniques
//! … train the model to behave in a specific way for a carefully designed
//! set of trigger inputs."* And the evaluation axes: *"compared in terms
//! of the trade-off between fidelity, robustness and capacity."*
//!
//! * [`StaticWatermark`] — Uchida-style: a secret seeded projection matrix
//!   `X` maps the first Dense layer's weights to `bits` logits; a BCE
//!   regularizer pushes `σ(X·w)` toward the owner's bitstring during
//!   fine-tuning. Extraction needs white-box access; robustness is
//!   measured as bit-error-rate (BER) under pruning/noise/fine-tuning.
//! * [`DynamicWatermark`] — trigger-set backdooring: `k` secret inputs are
//!   trained to secret labels; ownership is demonstrated black-box by
//!   query accuracy on the trigger set.

use serde::{Deserialize, Serialize};
use tinymlops_nn::loss::cross_entropy;
use tinymlops_nn::{Dataset, Layer, Optimizer, Sequential, Sgd};
use tinymlops_tensor::{Tensor, TensorRng};

/// Report of a watermark evaluation (one row of the E11 table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatermarkReport {
    /// Watermark kind (`static` / `dynamic`).
    pub kind: String,
    /// Embedded capacity in bits (trigger count for dynamic).
    pub capacity_bits: usize,
    /// Task-accuracy delta caused by embedding (fidelity; ≥ 0 is no loss).
    pub fidelity_delta: f32,
    /// Bit-error rate (static) or trigger error rate (dynamic) right after
    /// embedding.
    pub ber_clean: f32,
    /// BER after the attacker's removal attempt.
    pub ber_after_attack: f32,
}

/// A static white-box watermark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticWatermark {
    /// Owner's secret seed (generates the projection matrix).
    pub key_seed: u64,
    /// The embedded bitstring.
    pub bits: Vec<bool>,
}

impl StaticWatermark {
    /// A random `capacity`-bit watermark under `key_seed`.
    #[must_use]
    pub fn random(capacity: usize, key_seed: u64) -> Self {
        // Domain-separate the bitstring from the projection matrix (both
        // derive from key_seed) so bits and projection stay uncorrelated.
        let mut rng = TensorRng::seed(key_seed ^ 0x57a7_1c3a_5c00_11ee);
        let bits = (0..capacity).map(|_| rng.next_f32() < 0.5).collect();
        StaticWatermark { key_seed, bits }
    }

    /// The watermarked weight vector: first Dense layer's weights, flat.
    fn carrier(model: &Sequential) -> &Tensor {
        for l in &model.layers {
            if let Layer::Dense(d) = l {
                return &d.w;
            }
        }
        panic!("model has no dense layer to watermark");
    }

    /// Secret projection matrix `X [bits × n]` from the key seed.
    fn projection(&self, n: usize) -> Tensor {
        let mut rng = TensorRng::seed(self.key_seed);
        rng.normal(&[self.bits.len(), n], 0.0, 1.0)
    }

    /// Embed into `model` by fine-tuning with task loss + λ·BCE(σ(Xw), b).
    /// Returns per-epoch BER so callers can verify convergence.
    pub fn embed(
        &self,
        model: &mut Sequential,
        data: &Dataset,
        lambda: f32,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Vec<f32> {
        let n = Self::carrier(model).len();
        let x_proj = self.projection(n);
        let mut opt = Sgd::new(lr);
        let mut history = Vec::with_capacity(epochs);
        for e in 0..epochs {
            for (bx, by) in data.batches(32, seed.wrapping_add(e as u64)) {
                model.zero_grad();
                let logits = model.forward_train(&bx);
                let (_, grad) = cross_entropy(&logits, &by);
                model.backward(&grad);
                // Watermark regularizer gradient onto the carrier weights:
                // ∂/∂w λ·BCE(σ(Xw), b) = λ·Xᵀ(σ(Xw) − b)
                let (sig, _) = self.project_bits(model, &x_proj);
                let residual: Vec<f32> = sig
                    .iter()
                    .zip(&self.bits)
                    .map(|(s, &b)| s - if b { 1.0 } else { 0.0 })
                    .collect();
                let carrier_grad = x_proj
                    .transpose()
                    .matmul(&Tensor::vector(&residual))
                    .expect("projection shapes");
                for l in &mut model.layers {
                    if let Layer::Dense(d) = l {
                        match &mut d.grad_w {
                            Some(g) => {
                                for (gv, cv) in g.data_mut().iter_mut().zip(carrier_grad.data()) {
                                    *gv += lambda * cv;
                                }
                            }
                            None => {
                                let mut g = carrier_grad.clone().scale(lambda);
                                g = g.reshape(d.w.shape()).expect("carrier matches layer");
                                d.grad_w = Some(g);
                            }
                        }
                        break; // only the first dense layer carries the mark
                    }
                }
                opt.step(model);
            }
            history.push(self.ber(model));
        }
        history
    }

    fn project_bits(&self, model: &Sequential, x_proj: &Tensor) -> (Vec<f32>, Vec<bool>) {
        let w = Self::carrier(model);
        let flat = Tensor::vector(w.data());
        let logits = x_proj.matmul(&flat).expect("projection × weights");
        let sig: Vec<f32> = logits
            .data()
            .iter()
            .map(|v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        let bits = sig.iter().map(|&s| s > 0.5).collect();
        (sig, bits)
    }

    /// Extract the bitstring (white-box) and return the bit-error rate
    /// against the owner's record.
    #[must_use]
    pub fn ber(&self, model: &Sequential) -> f32 {
        let n = Self::carrier(model).len();
        let x_proj = self.projection(n);
        let (_, extracted) = self.project_bits(model, &x_proj);
        let errors = extracted
            .iter()
            .zip(&self.bits)
            .filter(|(a, b)| a != b)
            .count();
        errors as f32 / self.bits.len() as f32
    }
}

/// A dynamic (black-box) trigger-set watermark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicWatermark {
    /// Secret seed generating the trigger inputs.
    pub key_seed: u64,
    /// Trigger inputs (kept by the owner; shown here for the simulation).
    pub triggers: Tensor,
    /// Assigned secret labels.
    pub labels: Vec<usize>,
}

impl DynamicWatermark {
    /// Generate `k` random trigger inputs in `[0,1]^dim` with random labels.
    #[must_use]
    pub fn generate(k: usize, dim: usize, num_classes: usize, key_seed: u64) -> Self {
        let mut rng = TensorRng::seed(key_seed);
        let triggers = rng.uniform(&[k, dim], 0.0, 1.0);
        let labels = (0..k).map(|_| rng.next_usize(num_classes)).collect();
        DynamicWatermark {
            key_seed,
            triggers,
            labels,
        }
    }

    /// Embed by fine-tuning on task batches with the trigger set
    /// *concatenated into every batch* — joint gradients hold both the task
    /// and the backdoor (alternating steps oscillate and converge poorly).
    ///
    /// `epochs` is a *minimum*, not an exact budget: embedding continues
    /// (up to 4×`epochs`) until the trigger set is fully memorized, since
    /// a watermark that doesn't verify is worthless. Callers timing embed
    /// cost should measure wall clock, not assume `epochs` passes.
    pub fn embed(&self, model: &mut Sequential, data: &Dataset, epochs: usize, lr: f32, seed: u64) {
        let mut opt = Sgd::new(lr);
        let dim = self.triggers.cols();
        // Train at least `epochs`; keep going (bounded) until the trigger
        // set is memorized — an unembedded watermark is worthless, and the
        // few extra mixed batches cost almost nothing in fidelity.
        let max_epochs = epochs.saturating_mul(4).max(1);
        for e in 0..max_epochs {
            if e >= epochs && self.trigger_error(model) == 0.0 {
                break;
            }
            for (bx, by) in data.batches(32, seed.wrapping_add(e as u64)) {
                let mut xs = bx.data().to_vec();
                xs.extend_from_slice(self.triggers.data());
                let rows = bx.rows() + self.triggers.rows();
                let x_cat = Tensor::from_vec(xs, &[rows, dim]);
                let mut y_cat = by.clone();
                y_cat.extend_from_slice(&self.labels);
                model.zero_grad();
                let logits = model.forward_train(&x_cat);
                let (_, grad) = cross_entropy(&logits, &y_cat);
                model.backward(&grad);
                opt.step(model);
            }
        }
    }

    /// Black-box ownership check: fraction of triggers misclassified
    /// (0 = perfect watermark response).
    #[must_use]
    pub fn trigger_error(&self, model: &Sequential) -> f32 {
        let pred = model.predict(&self.triggers);
        let wrong = pred
            .iter()
            .zip(&self.labels)
            .filter(|(p, l)| p != l)
            .count();
        wrong as f32 / self.labels.len() as f32
    }

    /// Ownership verdict at a threshold: real owners see near-zero trigger
    /// error, unrelated models sit near chance (1 − 1/k classes).
    #[must_use]
    pub fn verify(&self, model: &Sequential, max_error: f32) -> bool {
        self.trigger_error(model) <= max_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{evaluate, fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_quant::magnitude_prune;

    fn trained() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(1200, 0.08, 88);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(4);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 15,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    #[test]
    fn static_watermark_embeds_with_low_ber_and_fidelity() {
        let (mut model, train, test) = trained();
        let base_acc = evaluate(&model, &test);
        let wm = StaticWatermark::random(64, 1234);
        assert!(
            wm.ber(&model) > 0.2,
            "pre-embedding BER should be near chance"
        );
        let history = wm.embed(&mut model, &train, 0.05, 6, 0.01, 0);
        let final_ber = *history.last().unwrap();
        assert!(
            final_ber == 0.0,
            "embedding should drive BER to 0, got {final_ber}"
        );
        let acc = evaluate(&model, &test);
        assert!(acc > base_acc - 0.03, "fidelity: {base_acc} → {acc}");
    }

    #[test]
    fn static_watermark_survives_moderate_pruning() {
        let (mut model, train, _) = trained();
        let wm = StaticWatermark::random(32, 77);
        wm.embed(&mut model, &train, 0.05, 6, 0.01, 0);
        let mut attacked = model.clone();
        magnitude_prune(&mut attacked, 0.3);
        let ber = wm.ber(&attacked);
        assert!(ber < 0.15, "30% pruning should leave BER low, got {ber}");
    }

    #[test]
    fn static_watermark_degrades_under_heavy_attack() {
        let (mut model, train, _) = trained();
        let wm = StaticWatermark::random(32, 78);
        wm.embed(&mut model, &train, 0.05, 6, 0.01, 0);
        let mut attacked = model.clone();
        magnitude_prune(&mut attacked, 0.95);
        let heavy = wm.ber(&attacked);
        let mut light = model.clone();
        magnitude_prune(&mut light, 0.2);
        assert!(
            heavy >= wm.ber(&light),
            "robustness decays with attack strength"
        );
    }

    #[test]
    fn wrong_key_reads_noise() {
        let (mut model, train, _) = trained();
        let wm = StaticWatermark::random(64, 100);
        wm.embed(&mut model, &train, 0.05, 6, 0.01, 0);
        // Same bits, wrong projection seed.
        let imposter = StaticWatermark {
            key_seed: 999,
            bits: wm.bits.clone(),
        };
        let ber = imposter.ber(&model);
        assert!(ber > 0.25, "wrong key should read ~chance, got {ber}");
    }

    #[test]
    fn dynamic_watermark_verifies_owner_and_rejects_strangers() {
        let (mut model, train, test) = trained();
        let base_acc = evaluate(&model, &test);
        let wm = DynamicWatermark::generate(24, 64, 10, 555);
        wm.embed(&mut model, &train, 10, 0.05, 0);
        assert!(wm.verify(&model, 0.1), "owner model answers triggers");
        let acc = evaluate(&model, &test);
        assert!(acc > base_acc - 0.05, "fidelity {base_acc} → {acc}");
        // An unrelated model fails the trigger test.
        let stranger = mlp(&[64, 32, 10], &mut TensorRng::seed(9999));
        assert!(!wm.verify(&stranger, 0.1));
        assert!(wm.trigger_error(&stranger) > 0.5);
    }

    #[test]
    fn dynamic_watermark_survives_light_finetune() {
        let (mut model, train, _) = trained();
        let wm = DynamicWatermark::generate(24, 64, 10, 556);
        wm.embed(&mut model, &train, 10, 0.05, 0);
        // Attacker fine-tunes on their own (clean) data for one epoch.
        let mut opt = Adam::new(0.001);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 1,
                batch_size: 32,
                ..Default::default()
            },
        );
        let err = wm.trigger_error(&model);
        assert!(
            err < 0.4,
            "light fine-tune should not erase triggers, err {err}"
        );
    }

    #[test]
    fn capacity_tradeoff_more_bits_cost_more_to_embed() {
        // The capacity axis of the paper's trade-off: under a *fixed*
        // embedding budget (1 epoch), a larger payload converges no better
        // than a small one — capacity costs embedding effort.
        let (model, train, _) = trained();
        let ber_after_one_epoch = |bits: usize| {
            let mut m = model.clone();
            let wm = StaticWatermark::random(bits, 300 + bits as u64);
            let history = wm.embed(&mut m, &train, 0.05, 1, 0.01, 0);
            *history.last().unwrap()
        };
        let small = ber_after_one_epoch(16);
        let large = ber_after_one_epoch(1024);
        assert!(
            large >= small,
            "1024-bit payload should be at least as hard: {large} vs {small}"
        );
        // And with a generous budget even 512 bits embed cleanly.
        let mut m = model.clone();
        let wm = StaticWatermark::random(512, 4000);
        let history = wm.embed(&mut m, &train, 0.05, 8, 0.01, 0);
        assert!(
            *history.last().unwrap() < 0.02,
            "512 bits embeddable with budget, got {}",
            history.last().unwrap()
        );
    }
}
