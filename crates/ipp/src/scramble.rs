//! Keyed weight scrambling ("chaotic weights", Lin et al., the paper's ref 82).
//!
//! §V: *"Other approaches to protect the intellectual property of machine
//! learning models rely on homomorphic encryption, weight scrambling or
//! designing models that require a secret key to operate at their full
//! potential."* This is the middle one: the stored model's weights are
//! permuted (within each layer's rows) under a keyed pseudorandom
//! permutation. Holding the key, descrambling is free at load time;
//! without it the model is present in plaintext yet functionally useless —
//! a lighter-weight deterrent than full encryption (no keystream pass at
//! load), trading cryptographic secrecy for obfuscation with an exact
//! functional lock.

use crate::IppError;
use tinymlops_crypto::Drbg;
use tinymlops_nn::{Layer, Sequential};

/// Derive the keyed permutation of `n` elements for (key, layer, n).
fn keyed_permutation(key: &[u8; 32], layer_idx: usize, n: usize) -> Vec<usize> {
    let mut seed = Vec::with_capacity(40);
    seed.extend_from_slice(key);
    seed.extend_from_slice(&(layer_idx as u64).to_le_bytes());
    let mut rng = Drbg::new(&seed, b"weight-scramble");
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

fn apply_permutation(data: &mut [f32], perm: &[usize], inverse: bool) {
    let orig = data.to_vec();
    if inverse {
        for (i, &p) in perm.iter().enumerate() {
            data[p] = orig[i];
        }
    } else {
        for (i, &p) in perm.iter().enumerate() {
            data[i] = orig[p];
        }
    }
}

/// Scramble every dense layer's weight matrix in place under `key`.
/// The permutation is over the flat weight vector of each layer, so row
/// structure (and hence behaviour) is destroyed without the key.
pub fn scramble(model: &mut Sequential, key: &[u8; 32]) {
    for (i, l) in model.layers.iter_mut().enumerate() {
        if let Layer::Dense(d) = l {
            let perm = keyed_permutation(key, i, d.w.len());
            apply_permutation(d.w.data_mut(), &perm, false);
        }
    }
}

/// Invert [`scramble`] with the same key.
pub fn descramble(model: &mut Sequential, key: &[u8; 32]) {
    for (i, l) in model.layers.iter_mut().enumerate() {
        if let Layer::Dense(d) = l {
            let perm = keyed_permutation(key, i, d.w.len());
            apply_permutation(d.w.data_mut(), &perm, true);
        }
    }
}

/// Convenience: descramble a copy, verifying the unlock actually restores
/// behaviour on a probe batch (guards against key mix-ups in fleets).
pub fn unlock_checked(
    scrambled: &Sequential,
    key: &[u8; 32],
    probe: &tinymlops_tensor::Tensor,
    expected: &tinymlops_tensor::Tensor,
) -> Result<Sequential, IppError> {
    let mut m = scrambled.clone();
    descramble(&mut m, key);
    let got = m.forward(probe);
    let close = got
        .data()
        .iter()
        .zip(expected.data())
        .all(|(a, b)| (a - b).abs() < 1e-4);
    if close {
        Ok(m)
    } else {
        Err(IppError::DecryptionFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{evaluate, fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn trained() -> (Sequential, tinymlops_nn::Dataset) {
        let data = synth_digits(900, 0.08, 321);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(2);
        let mut model = mlp(&[64, 32, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 10,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, test)
    }

    #[test]
    fn scramble_destroys_descramble_restores() {
        let (model, test) = trained();
        let base_acc = evaluate(&model, &test);
        let key = [4u8; 32];
        let mut locked = model.clone();
        scramble(&mut locked, &key);
        let locked_acc = evaluate(&locked, &test);
        assert!(
            locked_acc < 0.3,
            "scrambled model must be useless, got {locked_acc} (base {base_acc})"
        );
        descramble(&mut locked, &key);
        assert_eq!(evaluate(&locked, &test), base_acc, "exact restoration");
        let x = test.x.slice_rows(0, 4);
        assert_eq!(locked.forward(&x), model.forward(&x));
    }

    #[test]
    fn wrong_key_does_not_unlock() {
        let (model, test) = trained();
        let mut locked = model.clone();
        scramble(&mut locked, &[4u8; 32]);
        descramble(&mut locked, &[5u8; 32]);
        let acc = evaluate(&locked, &test);
        assert!(acc < 0.3, "wrong key must not restore, got {acc}");
    }

    #[test]
    fn unlock_checked_catches_key_mixups() {
        let (model, test) = trained();
        let probe = test.x.slice_rows(0, 4);
        let expected = model.forward(&probe);
        let mut locked = model.clone();
        scramble(&mut locked, &[4u8; 32]);
        assert!(unlock_checked(&locked, &[4u8; 32], &probe, &expected).is_ok());
        assert!(matches!(
            unlock_checked(&locked, &[9u8; 32], &probe, &expected),
            Err(IppError::DecryptionFailed)
        ));
    }

    #[test]
    fn scrambling_is_norm_preserving() {
        // The deterrent leaks nothing about magnitudes: it is a pure
        // permutation, so weight statistics (norms, histograms) match.
        let (model, _) = trained();
        let mut locked = model.clone();
        scramble(&mut locked, &[4u8; 32]);
        let norm = |m: &Sequential| m.flat_params().iter().map(|v| v * v).sum::<f32>();
        assert!((norm(&model) - norm(&locked)).abs() < 1e-3);
        assert_ne!(model.flat_params(), locked.flat_params());
    }
}
