//! Per-feature anomaly scoring.
//!
//! §III-B: *"We can also store anomalous data points for analysis or
//! retraining the model."* The scorer learns per-feature means/variances
//! from in-distribution data and scores new points by normalized distance;
//! the platform keeps a bounded local buffer of the highest scorers.

use serde::{Deserialize, Serialize};
use tinymlops_tensor::stats::RunningStats;

/// A diagonal-covariance (per-feature z-score) anomaly scorer.
#[derive(Debug, Clone, Default)]
pub struct AnomalyScorer {
    features: Vec<RunningStats>,
}

impl AnomalyScorer {
    /// New scorer for `dim`-dimensional inputs.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        AnomalyScorer {
            features: (0..dim).map(|_| RunningStats::new()).collect(),
        }
    }

    /// Learn from an in-distribution example.
    pub fn fit_one(&mut self, x: &[f32]) {
        assert_eq!(x.len(), self.features.len(), "dimension mismatch");
        for (s, &v) in self.features.iter_mut().zip(x) {
            s.push(f64::from(v));
        }
    }

    /// Number of fitted examples.
    #[must_use]
    pub fn fitted(&self) -> u64 {
        self.features.first().map_or(0, RunningStats::count)
    }

    /// Anomaly score: root-mean-squared per-feature z-score. ~1 for
    /// in-distribution points, growing with distance.
    #[must_use]
    pub fn score(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.features.len(), "dimension mismatch");
        if self.fitted() < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (s, &v) in self.features.iter().zip(x) {
            let std = s.std_dev().max(1e-9);
            let z = (f64::from(v) - s.mean()) / std;
            sum += z * z;
        }
        (sum / self.features.len() as f64).sqrt()
    }

    /// Whether a point is anomalous at the given z-threshold (e.g. 3.0).
    #[must_use]
    pub fn is_anomalous(&self, x: &[f32], threshold: f64) -> bool {
        self.score(x) > threshold
    }
}

/// A bounded buffer retaining the `cap` highest-scoring anomalies locally
/// (privacy: raw data never leaves the device; §III-B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyBuffer {
    cap: usize,
    /// `(score, example)` pairs, ascending by score.
    items: Vec<(f64, Vec<f32>)>,
}

impl AnomalyBuffer {
    /// Buffer retaining at most `cap` examples.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        AnomalyBuffer {
            cap,
            items: Vec::new(),
        }
    }

    /// Offer an example; kept only if it beats the current minimum.
    pub fn offer(&mut self, score: f64, example: &[f32]) {
        if self.items.len() < self.cap {
            self.items.push((score, example.to_vec()));
            self.items
                .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            return;
        }
        if let Some(first) = self.items.first() {
            if score > first.0 {
                self.items[0] = (score, example.to_vec());
                self.items
                    .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            }
        }
    }

    /// Retained examples, ascending by score.
    #[must_use]
    pub fn items(&self) -> &[(f64, Vec<f32>)] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fit_normal(scorer: &mut AnomalyScorer, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            scorer.fit_one(&x);
        }
    }

    #[test]
    fn in_distribution_scores_low() {
        let mut s = AnomalyScorer::new(4);
        fit_normal(&mut s, 500, 1);
        let normal = [0.1f32, -0.2, 0.3, 0.0];
        let weird = [10.0f32, -8.0, 12.0, 9.0];
        assert!(s.score(&normal) < 1.5);
        assert!(s.score(&weird) > 5.0);
        assert!(!s.is_anomalous(&normal, 3.0));
        assert!(s.is_anomalous(&weird, 3.0));
    }

    #[test]
    fn unfitted_scorer_returns_zero() {
        let s = AnomalyScorer::new(3);
        assert_eq!(s.score(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let s = AnomalyScorer::new(2);
        let _ = s.score(&[1.0]);
    }

    #[test]
    fn buffer_keeps_top_scorers() {
        let mut b = AnomalyBuffer::new(3);
        for (score, v) in [
            (1.0, 1.0f32),
            (5.0, 5.0),
            (2.0, 2.0),
            (9.0, 9.0),
            (0.5, 0.5),
        ] {
            b.offer(score, &[v]);
        }
        let kept: Vec<f64> = b.items().iter().map(|(s, _)| *s).collect();
        assert_eq!(kept, vec![2.0, 5.0, 9.0]);
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut b = AnomalyBuffer::new(2);
        for i in 0..100 {
            b.offer(f64::from(i), &[i as f32]);
        }
        assert_eq!(b.items().len(), 2);
        assert_eq!(b.items()[1].0, 99.0);
    }
}
