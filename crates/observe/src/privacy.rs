//! Differentially private aggregation of telemetry.
//!
//! §III-B: *"We could record some basic statistics on the data locally and
//! share these with the cloud in an anonymized way."* The Laplace mechanism
//! gives that anonymization a precise meaning: ε-differential privacy for
//! count and bounded-mean queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sample of Laplace(0, scale) noise.
#[must_use]
pub fn laplace_noise(rng: &mut StdRng, scale: f64) -> f64 {
    // Inverse-CDF sampling: u ∈ (−0.5, 0.5), x = −b·sgn(u)·ln(1−2|u|).
    let u: f64 = rng.gen_range(-0.499_999_9..0.499_999_9);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// An ε-DP aggregator for counts and bounded means.
#[derive(Debug)]
pub struct PrivateAggregator {
    epsilon: f64,
    rng: StdRng,
}

impl PrivateAggregator {
    /// Aggregator with privacy budget `epsilon` per released statistic.
    #[must_use]
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        PrivateAggregator {
            epsilon,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// ε-DP count release (sensitivity 1).
    pub fn private_count(&mut self, true_count: u64) -> f64 {
        true_count as f64 + laplace_noise(&mut self.rng, 1.0 / self.epsilon)
    }

    /// ε-DP mean of values clamped to `[lo, hi]` (sensitivity (hi−lo)/n).
    pub fn private_mean(&mut self, values: &[f64], lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "bounds must be ordered");
        if values.is_empty() {
            return 0.0;
        }
        let n = values.len() as f64;
        let mean = values.iter().map(|v| v.clamp(lo, hi)).sum::<f64>() / n;
        let sensitivity = (hi - lo) / n;
        mean + laplace_noise(&mut self.rng, sensitivity / self.epsilon)
    }

    /// ε-DP histogram release (parallel composition: each bin sees each
    /// record at most once, so the whole histogram costs one ε).
    pub fn private_histogram(&mut self, counts: &[u64]) -> Vec<f64> {
        counts
            .iter()
            .map(|&c| (c as f64 + laplace_noise(&mut self.rng, 1.0 / self.epsilon)).max(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_noise_is_centered() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20000;
        let mean: f64 = (0..n).map(|_| laplace_noise(&mut rng, 1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn laplace_scale_controls_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let spread = |scale: f64, rng: &mut StdRng| {
            (0..5000)
                .map(|_| laplace_noise(rng, scale).abs())
                .sum::<f64>()
                / 5000.0
        };
        let narrow = spread(0.5, &mut rng);
        let wide = spread(5.0, &mut rng);
        assert!(wide > narrow * 5.0, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn private_count_is_close_at_large_epsilon() {
        let mut agg = PrivateAggregator::new(10.0, 2);
        let released = agg.private_count(1000);
        assert!((released - 1000.0).abs() < 5.0, "released {released}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let err_at = |eps: f64| {
            let mut agg = PrivateAggregator::new(eps, 3);
            (0..2000)
                .map(|_| (agg.private_count(100) - 100.0).abs())
                .sum::<f64>()
                / 2000.0
        };
        assert!(err_at(0.1) > 3.0 * err_at(1.0));
    }

    #[test]
    fn private_mean_clamps_outliers() {
        // A malicious value can't blow up the released mean beyond bounds
        // plus noise: clamp first.
        let mut agg = PrivateAggregator::new(100.0, 4);
        let vals = vec![0.5, 0.6, 1e9];
        let m = agg.private_mean(&vals, 0.0, 1.0);
        assert!(m < 1.5, "released {m}");
    }

    #[test]
    fn private_histogram_is_nonnegative() {
        let mut agg = PrivateAggregator::new(0.5, 5);
        let released = agg.private_histogram(&[0, 1, 100, 3]);
        assert_eq!(released.len(), 4);
        assert!(released.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn empty_mean_is_zero() {
        let mut agg = PrivateAggregator::new(1.0, 6);
        assert_eq!(agg.private_mean(&[], 0.0, 1.0), 0.0);
    }
}
