//! Log-bucketed (HDR-style) latency histograms with exact merge.
//!
//! §III-B wants true tail percentiles over fleets of devices without
//! shipping raw samples. A [`LogHistogram`] has a *fixed* bucket layout
//! shared by every instance: values below [`SUB_BUCKETS`] get unit-width
//! buckets, and every octave `[2^e, 2^(e+1))` above that is split into
//! [`SUB_BUCKETS`] equal sub-buckets. Because the layout is global,
//! merging two histograms is a bucket-wise add — associative, commutative,
//! and *exact* (unlike pooled-variance timer merges) — so fleet
//! p50/p95/p99/p999 are computable from per-node histograms with bounded
//! memory and bounded error (one bucket width, ~3% relative).

use serde::{Deserialize, Serialize};

/// log2 of the sub-bucket count per octave (resolution knob).
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave: relative quantile error is at most `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover the whole `u64` range.
const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * (SUB_BUCKETS as usize);

/// Bucket index for a value (total order preserving).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v in [2^exp, 2^(exp+1))
    let shift = exp - SUB_BITS;
    let sub = (v >> shift) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
    ((exp - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
}

/// Lower bound of the value range covered by bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    let idx = index as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let block = idx / SUB_BUCKETS; // 1 + (exp - SUB_BITS)
    let sub = idx % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (block - 1)
}

/// Width (in value units) of the bucket containing `v`.
#[must_use]
pub fn bucket_width_at(v: u64) -> u64 {
    if v < SUB_BUCKETS {
        return 1;
    }
    let exp = 63 - v.leading_zeros();
    1u64 << (exp - SUB_BITS)
}

/// Fixed-layout log-bucketed histogram over `u64` values (microseconds,
/// bytes — caller's units). Bounded memory (~15 KiB), O(1) record,
/// bucket-wise exact merge.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.sum == other.sum && self.counts == other.counts
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .field("mean", &self.mean())
            .field("p99", &self.quantile(99.0))
            .finish()
    }
}

impl LogHistogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.sum += u128::from(v) * u128::from(n);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of all recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Bucket-wise exact merge: afterwards `self` reports as if it had
    /// recorded both streams.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Nearest-rank quantile (same rank rule as the exact sorted-vector
    /// path in `serve::stats`): returns the *lower bound* of the bucket
    /// holding the ranked sample, so the true sample lies within
    /// [`LogHistogram::quantile_width`] of the returned value.
    #[must_use]
    pub fn quantile(&self, pct: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i);
            }
        }
        bucket_lower(NUM_BUCKETS - 1)
    }

    /// Width of the bucket that answers `quantile(pct)` — the error bound
    /// on that quantile estimate.
    #[must_use]
    pub fn quantile_width(&self, pct: f64) -> u64 {
        bucket_width_at(self.quantile(pct))
    }

    /// Sparse snapshot for wire transfer (only non-empty buckets).
    #[must_use]
    pub fn to_summary(&self) -> HistSummary {
        HistSummary {
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| HistBucket {
                    index: i as u32,
                    count: c,
                })
                .collect(),
        }
    }

    /// Rebuild a dense histogram from a sparse wire snapshot.
    #[must_use]
    pub fn from_summary(summary: &HistSummary) -> Self {
        let mut h = LogHistogram::new();
        h.absorb_summary(summary);
        h
    }

    /// Merge a sparse wire snapshot into this histogram.
    pub fn absorb_summary(&mut self, summary: &HistSummary) {
        for b in &summary.buckets {
            let i = (b.index as usize).min(NUM_BUCKETS - 1);
            self.counts[i] += b.count;
            self.total += b.count;
            self.sum += u128::from(bucket_lower(i)) * u128::from(b.count);
        }
    }
}

/// Sparse, serializable histogram snapshot: only the non-empty buckets of
/// the fixed global layout. Merging summaries (via [`HistSummary::merge`])
/// is exact because indices refer to the same layout everywhere.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct HistSummary {
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<HistBucket>,
}

/// One non-empty bucket of a [`HistSummary`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct HistBucket {
    /// Index into the fixed global bucket layout.
    pub index: u32,
    /// Observations in this bucket.
    pub count: u64,
}

impl HistSummary {
    /// Total observations across all buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Bucket-wise add of another summary (exact fleet aggregation).
    pub fn merge(&mut self, other: &HistSummary) {
        let mut dense = LogHistogram::from_summary(self);
        dense.absorb_summary(other);
        *self = dense.to_summary();
    }

    /// Nearest-rank quantile over the summarized buckets.
    #[must_use]
    pub fn quantile(&self, pct: f64) -> u64 {
        LogHistogram::from_summary(self).quantile(pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index must be monotone at {v}");
            assert!(bucket_lower(i) <= v);
            assert!(v < bucket_lower(i) + bucket_width_at(v));
            last = i;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
    }

    #[test]
    fn quantile_matches_exact_within_one_bucket() {
        let mut h = LogHistogram::new();
        let mut exact: Vec<u64> = (0..1000u64).map(|i| (i * 37) % 90_000 + 100).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for pct in [50.0, 95.0, 99.0, 99.9] {
            let rank = ((pct / 100.0) * exact.len() as f64).ceil() as usize;
            let want = exact[rank.clamp(1, exact.len()) - 1];
            let got = h.quantile(pct);
            assert!(
                got <= want && want < got + bucket_width_at(got),
                "p{pct}: hist {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [1u64, 5, 900, 70_000, 1 << 40] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 2, 65_535, 65_536] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn summary_round_trips() {
        let mut h = LogHistogram::new();
        for v in [3u64, 3, 47, 1_000_000] {
            h.record(v);
        }
        let summary = h.to_summary();
        let back = LogHistogram::from_summary(&summary);
        assert_eq!(back.count(), h.count());
        assert_eq!(back.quantile(99.0), h.quantile(99.0));
        assert_eq!(summary.count(), 4);
        let mut fleet = summary.clone();
        fleet.merge(&summary);
        assert_eq!(fleet.count(), 8);
        assert_eq!(fleet.quantile(50.0), summary.quantile(50.0));
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
        assert!(h.to_summary().buckets.is_empty());
    }
}
