//! Windowed time-series and alarms: the controller-facing signal plane.
//!
//! End-of-run aggregates can't drive a control loop — a controller needs
//! to see queue depth, shed rate, batch occupancy, cache hit rate and
//! latency quantiles *as they evolve*. [`WindowTracker`] buckets a node's
//! event stream into fixed virtual-time windows and seals one
//! [`WindowSample`] per non-empty window. [`DriftBank`] runs one
//! [`KsDetector`] per tenant over the completion-latency stream and turns
//! drift verdicts into [`Alarm`]s. Both consume only logical timestamps
//! and values handed in by the serving engine, so they are deterministic
//! under replay.

use crate::drift::{DriftDetector, DriftStatus, KsDetector};
use crate::hist::LogHistogram;

/// One sealed window of a node's serving activity.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Window start, logical microseconds (aligned to the window length).
    pub start_us: u64,
    /// Requests that arrived in the window (admitted or shed).
    pub arrivals: u64,
    /// Requests completed in the window.
    pub served: u64,
    /// Requests shed in the window.
    pub shed: u64,
    /// Batches dispatched in the window.
    pub batches: u64,
    /// Requests carried by those batches.
    pub batch_items: u64,
    /// Maximum batcher queue depth observed in the window.
    pub queue_depth_max: u64,
    /// Model-cache hits observed at dispatch.
    pub cache_hits: u64,
    /// Model-cache misses observed at dispatch.
    pub cache_misses: u64,
    /// Median completion latency in the window, microseconds.
    pub p50_us: u64,
    /// 95th-percentile completion latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: u64,
}

impl WindowSample {
    fn empty(start_us: u64) -> Self {
        WindowSample {
            start_us,
            arrivals: 0,
            served: 0,
            shed: 0,
            batches: 0,
            batch_items: 0,
            queue_depth_max: 0,
            cache_hits: 0,
            cache_misses: 0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
        }
    }

    fn is_idle(&self) -> bool {
        self.arrivals == 0 && self.served == 0 && self.shed == 0 && self.batches == 0
    }

    /// Fraction of this window's arrivals that were shed.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.shed as f64 / self.arrivals as f64
    }

    /// Mean requests per dispatched batch.
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_items as f64 / self.batches as f64
    }

    /// Model-cache hit rate at dispatch within the window.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// Buckets an event stream (nondecreasing logical timestamps) into
/// fixed-length windows, sealing a [`WindowSample`] per non-empty window.
#[derive(Debug, Clone)]
pub struct WindowTracker {
    window_us: u64,
    cur: WindowSample,
    latencies: LogHistogram,
    sealed: Vec<WindowSample>,
    touched: bool,
}

impl WindowTracker {
    /// New tracker with the given window length (min 1 µs).
    #[must_use]
    pub fn new(window_us: u64) -> Self {
        let window_us = window_us.max(1);
        WindowTracker {
            window_us,
            cur: WindowSample::empty(0),
            latencies: LogHistogram::new(),
            sealed: Vec::new(),
            touched: false,
        }
    }

    /// Configured window length.
    #[must_use]
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Window start containing `now_us`.
    #[must_use]
    pub fn window_start(&self, now_us: u64) -> u64 {
        now_us - now_us % self.window_us
    }

    /// Start of the window currently accumulating (valid after any
    /// `on_*` call; callers stamping per-window data can reuse this
    /// instead of re-deriving it from a timestamp).
    #[must_use]
    pub fn current_start(&self) -> u64 {
        self.cur.start_us
    }

    /// Seal windows left behind by time advancing to `now_us`.
    fn roll(&mut self, now_us: u64) {
        // Fast path: still inside the current window. This runs on every
        // observer hook, so it must not pay the division below.
        if self.touched && now_us.wrapping_sub(self.cur.start_us) < self.window_us {
            return;
        }
        let start = self.window_start(now_us);
        if !self.touched {
            self.touched = true;
            self.cur.start_us = start;
            return;
        }
        if start <= self.cur.start_us {
            return;
        }
        self.seal();
        self.cur = WindowSample::empty(start);
    }

    fn seal(&mut self) {
        if self.cur.is_idle() {
            return;
        }
        if !self.latencies.is_empty() {
            self.cur.p50_us = self.latencies.quantile(50.0);
            self.cur.p95_us = self.latencies.quantile(95.0);
            self.cur.p99_us = self.latencies.quantile(99.0);
        }
        self.latencies = LogHistogram::new();
        self.sealed.push(self.cur.clone());
    }

    /// A request arrived (before the admission verdict).
    pub fn on_arrival(&mut self, now_us: u64) {
        self.roll(now_us);
        self.cur.arrivals += 1;
    }

    /// A request completed with the given end-to-end latency.
    pub fn on_served(&mut self, now_us: u64, latency_us: u64) {
        self.roll(now_us);
        self.cur.served += 1;
        self.latencies.record(latency_us);
    }

    /// A request was shed (at admission or later).
    pub fn on_shed(&mut self, now_us: u64) {
        self.roll(now_us);
        self.cur.shed += 1;
    }

    /// A batch of `items` requests was dispatched.
    pub fn on_batch(&mut self, now_us: u64, items: u64) {
        self.roll(now_us);
        self.cur.batches += 1;
        self.cur.batch_items += items;
    }

    /// Sample the batcher queue depth.
    pub fn on_queue_depth(&mut self, now_us: u64, depth: u64) {
        self.roll(now_us);
        self.cur.queue_depth_max = self.cur.queue_depth_max.max(depth);
    }

    /// A model-cache lookup at dispatch resolved as hit or miss.
    pub fn on_cache(&mut self, now_us: u64, hit: bool) {
        self.roll(now_us);
        if hit {
            self.cur.cache_hits += 1;
        } else {
            self.cur.cache_misses += 1;
        }
    }

    /// Seal the trailing partial window and return the full series.
    #[must_use]
    pub fn finish(mut self) -> Vec<WindowSample> {
        self.seal();
        self.sealed
    }
}

/// What an alarm is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmKind {
    /// A tenant's completion-latency distribution drifted from its own
    /// early-run reference (KS test).
    LatencyDrift,
    /// A sealed window's shape (served/shed/p99) is anomalous relative to
    /// the node's fitted window history.
    WindowAnomaly,
}

impl AlarmKind {
    /// Stable label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlarmKind::LatencyDrift => "latency-drift",
            AlarmKind::WindowAnomaly => "window-anomaly",
        }
    }
}

/// One raised alarm: which tenant, which window, what kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Affected tenant (0 for node-level alarms).
    pub tenant: u32,
    /// Start of the window the verdict landed in, logical microseconds.
    pub window_start_us: u64,
    /// What was detected.
    pub kind: AlarmKind,
    /// Detector that raised it (e.g. `ks`).
    pub detector: &'static str,
}

/// One [`KsDetector`] per tenant over a scalar stream (completion latency
/// in ms), collecting [`Alarm`]s on drift verdicts. Each tenant's first
/// `window` observations freeze its personal reference, so the bank flags
/// *change relative to that tenant's own early behaviour*.
#[derive(Debug, Clone)]
pub struct DriftBank {
    window: usize,
    alpha: f64,
    // Split key/detector storage: the bank is probed once per completed
    // request, and at serving tenant counts (tens) a linear scan over a
    // contiguous `u32` key array — one or two cache lines — beats both
    // tree lookup and scanning tuples padded out by inline detectors.
    tenants: Vec<u32>,
    detectors: Vec<(KsDetector, u64)>,
    alarms: Vec<Alarm>,
}

impl DriftBank {
    /// `window` per-tenant KS window (min 8), `alpha` significance.
    #[must_use]
    pub fn new(window: usize, alpha: f64) -> Self {
        DriftBank {
            window: window.max(8),
            alpha,
            tenants: Vec::new(),
            detectors: Vec::new(),
            alarms: Vec::new(),
        }
    }

    /// Feed one observation for `tenant` stamped `window_start_us`. The
    /// detector's status is sticky between judgements, so an alarm is
    /// appended only when a *judgement* (one per non-overlapping KS
    /// window) lands on drift — one alarm per drifted window, not per
    /// observation.
    pub fn observe(&mut self, tenant: u32, window_start_us: u64, x: f64) {
        let w = self.window as u64;
        let idx = match self.tenants.iter().position(|t| *t == tenant) {
            Some(i) => i,
            None => {
                self.tenants.push(tenant);
                self.detectors
                    .push((KsDetector::new(self.window, self.alpha), 0));
                self.detectors.len() - 1
            }
        };
        let (det, seen) = &mut self.detectors[idx];
        *seen += 1;
        let judged = *seen >= 2 * w && *seen % w == 0;
        if det.observe(x) == DriftStatus::Drift && judged {
            self.alarms.push(Alarm {
                tenant,
                window_start_us,
                kind: AlarmKind::LatencyDrift,
                detector: det.name(),
            });
        }
    }

    /// Tenants currently tracked.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.detectors.len()
    }

    /// Alarms raised so far (consumes the bank).
    #[must_use]
    pub fn finish(self) -> Vec<Alarm> {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_seal_on_time_boundaries() {
        let mut w = WindowTracker::new(1000);
        w.on_arrival(100);
        w.on_served(400, 300);
        w.on_arrival(1100); // crosses into the second window
        w.on_shed(1200);
        let series = w.finish();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].start_us, 0);
        assert_eq!(series[0].arrivals, 1);
        assert_eq!(series[0].served, 1);
        assert_eq!(series[0].p50_us, 300 - 300 % 8); // bucket lower bound
        assert_eq!(series[1].start_us, 1000);
        assert_eq!(series[1].shed, 1);
    }

    #[test]
    fn idle_windows_are_skipped() {
        let mut w = WindowTracker::new(100);
        w.on_served(50, 10);
        w.on_served(100_050, 10); // ~1000 idle windows between
        let series = w.finish();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].start_us, 100_000);
    }

    #[test]
    fn derived_rates() {
        let mut w = WindowTracker::new(1000);
        for _ in 0..4 {
            w.on_arrival(10);
        }
        w.on_shed(20);
        w.on_batch(30, 3);
        w.on_cache(40, true);
        w.on_cache(41, false);
        w.on_queue_depth(50, 7);
        w.on_queue_depth(60, 2);
        let s = &w.finish()[0];
        assert!((s.shed_rate() - 0.25).abs() < 1e-12);
        assert!((s.batch_occupancy() - 3.0).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.queue_depth_max, 7);
    }

    #[test]
    fn drift_bank_flags_shifted_tenant_only() {
        let mut bank = DriftBank::new(32, 0.01);
        // Tenant 1: stable (period-2 stream, identical in every window).
        // Tenant 2: latency triples halfway through.
        for i in 0..256u32 {
            bank.observe(1, u64::from(i) * 100, 10.0 + f64::from(i % 2));
            let base = 10.0 + f64::from(i % 7);
            let t2 = if i < 128 { base } else { base * 3.0 };
            bank.observe(2, u64::from(i) * 100, t2);
        }
        assert_eq!(bank.tenants(), 2);
        let alarms = bank.finish();
        assert!(!alarms.is_empty(), "shift must raise at least one alarm");
        assert!(alarms.iter().all(|a| a.tenant == 2), "{alarms:?}");
        assert!(alarms
            .iter()
            .all(|a| a.kind == AlarmKind::LatencyDrift && a.detector == "ks"));
    }

    #[test]
    fn alarm_kinds_have_distinct_names() {
        assert_ne!(
            AlarmKind::LatencyDrift.name(),
            AlarmKind::WindowAnomaly.name()
        );
    }
}
