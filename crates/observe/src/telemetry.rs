//! On-device telemetry with bounded memory and deferred upload.
//!
//! §III-B: *"we are also interested in monitoring the number of requests a
//! user has made and the execution time of the model … record the actual
//! execution time, memory and energy consumption on the end-user's device.
//! … We might decide to store these statistics locally and transmit them to
//! the cloud when the device is connected to WiFi."*

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tinymlops_tensor::stats::RunningStats;

/// A bounded-memory telemetry sink: counters and streaming statistics.
/// Thread-safe; inference threads record while an uploader drains.
#[derive(Default)]
pub struct Telemetry {
    inner: Mutex<TelemetryInner>,
}

#[derive(Default)]
struct TelemetryInner {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, RunningStats>,
}

/// A compact, serializable snapshot of telemetry state.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TelemetryReport {
    /// Monotonic counters (e.g. `queries`, `errors`).
    pub counters: BTreeMap<String, u64>,
    /// Timer summaries: `(count, mean, std, min, max)` per metric.
    pub timers: BTreeMap<String, TimerSummary>,
}

/// Five-number summary of a timer/value series.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TimerSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Telemetry {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Increment a named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `n` to a named counter.
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record a timing/measurement sample (ms, mJ, bytes — caller's units).
    pub fn record(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner
            .timers
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// Fold an already-summarized timer series into this sink, as if the
    /// underlying samples had been [`Telemetry::record`]ed here — exact
    /// for count/mean/min/max, pooled-variance accurate for std. This is
    /// the fleet-aggregation entry point: a serving fabric's per-node
    /// sinks summarize locally, and the platform sink absorbs the merged
    /// summaries instead of dropping them at the fabric report.
    pub fn record_summary(&self, name: &str, summary: &TimerSummary) {
        if summary.count == 0 {
            return;
        }
        let incoming = RunningStats::from_summary(
            summary.count,
            summary.mean,
            summary.std,
            summary.min,
            summary.max,
        );
        let mut inner = self.inner.lock();
        inner
            .timers
            .entry(name.to_string())
            .or_default()
            .merge(&incoming);
    }

    /// Fold a whole [`TelemetryReport`] into this sink: counters add,
    /// timer summaries merge via [`Telemetry::record_summary`]. Used by
    /// `Platform` to land a fabric run's merged fleet telemetry —
    /// counters *and* timers — in the platform-wide sink.
    pub fn absorb_report(&self, report: &TelemetryReport) {
        for (name, value) in &report.counters {
            self.add(name, *value);
        }
        for (name, summary) in &report.timers {
            self.record_summary(name, summary);
        }
    }

    /// Current value of a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot the current state without clearing it.
    #[must_use]
    pub fn snapshot(&self) -> TelemetryReport {
        let inner = self.inner.lock();
        TelemetryReport {
            counters: inner.counters.clone(),
            timers: inner
                .timers
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        TimerSummary {
                            count: s.count(),
                            mean: s.mean(),
                            std: s.std_dev(),
                            min: s.min(),
                            max: s.max(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Snapshot and reset — the "flush" an uploader calls.
    #[must_use]
    pub fn drain(&self) -> TelemetryReport {
        let report = self.snapshot();
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.timers.clear();
        report
    }
}

impl TelemetryReport {
    /// An empty report (merge identity).
    #[must_use]
    pub fn empty() -> Self {
        TelemetryReport {
            counters: BTreeMap::new(),
            timers: BTreeMap::new(),
        }
    }

    /// Fold many per-node reports into one fleet-level report — the
    /// server-side aggregation path a multi-node serving fabric uses to
    /// present one pane of glass over N nodes' counters and timers.
    #[must_use]
    pub fn merged(reports: impl IntoIterator<Item = TelemetryReport>) -> Self {
        let mut out = TelemetryReport::empty();
        for report in reports {
            out.merge(&report);
        }
        out
    }

    /// Approximate wire size in bytes (summaries only — the point of
    /// on-device aggregation is that this is *constant* in query count).
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        // counter: key + 8 bytes; timer: key + 5 × 8 bytes.
        self.counters.keys().map(|k| k.len() + 8).sum::<usize>()
            + self.timers.keys().map(|k| k.len() + 40).sum::<usize>()
    }

    /// Merge another report into this one (server-side aggregation).
    pub fn merge(&mut self, other: &TelemetryReport) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &other.timers {
            match self.timers.get_mut(k) {
                None => {
                    self.timers.insert(k.clone(), t.clone());
                }
                Some(mine) => {
                    // Weighted merge of means; std merged approximately via
                    // pooled variance (exact requires raw moments).
                    let n1 = mine.count as f64;
                    let n2 = t.count as f64;
                    if n1 + n2 > 0.0 {
                        let mean = (mine.mean * n1 + t.mean * n2) / (n1 + n2);
                        let var = (n1 * (mine.std.powi(2) + (mine.mean - mean).powi(2))
                            + n2 * (t.std.powi(2) + (t.mean - mean).powi(2)))
                            / (n1 + n2);
                        mine.mean = mean;
                        mine.std = var.sqrt();
                    }
                    mine.count += t.count;
                    mine.min = mine.min.min(t.min);
                    mine.max = mine.max.max(t.max);
                }
            }
        }
    }
}

/// A store-and-forward queue that holds reports until the link policy
/// allows bulk upload (§III-B's "transmit … when connected to WiFi").
#[derive(Debug, Default)]
pub struct UploadQueue {
    pending: Vec<TelemetryReport>,
    /// Total reports ever uploaded.
    pub uploaded: usize,
    /// Total bytes ever uploaded.
    pub uploaded_bytes: usize,
}

impl UploadQueue {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        UploadQueue::default()
    }

    /// Enqueue a report for later upload.
    pub fn push(&mut self, report: TelemetryReport) {
        self.pending.push(report);
    }

    /// Number of reports waiting.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Attempt an upload: if `bulk_ok` (e.g. unmetered WiFi) drain all
    /// pending reports and return them; otherwise keep buffering.
    pub fn try_upload(&mut self, bulk_ok: bool) -> Vec<TelemetryReport> {
        if !bulk_ok {
            return Vec::new();
        }
        let out = std::mem::take(&mut self.pending);
        self.uploaded += out.len();
        self.uploaded_bytes += out.iter().map(TelemetryReport::wire_bytes).sum::<usize>();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.incr("queries");
        t.add("queries", 4);
        assert_eq!(t.counter("queries"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn timers_summarize() {
        let t = Telemetry::new();
        for v in [10.0, 20.0, 30.0] {
            t.record("latency_ms", v);
        }
        let snap = t.snapshot();
        let s = &snap.timers["latency_ms"];
        assert_eq!(s.count, 3);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn drain_resets() {
        let t = Telemetry::new();
        t.incr("q");
        let first = t.drain();
        assert_eq!(first.counters["q"], 1);
        assert_eq!(t.counter("q"), 0);
        assert!(t.drain().counters.is_empty());
    }

    #[test]
    fn wire_bytes_constant_in_query_count() {
        let t = Telemetry::new();
        for _ in 0..10 {
            t.record("lat", 1.0);
        }
        let small = t.snapshot().wire_bytes();
        for _ in 0..10_000 {
            t.record("lat", 1.0);
        }
        let big = t.snapshot().wire_bytes();
        assert_eq!(small, big, "aggregation keeps reports constant-size");
    }

    #[test]
    fn record_summary_matches_recording_the_samples() {
        // One sink sees raw samples; the other absorbs per-node summaries
        // (the `serve_traffic_sharded` / live-mode path). They must agree.
        let raw = Telemetry::new();
        let folded = Telemetry::new();
        folded.record("serve.latency_ms", 5.0); // pre-existing local data
        raw.record("serve.latency_ms", 5.0);
        let node_series = [vec![1.0, 2.0, 3.0], vec![10.0, 20.0]];
        for series in &node_series {
            let node = Telemetry::new();
            for &v in series {
                node.record("serve.latency_ms", v);
                raw.record("serve.latency_ms", v);
            }
            let report = node.drain();
            folded.record_summary("serve.latency_ms", &report.timers["serve.latency_ms"]);
        }
        let want = &raw.snapshot().timers["serve.latency_ms"];
        let got = &folded.snapshot().timers["serve.latency_ms"];
        assert_eq!(got.count, want.count);
        assert!((got.mean - want.mean).abs() < 1e-9);
        assert!((got.std - want.std).abs() < 1e-6);
        assert_eq!(got.min, want.min);
        assert_eq!(got.max, want.max);
        // Zero-count summaries are no-ops, not NaN factories.
        folded.record_summary(
            "serve.latency_ms",
            &TimerSummary {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            },
        );
        assert_eq!(
            folded.snapshot().timers["serve.latency_ms"].count,
            want.count
        );
    }

    #[test]
    fn absorb_report_lands_counters_and_timers() {
        let node = Telemetry::new();
        node.add("serve.served", 7);
        node.record("serve.latency_ms", 4.0);
        node.record("serve.latency_ms", 6.0);
        let report = node.drain();
        let platform = Telemetry::new();
        platform.add("serve.served", 1);
        platform.absorb_report(&report);
        assert_eq!(platform.counter("serve.served"), 8);
        let snap = platform.snapshot();
        let t = &snap.timers["serve.latency_ms"];
        assert_eq!(t.count, 2);
        assert!((t.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_pools_statistics() {
        let t1 = Telemetry::new();
        let t2 = Telemetry::new();
        for v in [1.0, 2.0, 3.0] {
            t1.record("x", v);
        }
        for v in [4.0, 5.0] {
            t2.record("x", v);
        }
        t1.incr("n");
        t2.add("n", 2);
        let mut a = t1.snapshot();
        a.merge(&t2.snapshot());
        assert_eq!(a.counters["n"], 3);
        let s = &a.timers["x"];
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn merged_folds_many_node_reports() {
        let reports: Vec<TelemetryReport> = (0..3)
            .map(|i| {
                let t = Telemetry::new();
                t.add("served", 10 + i);
                t.record("latency_ms", i as f64);
                t.drain()
            })
            .collect();
        let fleet = TelemetryReport::merged(reports);
        assert_eq!(fleet.counters["served"], 33);
        assert_eq!(fleet.timers["latency_ms"].count, 3);
        assert_eq!(TelemetryReport::merged([]).counters.len(), 0);
    }

    #[test]
    fn upload_queue_defers_until_wifi() {
        let t = Telemetry::new();
        t.incr("q");
        let mut q = UploadQueue::new();
        q.push(t.drain());
        assert!(q.try_upload(false).is_empty(), "metered link: hold");
        assert_eq!(q.pending(), 1);
        let sent = q.try_upload(true);
        assert_eq!(sent.len(), 1);
        assert_eq!(q.pending(), 0);
        assert!(q.uploaded_bytes > 0);
    }

    #[test]
    fn telemetry_is_shareable_across_threads() {
        use std::sync::Arc;
        let t = Arc::new(Telemetry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.incr("q");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.counter("q"), 4000);
    }
}
