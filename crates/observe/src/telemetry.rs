//! On-device telemetry with bounded memory and deferred upload.
//!
//! §III-B: *"we are also interested in monitoring the number of requests a
//! user has made and the execution time of the model … record the actual
//! execution time, memory and energy consumption on the end-user's device.
//! … We might decide to store these statistics locally and transmit them to
//! the cloud when the device is connected to WiFi."*
//!
//! Two recording paths share one sink:
//!
//! * **By name** (`incr`/`record`/`record_hist`): convenient, but every
//!   call walks a `BTreeMap<String, _>` and a miss allocates the key.
//! * **By handle** (`counter_id` → `incr_id`, …): the serve hot path
//!   registers its fixed metric set once, then every event is one mutex
//!   lock plus a `Vec` index — no allocation, no tree walk. Handles stay
//!   valid across [`Telemetry::drain`] (values reset, registrations
//!   persist).
//!
//! Reports fold both paths into the same named maps, so the wire format
//! does not depend on which path recorded a metric.

use crate::hist::{HistSummary, LogHistogram};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tinymlops_tensor::stats::RunningStats;

/// A bounded-memory telemetry sink: counters, streaming statistics, and
/// log-bucketed histograms. Thread-safe; inference threads record while
/// an uploader drains.
#[derive(Default)]
pub struct Telemetry {
    inner: Mutex<TelemetryInner>,
}

#[derive(Default)]
struct TelemetryInner {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, RunningStats>,
    hists: BTreeMap<String, LogHistogram>,
    // Handle-indexed fast lanes: registered once, indexed per event.
    fast_counters: Vec<(String, u64)>,
    fast_timers: Vec<(String, RunningStats)>,
    fast_hists: Vec<(String, LogHistogram)>,
}

/// Pre-registered handle to a counter (see [`Telemetry::counter_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Pre-registered handle to a timer (see [`Telemetry::timer_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(usize);

/// Pre-registered handle to a histogram (see [`Telemetry::hist_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A compact, serializable snapshot of telemetry state.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TelemetryReport {
    /// Monotonic counters (e.g. `queries`, `errors`).
    pub counters: BTreeMap<String, u64>,
    /// Timer summaries: `(count, mean, std, min, max)` per metric.
    pub timers: BTreeMap<String, TimerSummary>,
    /// Sparse log-bucketed histograms (exactly mergeable across nodes).
    pub hists: BTreeMap<String, HistSummary>,
}

/// Five-number summary of a timer/value series.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TimerSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Telemetry {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Increment a named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `n` to a named counter.
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Register (or find) a counter handle. Idempotent; call once per
    /// metric at setup, not per event.
    #[must_use]
    pub fn counter_id(&self, name: &str) -> CounterId {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.fast_counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        inner.fast_counters.push((name.to_string(), 0));
        CounterId(inner.fast_counters.len() - 1)
    }

    /// Increment a pre-registered counter — the allocation-free hot path.
    pub fn incr_id(&self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Add `n` to a pre-registered counter.
    pub fn add_id(&self, id: CounterId, n: u64) {
        self.inner.lock().fast_counters[id.0].1 += n;
    }

    /// Record a timing/measurement sample (ms, mJ, bytes — caller's units).
    pub fn record(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner
            .timers
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// Register (or find) a timer handle. Idempotent, setup-time only.
    #[must_use]
    pub fn timer_id(&self, name: &str) -> TimerId {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.fast_timers.iter().position(|(n, _)| n == name) {
            return TimerId(i);
        }
        inner
            .fast_timers
            .push((name.to_string(), RunningStats::new()));
        TimerId(inner.fast_timers.len() - 1)
    }

    /// Record into a pre-registered timer — allocation-free.
    pub fn record_id(&self, id: TimerId, value: f64) {
        self.inner.lock().fast_timers[id.0].1.push(value);
    }

    /// Record into a named log-bucketed histogram (caller's units; use a
    /// handle via [`Telemetry::hist_id`] on hot paths).
    pub fn record_hist(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        inner
            .hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Register (or find) a histogram handle. Idempotent, setup-time only.
    #[must_use]
    pub fn hist_id(&self, name: &str) -> HistId {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.fast_hists.iter().position(|(n, _)| n == name) {
            return HistId(i);
        }
        inner
            .fast_hists
            .push((name.to_string(), LogHistogram::new()));
        HistId(inner.fast_hists.len() - 1)
    }

    /// Record into a pre-registered histogram — allocation-free.
    pub fn record_hist_id(&self, id: HistId, value: u64) {
        self.inner.lock().fast_hists[id.0].1.record(value);
    }

    /// Fold an already-summarized timer series into this sink, as if the
    /// underlying samples had been [`Telemetry::record`]ed here — exact
    /// for count/mean/min/max, pooled-variance accurate for std. This is
    /// the fleet-aggregation entry point: a serving fabric's per-node
    /// sinks summarize locally, and the platform sink absorbs the merged
    /// summaries instead of dropping them at the fabric report.
    pub fn record_summary(&self, name: &str, summary: &TimerSummary) {
        if summary.count == 0 {
            return;
        }
        let incoming = RunningStats::from_summary(
            summary.count,
            summary.mean,
            summary.std,
            summary.min,
            summary.max,
        );
        let mut inner = self.inner.lock();
        inner
            .timers
            .entry(name.to_string())
            .or_default()
            .merge(&incoming);
    }

    /// Fold a sparse histogram snapshot into this sink's named histogram
    /// (bucket-wise exact, the histogram analogue of
    /// [`Telemetry::record_summary`]).
    pub fn record_hist_summary(&self, name: &str, summary: &HistSummary) {
        if summary.buckets.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        inner
            .hists
            .entry(name.to_string())
            .or_default()
            .absorb_summary(summary);
    }

    /// Fold a whole [`TelemetryReport`] into this sink: counters add,
    /// timer summaries merge via [`Telemetry::record_summary`], histograms
    /// bucket-add. Used by `Platform` to land a fabric run's merged fleet
    /// telemetry in the platform-wide sink.
    pub fn absorb_report(&self, report: &TelemetryReport) {
        for (name, value) in &report.counters {
            self.add(name, *value);
        }
        for (name, summary) in &report.timers {
            self.record_summary(name, summary);
        }
        for (name, summary) in &report.hists {
            self.record_hist_summary(name, summary);
        }
    }

    /// Current value of a counter (0 if never written; sums the named and
    /// handle lanes when both were used).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock();
        let slow = inner.counters.get(name).copied().unwrap_or(0);
        let fast = inner
            .fast_counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v);
        slow + fast
    }

    /// Snapshot the current state without clearing it. Handle-lane metrics
    /// fold into the same named maps; never-written registrations are
    /// omitted, so registering handles alone does not change reports.
    #[must_use]
    pub fn snapshot(&self) -> TelemetryReport {
        let inner = self.inner.lock();
        let mut counters = inner.counters.clone();
        for (name, v) in &inner.fast_counters {
            if *v > 0 {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
        }
        let mut timers: BTreeMap<String, RunningStats> = inner.timers.clone();
        for (name, s) in &inner.fast_timers {
            if s.count() > 0 {
                timers.entry(name.clone()).or_default().merge(s);
            }
        }
        let mut hists = inner.hists.clone();
        for (name, h) in &inner.fast_hists {
            if !h.is_empty() {
                hists.entry(name.clone()).or_default().merge(h);
            }
        }
        TelemetryReport {
            counters,
            timers: timers
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        TimerSummary {
                            count: s.count(),
                            mean: s.mean(),
                            std: s.std_dev(),
                            min: s.min(),
                            max: s.max(),
                        },
                    )
                })
                .collect(),
            hists: hists
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(k, h)| (k.clone(), h.to_summary()))
                .collect(),
        }
    }

    /// Snapshot and reset — the "flush" an uploader calls. Handle
    /// registrations survive (values reset to zero), so held
    /// [`CounterId`]/[`TimerId`]/[`HistId`]s stay valid across drains.
    #[must_use]
    pub fn drain(&self) -> TelemetryReport {
        let report = self.snapshot();
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.timers.clear();
        inner.hists.clear();
        for (_, v) in inner.fast_counters.iter_mut() {
            *v = 0;
        }
        for (_, s) in inner.fast_timers.iter_mut() {
            *s = RunningStats::new();
        }
        for (_, h) in inner.fast_hists.iter_mut() {
            *h = LogHistogram::new();
        }
        report
    }
}

impl TelemetryReport {
    /// An empty report (merge identity).
    #[must_use]
    pub fn empty() -> Self {
        TelemetryReport {
            counters: BTreeMap::new(),
            timers: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Fold many per-node reports into one fleet-level report — the
    /// server-side aggregation path a multi-node serving fabric uses to
    /// present one pane of glass over N nodes' counters and timers.
    #[must_use]
    pub fn merged(reports: impl IntoIterator<Item = TelemetryReport>) -> Self {
        let mut out = TelemetryReport::empty();
        for report in reports {
            out.merge(&report);
        }
        out
    }

    /// Approximate wire size in bytes (summaries only — the point of
    /// on-device aggregation is that this is *constant* in query count).
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        // counter: key + 8 bytes; timer: key + 5 × 8 bytes; histogram:
        // key + 12 bytes (u32 index + u64 count) per non-empty bucket.
        self.counters.keys().map(|k| k.len() + 8).sum::<usize>()
            + self.timers.keys().map(|k| k.len() + 40).sum::<usize>()
            + self
                .hists
                .iter()
                .map(|(k, h)| k.len() + 12 * h.buckets.len())
                .sum::<usize>()
    }

    /// Merge another report into this one (server-side aggregation).
    pub fn merge(&mut self, other: &TelemetryReport) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &other.timers {
            match self.timers.get_mut(k) {
                None => {
                    self.timers.insert(k.clone(), t.clone());
                }
                Some(mine) => {
                    // Weighted merge of means; std merged approximately via
                    // pooled variance (exact requires raw moments).
                    let n1 = mine.count as f64;
                    let n2 = t.count as f64;
                    if n1 + n2 > 0.0 {
                        let mean = (mine.mean * n1 + t.mean * n2) / (n1 + n2);
                        let var = (n1 * (mine.std.powi(2) + (mine.mean - mean).powi(2))
                            + n2 * (t.std.powi(2) + (t.mean - mean).powi(2)))
                            / (n1 + n2);
                        mine.mean = mean;
                        mine.std = var.sqrt();
                    }
                    mine.count += t.count;
                    mine.min = mine.min.min(t.min);
                    mine.max = mine.max.max(t.max);
                }
            }
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// A store-and-forward queue that holds reports until the link policy
/// allows bulk upload (§III-B's "transmit … when connected to WiFi").
#[derive(Debug, Default)]
pub struct UploadQueue {
    pending: Vec<TelemetryReport>,
    /// Total reports ever uploaded.
    pub uploaded: usize,
    /// Total bytes ever uploaded.
    pub uploaded_bytes: usize,
}

impl UploadQueue {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        UploadQueue::default()
    }

    /// Enqueue a report for later upload.
    pub fn push(&mut self, report: TelemetryReport) {
        self.pending.push(report);
    }

    /// Number of reports waiting.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Attempt an upload: if `bulk_ok` (e.g. unmetered WiFi) drain all
    /// pending reports and return them; otherwise keep buffering.
    pub fn try_upload(&mut self, bulk_ok: bool) -> Vec<TelemetryReport> {
        if !bulk_ok {
            return Vec::new();
        }
        let out = std::mem::take(&mut self.pending);
        self.uploaded += out.len();
        self.uploaded_bytes += out.iter().map(TelemetryReport::wire_bytes).sum::<usize>();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.incr("queries");
        t.add("queries", 4);
        assert_eq!(t.counter("queries"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn timers_summarize() {
        let t = Telemetry::new();
        for v in [10.0, 20.0, 30.0] {
            t.record("latency_ms", v);
        }
        let snap = t.snapshot();
        let s = &snap.timers["latency_ms"];
        assert_eq!(s.count, 3);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn drain_resets() {
        let t = Telemetry::new();
        t.incr("q");
        let first = t.drain();
        assert_eq!(first.counters["q"], 1);
        assert_eq!(t.counter("q"), 0);
        assert!(t.drain().counters.is_empty());
    }

    #[test]
    fn handles_match_named_path_and_survive_drain() {
        let by_name = Telemetry::new();
        let by_id = Telemetry::new();
        let c = by_id.counter_id("serve.served");
        let tm = by_id.timer_id("serve.latency_ms");
        let h = by_id.hist_id("serve.latency_us");
        // Registration is idempotent and does not pollute reports.
        assert_eq!(by_id.counter_id("serve.served"), c);
        assert!(by_id.snapshot().counters.is_empty());
        for i in 0..5u64 {
            by_name.incr("serve.served");
            by_id.incr_id(c);
            by_name.record("serve.latency_ms", i as f64);
            by_id.record_id(tm, i as f64);
            by_name.record_hist("serve.latency_us", i * 100);
            by_id.record_hist_id(h, i * 100);
        }
        assert_eq!(by_id.snapshot(), by_name.snapshot());
        // Drain keeps handles valid; the next epoch records cleanly.
        let _ = by_id.drain();
        by_id.add_id(c, 3);
        assert_eq!(by_id.counter("serve.served"), 3);
        assert_eq!(by_id.snapshot().counters["serve.served"], 3);
    }

    #[test]
    fn named_and_handle_lanes_fold_into_one_metric() {
        let t = Telemetry::new();
        let c = t.counter_id("q");
        t.incr_id(c);
        t.add("q", 2);
        assert_eq!(t.counter("q"), 3);
        assert_eq!(t.snapshot().counters["q"], 3);
    }

    #[test]
    fn hists_merge_exactly_across_reports() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        let both = Telemetry::new();
        for v in [100u64, 5_000, 90_000] {
            a.record_hist("lat", v);
            both.record_hist("lat", v);
        }
        for v in [250u64, 250, 1 << 33] {
            b.record_hist("lat", v);
            both.record_hist("lat", v);
        }
        let fleet = TelemetryReport::merged([a.drain(), b.drain()]);
        let want = both.drain();
        assert_eq!(fleet.hists["lat"], want.hists["lat"]);
        assert_eq!(fleet.hists["lat"].count(), 6);
        assert_eq!(
            fleet.hists["lat"].quantile(50.0),
            want.hists["lat"].quantile(50.0)
        );
    }

    #[test]
    fn absorb_report_lands_hists() {
        let node = Telemetry::new();
        node.record_hist("lat", 700);
        node.record_hist("lat", 900);
        let platform = Telemetry::new();
        platform.record_hist("lat", 100);
        platform.absorb_report(&node.drain());
        assert_eq!(platform.snapshot().hists["lat"].count(), 3);
    }

    #[test]
    fn wire_bytes_constant_in_query_count() {
        let t = Telemetry::new();
        for _ in 0..10 {
            t.record("lat", 1.0);
            t.record_hist("lat_us", 500);
        }
        let small = t.snapshot().wire_bytes();
        for _ in 0..10_000 {
            t.record("lat", 1.0);
            t.record_hist("lat_us", 500);
        }
        let big = t.snapshot().wire_bytes();
        assert_eq!(small, big, "aggregation keeps reports constant-size");
    }

    #[test]
    fn wire_bytes_empty_report_is_zero() {
        assert_eq!(TelemetryReport::empty().wire_bytes(), 0);
        let t = Telemetry::new();
        assert_eq!(t.snapshot().wire_bytes(), 0);
        // Registering handles without recording keeps the report empty.
        let _ = t.counter_id("a");
        let _ = t.timer_id("b");
        let _ = t.hist_id("c");
        assert_eq!(t.snapshot().wire_bytes(), 0);
    }

    #[test]
    fn wire_bytes_counts_each_section() {
        let t = Telemetry::new();
        t.incr("c"); // 1 + 8
        t.record("t", 1.0); // 1 + 40
        t.record_hist("h", 7); // 1 + 12 (one bucket)
        assert_eq!(t.snapshot().wire_bytes(), 9 + 41 + 13);
    }

    #[test]
    fn record_summary_matches_recording_the_samples() {
        // One sink sees raw samples; the other absorbs per-node summaries
        // (the `serve_traffic_sharded` / live-mode path). They must agree.
        let raw = Telemetry::new();
        let folded = Telemetry::new();
        folded.record("serve.latency_ms", 5.0); // pre-existing local data
        raw.record("serve.latency_ms", 5.0);
        let node_series = [vec![1.0, 2.0, 3.0], vec![10.0, 20.0]];
        for series in &node_series {
            let node = Telemetry::new();
            for &v in series {
                node.record("serve.latency_ms", v);
                raw.record("serve.latency_ms", v);
            }
            let report = node.drain();
            folded.record_summary("serve.latency_ms", &report.timers["serve.latency_ms"]);
        }
        let want = &raw.snapshot().timers["serve.latency_ms"];
        let got = &folded.snapshot().timers["serve.latency_ms"];
        assert_eq!(got.count, want.count);
        assert!((got.mean - want.mean).abs() < 1e-9);
        assert!((got.std - want.std).abs() < 1e-6);
        assert_eq!(got.min, want.min);
        assert_eq!(got.max, want.max);
        // Zero-count summaries are no-ops, not NaN factories.
        folded.record_summary(
            "serve.latency_ms",
            &TimerSummary {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            },
        );
        assert_eq!(
            folded.snapshot().timers["serve.latency_ms"].count,
            want.count
        );
    }

    #[test]
    fn absorb_report_lands_counters_and_timers() {
        let node = Telemetry::new();
        node.add("serve.served", 7);
        node.record("serve.latency_ms", 4.0);
        node.record("serve.latency_ms", 6.0);
        let report = node.drain();
        let platform = Telemetry::new();
        platform.add("serve.served", 1);
        platform.absorb_report(&report);
        assert_eq!(platform.counter("serve.served"), 8);
        let snap = platform.snapshot();
        let t = &snap.timers["serve.latency_ms"];
        assert_eq!(t.count, 2);
        assert!((t.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_pools_statistics() {
        let t1 = Telemetry::new();
        let t2 = Telemetry::new();
        for v in [1.0, 2.0, 3.0] {
            t1.record("x", v);
        }
        for v in [4.0, 5.0] {
            t2.record("x", v);
        }
        t1.incr("n");
        t2.add("n", 2);
        let mut a = t1.snapshot();
        a.merge(&t2.snapshot());
        assert_eq!(a.counters["n"], 3);
        let s = &a.timers["x"];
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn merged_folds_many_node_reports() {
        let reports: Vec<TelemetryReport> = (0..3)
            .map(|i| {
                let t = Telemetry::new();
                t.add("served", 10 + i);
                t.record("latency_ms", i as f64);
                t.drain()
            })
            .collect();
        let fleet = TelemetryReport::merged(reports);
        assert_eq!(fleet.counters["served"], 33);
        assert_eq!(fleet.timers["latency_ms"].count, 3);
        assert_eq!(TelemetryReport::merged([]).counters.len(), 0);
    }

    #[test]
    fn upload_queue_defers_until_wifi() {
        let t = Telemetry::new();
        t.incr("q");
        let mut q = UploadQueue::new();
        q.push(t.drain());
        assert!(q.try_upload(false).is_empty(), "metered link: hold");
        assert_eq!(q.pending(), 1);
        let sent = q.try_upload(true);
        assert_eq!(sent.len(), 1);
        assert_eq!(q.pending(), 0);
        assert!(q.uploaded_bytes > 0);
    }

    #[test]
    fn upload_queue_non_bulk_backoff_preserves_order() {
        let mut q = UploadQueue::new();
        for i in 0..3u64 {
            let t = Telemetry::new();
            t.add("seq", i + 1);
            q.push(t.drain());
        }
        // Metered link: repeated refusals neither drain nor reorder.
        for _ in 0..5 {
            assert!(q.try_upload(false).is_empty());
        }
        assert_eq!(q.pending(), 3);
        assert_eq!(q.uploaded, 0);
        assert_eq!(q.uploaded_bytes, 0);
        // Bulk drain ships everything at once, FIFO.
        let sent = q.try_upload(true);
        let seqs: Vec<u64> = sent.iter().map(|r| r.counters["seq"]).collect();
        assert_eq!(seqs, vec![1, 2, 3], "drain preserves push order");
        assert_eq!(q.uploaded, 3);
        assert_eq!(
            q.uploaded_bytes,
            sent.iter().map(TelemetryReport::wire_bytes).sum::<usize>()
        );
        // An empty bulk drain is free: no phantom uploads or bytes.
        assert!(q.try_upload(true).is_empty());
        assert_eq!(q.uploaded, 3);
    }

    #[test]
    fn upload_queue_empty_reports_cost_nothing() {
        let mut q = UploadQueue::new();
        q.push(TelemetryReport::empty());
        let sent = q.try_upload(true);
        assert_eq!(sent.len(), 1);
        assert_eq!(q.uploaded_bytes, 0, "empty report has zero wire bytes");
    }

    #[test]
    fn telemetry_is_shareable_across_threads() {
        use std::sync::Arc;
        let t = Arc::new(Telemetry::new());
        let t2 = Arc::clone(&t);
        let c = t.counter_id("fast");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.incr("q");
                        t.incr_id(c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t2.counter("q"), 4000);
        assert_eq!(t2.counter("fast"), 4000);
    }
}
