//! Model-extraction (stealing) query-pattern detection.
//!
//! §V: *"There are different techniques that analyze the distribution of
//! sequential queries (PRADA) or that measure the information gain from
//! different queries to try to detect indirect model stealing."* and:
//! *"Although it is not supported yet by any of the TinyML frameworks, it
//! seems feasible to perform stealing queries patterns detection … on edge
//! devices."* This module makes it exist:
//!
//! * [`PradaDetector`] — follows PRADA (Juuti et al. 2019): benign queries'
//!   minimum pairwise distances are approximately Gaussian; synthetic
//!   attack queries skew that distribution. We track per-class
//!   min-distance samples in bounded memory and test departure from
//!   normality with a skewness/kurtosis (D'Agostino-style) statistic.
//! * [`MarginDetector`] — extraction attacks concentrate queries where the
//!   model is uncertain; a collapsing mean confidence margin over a window
//!   is the complementary signal.

use serde::{Deserialize, Serialize};

/// Verdict after feeding a query to a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealingVerdict {
    /// Not enough evidence yet.
    Undecided,
    /// Traffic looks like organic usage.
    Benign,
    /// Query pattern consistent with a model-extraction attack.
    Attack,
}

/// PRADA-style detector over query feature vectors.
#[derive(Debug, Clone)]
pub struct PradaDetector {
    /// Per-class retained query history (bounded).
    history: Vec<Vec<Vec<f32>>>,
    /// Per-class growing-set minimum distances.
    distances: Vec<Vec<f64>>,
    max_history: usize,
    min_samples: usize,
    /// Normality threshold on the combined |skew|+|excess kurtosis| score;
    /// benign Gaussian-ish distances stay well below it.
    threshold: f64,
    verdict: StealingVerdict,
}

impl PradaDetector {
    /// `classes` output classes; `max_history` queries kept per class;
    /// `min_samples` distances required before judging; `threshold` on the
    /// non-normality score (2.0 is a good default).
    #[must_use]
    pub fn new(classes: usize, max_history: usize, min_samples: usize, threshold: f64) -> Self {
        PradaDetector {
            history: vec![Vec::new(); classes],
            distances: vec![Vec::new(); classes],
            max_history,
            min_samples,
            threshold,
            verdict: StealingVerdict::Undecided,
        }
    }

    /// Feed one query and the class the model predicted for it.
    pub fn observe(&mut self, features: &[f32], predicted_class: usize) -> StealingVerdict {
        let hist = &mut self.history[predicted_class];
        if !hist.is_empty() {
            let d = hist
                .iter()
                .map(|h| l2(h, features))
                .fold(f64::INFINITY, f64::min);
            // Log-transform: benign nearest-neighbour distances are
            // right-skewed (roughly Weibull); their logs are close to
            // Gaussian, which is the null hypothesis the normality test
            // needs. Synthetic attack trains (grid walks, line searches)
            // produce near-constant or few-valued distances whose logs are
            // degenerate — maximally non-Gaussian.
            self.distances[predicted_class].push((d.max(1e-12)).ln());
            if self.distances[predicted_class].len() > self.max_history {
                self.distances[predicted_class].remove(0);
            }
        }
        if hist.len() < self.max_history {
            hist.push(features.to_vec());
        } else {
            // Reservoir-ish: overwrite cyclically to stay bounded.
            let idx = self.distances[predicted_class].len() % self.max_history;
            hist[idx] = features.to_vec();
        }
        self.verdict = self.judge();
        self.verdict
    }

    /// Current verdict.
    #[must_use]
    pub fn verdict(&self) -> StealingVerdict {
        self.verdict
    }

    /// The current non-normality score across classes (max over classes
    /// with enough samples), for diagnostics and experiment tables.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.distances
            .iter()
            .filter(|d| d.len() >= self.min_samples)
            .map(|d| non_normality(d))
            .fold(0.0, f64::max)
    }

    fn judge(&self) -> StealingVerdict {
        let mut any_ready = false;
        for d in &self.distances {
            if d.len() < self.min_samples {
                continue;
            }
            any_ready = true;
            if non_normality(d) > self.threshold {
                return StealingVerdict::Attack;
            }
        }
        if any_ready {
            StealingVerdict::Benign
        } else {
            StealingVerdict::Undecided
        }
    }
}

fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Combined non-normality score: |skewness| + |excess kurtosis| / 2,
/// normalized by their asymptotic standard errors (D'Agostino flavour).
/// Near 0 for Gaussian samples; large for multi-modal or degenerate
/// (constant-step) distance distributions produced by synthetic queries.
#[must_use]
pub fn non_normality(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 8.0 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n;
    let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    // Degenerate (near-constant) samples are maximally non-Gaussian. The
    // floor is relative and sits orders of magnitude above f32 rounding
    // noise (~1e-10) yet far below any organic distance spread (~1e-1),
    // so float jitter cannot hide constancy.
    if m2 < 1e-8 * (1.0 + mean * mean) {
        return f64::INFINITY;
    }
    let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    let skew = m3 / m2.powf(1.5);
    let ex_kurt = m4 / (m2 * m2) - 3.0;
    let se_skew = (6.0 / n).sqrt();
    let se_kurt = (24.0 / n).sqrt();
    (skew.abs() / se_skew + ex_kurt.abs() / se_kurt) / 2.0
}

/// Confidence-margin detector: flags windows whose mean top-1 − top-2
/// probability margin collapses below `margin_floor`.
#[derive(Debug, Clone)]
pub struct MarginDetector {
    window: usize,
    margin_floor: f64,
    recent: Vec<f64>,
    verdict: StealingVerdict,
}

impl MarginDetector {
    /// `window` queries per judgement, alarm when mean margin < floor.
    #[must_use]
    pub fn new(window: usize, margin_floor: f64) -> Self {
        MarginDetector {
            window,
            margin_floor,
            recent: Vec::new(),
            verdict: StealingVerdict::Undecided,
        }
    }

    /// Feed the model's output probabilities for one query.
    pub fn observe(&mut self, probs: &[f32]) -> StealingVerdict {
        let mut top1 = 0.0f32;
        let mut top2 = 0.0f32;
        for &p in probs {
            if p > top1 {
                top2 = top1;
                top1 = p;
            } else if p > top2 {
                top2 = p;
            }
        }
        self.recent.push(f64::from(top1 - top2));
        if self.recent.len() >= self.window {
            let mean = self.recent.iter().sum::<f64>() / self.recent.len() as f64;
            self.verdict = if mean < self.margin_floor {
                StealingVerdict::Attack
            } else {
                StealingVerdict::Benign
            };
            self.recent.clear();
        }
        self.verdict
    }

    /// Current verdict.
    #[must_use]
    pub fn verdict(&self) -> StealingVerdict {
        self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    #[test]
    fn non_normality_low_for_gaussian() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..500).map(|_| gaussian(&mut rng, 5.0, 1.0)).collect();
        assert!(non_normality(&xs) < 2.0, "score {}", non_normality(&xs));
    }

    #[test]
    fn non_normality_high_for_bimodal_and_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let bimodal: Vec<f64> = (0..400)
            .map(|i| gaussian(&mut rng, if i % 2 == 0 { 0.0 } else { 50.0 }, 0.3))
            .collect();
        assert!(non_normality(&bimodal) > 2.0);
        let constant = vec![3.0; 100];
        assert!(non_normality(&constant).is_infinite());
    }

    /// Benign traffic: queries cluster around class prototypes with
    /// Gaussian spread — min-distances come out unimodal.
    #[test]
    fn prada_stays_quiet_on_benign_traffic() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut det = PradaDetector::new(2, 256, 40, 3.5);
        let mut attack_seen = false;
        for i in 0..600 {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            let q: Vec<f32> = (0..8)
                .map(|_| gaussian(&mut rng, center, 1.0) as f32)
                .collect();
            if det.observe(&q, class) == StealingVerdict::Attack {
                attack_seen = true;
            }
        }
        assert!(
            !attack_seen,
            "benign traffic flagged, score {}",
            det.score()
        );
    }

    /// Attack traffic à la line-search/JbDA: deterministic grid points with
    /// fixed step sizes — distances collapse onto a few values.
    #[test]
    fn prada_flags_synthetic_attack_queries() {
        let mut det = PradaDetector::new(2, 256, 40, 3.5);
        let mut flagged_at = None;
        for i in 0..600 {
            let class = i % 2;
            // Grid walk with a constant step: classic synthetic query train.
            let base = (i / 2) as f32 * 0.05;
            let q: Vec<f32> = (0..8).map(|d| base + d as f32).collect();
            if det.observe(&q, class) == StealingVerdict::Attack && flagged_at.is_none() {
                flagged_at = Some(i);
            }
        }
        assert!(
            flagged_at.is_some(),
            "attack not flagged, score {}",
            det.score()
        );
    }

    #[test]
    fn prada_memory_is_bounded() {
        let mut det = PradaDetector::new(1, 64, 10, 3.0);
        for i in 0..10_000 {
            let q = vec![i as f32; 4];
            det.observe(&q, 0);
        }
        assert!(det.history[0].len() <= 64);
        assert!(det.distances[0].len() <= 64);
    }

    #[test]
    fn margin_detector_flags_low_margin_traffic() {
        let mut det = MarginDetector::new(50, 0.3);
        // Benign: confident predictions.
        for _ in 0..50 {
            det.observe(&[0.9, 0.05, 0.05]);
        }
        assert_eq!(det.verdict(), StealingVerdict::Benign);
        // Attack: boundary-hugging queries.
        for _ in 0..50 {
            det.observe(&[0.4, 0.38, 0.22]);
        }
        assert_eq!(det.verdict(), StealingVerdict::Attack);
    }

    #[test]
    fn margin_detector_undecided_before_window() {
        let mut det = MarginDetector::new(100, 0.3);
        for _ in 0..99 {
            assert_eq!(det.observe(&[0.9, 0.1]), StealingVerdict::Undecided);
        }
    }
}
