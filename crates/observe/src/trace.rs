//! Request tracing: a per-node bounded flight recorder.
//!
//! §III-B's monitoring story needs *per-request lifecycles*, not just
//! aggregates: when did a request get admitted, how long did it queue,
//! which batch carried it, when did it complete or get shed. The
//! [`FlightRecorder`] is a fixed-capacity ring buffer owned by one node's
//! engine (no lock — lock-freedom by ownership), overwriting the oldest
//! event when full, so memory stays bounded no matter how long the node
//! runs. Events carry only logical timestamps handed in by the engine, so
//! recording never perturbs replay determinism.
//!
//! [`chrome_trace_json`] renders events in the Chrome trace-event format:
//! load the file at <https://ui.perfetto.dev> (or `chrome://tracing`) to
//! see per-node (pid) per-tenant (tid) request spans.

/// What a trace event marks in the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Request passed gateway admission.
    Admit,
    /// Request entered the micro-batcher queue.
    Enqueue,
    /// A batch was formed (detail = batch size).
    Batch,
    /// A batch was dispatched to a device (duration = service time,
    /// detail = batch size).
    Dispatch,
    /// Request completed (duration = end-to-end latency).
    Complete,
    /// Request was shed (detail = `ShedReason` index).
    Shed,
    /// Model cache eviction during a load (detail = models evicted).
    CacheEvict,
    /// Tenant handoff during live migration (detail = peer node id).
    Handoff,
}

impl SpanKind {
    /// Stable label used as the Chrome trace event name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Admit => "admit",
            SpanKind::Enqueue => "enqueue",
            SpanKind::Batch => "batch",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Complete => "complete",
            SpanKind::Shed => "shed",
            SpanKind::CacheEvict => "cache-evict",
            SpanKind::Handoff => "handoff",
        }
    }
}

/// One recorded event. `dur_us == 0` renders as an instant event,
/// anything else as a complete span (`ph: "X"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event start, logical microseconds.
    pub ts_us: u64,
    /// Span duration (0 for instant events).
    pub dur_us: u64,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Node that recorded the event (Chrome `pid`).
    pub node: u32,
    /// Tenant the event belongs to (Chrome `tid`; 0 for node-level events).
    pub tenant: u32,
    /// Request id or batch sequence number.
    pub id: u64,
    /// Kind-specific payload (batch size, shed reason index, peer node…).
    pub detail: u64,
}

/// Fixed-memory ring buffer of [`TraceEvent`]s, overwrite-oldest.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    /// Next write position when the ring has wrapped.
    head: usize,
    /// Total events ever offered (recorded + overwritten).
    offered: u64,
    capacity: usize,
}

impl FlightRecorder {
    /// New recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            offered: 0,
            capacity,
        }
    }

    /// Record an event, overwriting the oldest if the ring is full. O(1),
    /// never allocates once the ring has filled.
    pub fn record(&mut self, event: TraceEvent) {
        self.offered += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events lost to overwrite so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.offered - self.buf.len() as u64
    }

    /// Drain retained events in recording order (oldest first), leaving
    /// the recorder empty.
    #[must_use]
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        buf.rotate_left(head);
        buf
    }
}

/// Escape a string for inclusion inside a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render events from one or more recorders as a Chrome trace-event JSON
/// array (the format Perfetto and `chrome://tracing` load directly).
/// Spans become `ph: "X"` complete events; zero-duration events become
/// `ph: "i"` instants scoped to their thread.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        json_escape(e.kind.name(), &mut out);
        out.push_str("\",\"cat\":\"serve\",\"ph\":\"");
        out.push_str(if e.dur_us == 0 { "i" } else { "X" });
        out.push_str("\",\"pid\":");
        out.push_str(&e.node.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&e.tenant.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&e.ts_us.to_string());
        if e.dur_us == 0 {
            out.push_str(",\"s\":\"t\"");
        } else {
            out.push_str(",\"dur\":");
            out.push_str(&e.dur_us.to_string());
        }
        out.push_str(",\"args\":{\"id\":");
        out.push_str(&e.id.to_string());
        out.push_str(",\"detail\":");
        out.push_str(&e.detail.to_string());
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: SpanKind, id: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: if kind == SpanKind::Complete { 10 } else { 0 },
            kind,
            node: 1,
            tenant: 2,
            id,
            detail: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(ev(i, SpanKind::Admit, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let drained = r.drain();
        let ids: Vec<u64> = drained.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest first, newest retained");
        assert!(r.is_empty());
    }

    #[test]
    fn recorder_under_capacity_keeps_order() {
        let mut r = FlightRecorder::new(8);
        r.record(ev(1, SpanKind::Admit, 10));
        r.record(ev(2, SpanKind::Complete, 10));
        assert_eq!(r.dropped(), 0);
        let drained = r.drain();
        assert_eq!(drained[0].kind, SpanKind::Admit);
        assert_eq!(drained[1].kind, SpanKind::Complete);
    }

    #[test]
    fn chrome_json_shape() {
        let events = vec![ev(100, SpanKind::Admit, 7), ev(110, SpanKind::Complete, 7)];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"admit\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn json_escaping_is_safe() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }
}
