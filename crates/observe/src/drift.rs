//! Streaming data-drift detectors.
//!
//! §III-B: observability solutions "typically monitor the distribution of
//! input values to detect data drift. This allows machine learning
//! engineers to detect model performance degradation early on." All three
//! detectors run in bounded memory on a scalar input statistic (e.g. one
//! feature, an embedding norm, or a model confidence).

use serde::{Deserialize, Serialize};
use tinymlops_tensor::stats::{ks_p_value, ks_statistic_sorted, psi, Histogram};

/// Outcome of feeding one observation to a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftStatus {
    /// Not enough data yet to judge.
    Warmup,
    /// Distribution consistent with the reference.
    Stable,
    /// Drift signalled.
    Drift,
}

/// A streaming drift detector over scalar observations.
pub trait DriftDetector {
    /// Feed one observation; returns the current status.
    fn observe(&mut self, x: f64) -> DriftStatus;
    /// Current status without feeding data.
    fn status(&self) -> DriftStatus;
    /// Reset to the warmup state (e.g. after a model update).
    fn reset(&mut self);
    /// Detector name for reports.
    fn name(&self) -> &'static str;
}

/// Two-sample Kolmogorov–Smirnov detector: first `window` points become the
/// frozen reference; the most recent `window` points are compared to it.
#[derive(Debug, Clone)]
pub struct KsDetector {
    window: usize,
    alpha: f64,
    /// Frozen after warmup, then kept sorted so judgements only sort the
    /// recent window.
    reference: Vec<f64>,
    recent: Vec<f64>,
    /// Judgement-time sort buffer for `recent` (reused, no per-judgement
    /// allocation).
    scratch: Vec<f64>,
    pos: usize,
    filled: bool,
    status: DriftStatus,
}

impl KsDetector {
    /// `window` reference/comparison size, `alpha` significance level.
    #[must_use]
    pub fn new(window: usize, alpha: f64) -> Self {
        assert!(window >= 8, "KS window too small to be meaningful");
        KsDetector {
            window,
            alpha,
            reference: Vec::with_capacity(window),
            recent: vec![0.0; window],
            scratch: Vec::with_capacity(window),
            pos: 0,
            filled: false,
            status: DriftStatus::Warmup,
        }
    }
}

impl DriftDetector for KsDetector {
    fn observe(&mut self, x: f64) -> DriftStatus {
        if self.reference.len() < self.window {
            self.reference.push(x);
            if self.reference.len() == self.window {
                // Reference is frozen from here on: sort it once so each
                // judgement only has to sort the recent window.
                self.reference
                    .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            }
            self.status = DriftStatus::Warmup;
            return self.status;
        }
        self.recent[self.pos] = x;
        self.pos += 1;
        if self.pos == self.window {
            self.pos = 0;
        }
        // Judge once per *non-overlapping* window: overlapping judgements
        // multiply the effective test count and inflate false alarms.
        if self.pos == 0 {
            self.filled = true;
            self.scratch.clear();
            self.scratch.extend_from_slice(&self.recent);
            self.scratch
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let d = ks_statistic_sorted(&self.reference, &self.scratch);
            let p = ks_p_value(d, self.reference.len(), self.recent.len());
            self.status = if p < self.alpha {
                DriftStatus::Drift
            } else {
                DriftStatus::Stable
            };
        } else if !self.filled {
            self.status = DriftStatus::Warmup;
        }
        self.status
    }

    fn status(&self) -> DriftStatus {
        self.status
    }

    fn reset(&mut self) {
        self.reference.clear();
        self.pos = 0;
        self.filled = false;
        self.status = DriftStatus::Warmup;
    }

    fn name(&self) -> &'static str {
        "ks"
    }
}

/// Population-Stability-Index detector over fixed bins. The first `window`
/// observations freeze the reference histogram; PSI of the rolling recent
/// histogram above `threshold` (industry rule of thumb: 0.25) is drift.
#[derive(Debug, Clone)]
pub struct PsiDetector {
    window: usize,
    threshold: f64,
    reference: Histogram,
    recent: Histogram,
    seen: usize,
    status: DriftStatus,
}

impl PsiDetector {
    /// Bins cover `[lo, hi]`; `window` controls both phases.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize, window: usize, threshold: f64) -> Self {
        PsiDetector {
            window,
            threshold,
            reference: Histogram::new(lo, hi, bins),
            recent: Histogram::new(lo, hi, bins),
            seen: 0,
            status: DriftStatus::Warmup,
        }
    }
}

impl DriftDetector for PsiDetector {
    fn observe(&mut self, x: f64) -> DriftStatus {
        self.seen += 1;
        if self.seen <= self.window {
            self.reference.push(x);
            self.status = DriftStatus::Warmup;
            return self.status;
        }
        self.recent.push(x);
        if self.recent.total() as usize >= self.window {
            // Judge on full non-overlapping windows only: partial windows
            // make PSI wildly noisy (empty-bin smoothing dominates).
            let value = psi(
                &self.reference.probabilities(0.5),
                &self.recent.probabilities(0.5),
            );
            self.status = if value > self.threshold {
                DriftStatus::Drift
            } else {
                DriftStatus::Stable
            };
            self.recent.clear();
        } else if self.seen == self.window + 1 {
            // First post-reference observation: leave warmup only when a
            // verdict exists; until then stay at the last known status.
            self.status = DriftStatus::Warmup;
        }
        self.status
    }

    fn status(&self) -> DriftStatus {
        self.status
    }

    fn reset(&mut self) {
        self.reference.clear();
        self.recent.clear();
        self.seen = 0;
        self.status = DriftStatus::Warmup;
    }

    fn name(&self) -> &'static str {
        "psi"
    }
}

/// Page–Hinkley mean-shift detector: cumulative deviation from the running
/// mean, with drift when the deviation exceeds `lambda`.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    min_samples: usize,
    n: usize,
    mean: f64,
    cum: f64,
    min_cum: f64,
    status: DriftStatus,
}

impl PageHinkley {
    /// `delta` tolerated drift magnitude, `lambda` alarm threshold.
    #[must_use]
    pub fn new(delta: f64, lambda: f64, min_samples: usize) -> Self {
        PageHinkley {
            delta,
            lambda,
            min_samples,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            min_cum: 0.0,
            status: DriftStatus::Warmup,
        }
    }
}

impl DriftDetector for PageHinkley {
    fn observe(&mut self, x: f64) -> DriftStatus {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cum += x - self.mean - self.delta;
        self.min_cum = self.min_cum.min(self.cum);
        if self.n < self.min_samples {
            self.status = DriftStatus::Warmup;
        } else if self.cum - self.min_cum > self.lambda {
            self.status = DriftStatus::Drift;
        } else {
            self.status = DriftStatus::Stable;
        }
        self.status
    }

    fn status(&self) -> DriftStatus {
        self.status
    }

    fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.min_cum = 0.0;
        self.status = DriftStatus::Warmup;
    }

    fn name(&self) -> &'static str {
        "page-hinkley"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_stream(rng: &mut StdRng, mean: f64, std: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect()
    }

    /// Feed `stable_n` in-distribution points then shifted ones; return
    /// (false alarms during stable phase, detection delay after shift).
    fn run_detector(
        det: &mut dyn DriftDetector,
        shift: f64,
        stable_n: usize,
        shifted_n: usize,
        seed: u64,
    ) -> (usize, Option<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut false_alarms = 0;
        for x in gaussian_stream(&mut rng, 0.0, 1.0, stable_n) {
            if det.observe(x) == DriftStatus::Drift {
                false_alarms += 1;
            }
        }
        let mut delay = None;
        for (i, x) in gaussian_stream(&mut rng, shift, 1.0, shifted_n)
            .into_iter()
            .enumerate()
        {
            if det.observe(x) == DriftStatus::Drift && delay.is_none() {
                delay = Some(i + 1);
            }
        }
        (false_alarms, delay)
    }

    #[test]
    fn ks_detects_mean_shift() {
        let mut det = KsDetector::new(64, 0.001);
        let (fa, delay) = run_detector(&mut det, 2.0, 500, 200, 1);
        assert_eq!(fa, 0, "no false alarms in stable phase");
        assert!(delay.is_some(), "shift must be detected");
        assert!(delay.unwrap() <= 128, "delay {delay:?}");
    }

    #[test]
    fn ks_quiet_without_shift() {
        let mut det = KsDetector::new(64, 0.001);
        let (fa, delay) = run_detector(&mut det, 0.0, 500, 500, 2);
        assert_eq!(fa, 0);
        assert!(delay.is_none(), "no drift expected, got {delay:?}");
    }

    #[test]
    fn psi_detects_shift() {
        let mut det = PsiDetector::new(-4.0, 4.0, 8, 128, 0.25);
        let (fa, delay) = run_detector(&mut det, 2.0, 400, 300, 3);
        assert_eq!(fa, 0);
        assert!(delay.is_some());
    }

    #[test]
    fn psi_quiet_without_shift() {
        let mut det = PsiDetector::new(-4.0, 4.0, 8, 128, 0.25);
        let (fa, delay) = run_detector(&mut det, 0.0, 600, 600, 6);
        assert_eq!(fa, 0);
        assert!(delay.is_none(), "got {delay:?}");
    }

    #[test]
    fn page_hinkley_detects_upward_shift() {
        let mut det = PageHinkley::new(0.05, 20.0, 30);
        let (fa, delay) = run_detector(&mut det, 1.0, 500, 500, 6);
        assert_eq!(fa, 0);
        assert!(delay.is_some());
    }

    #[test]
    fn reset_returns_to_warmup() {
        let mut det = KsDetector::new(16, 0.05);
        for i in 0..40 {
            det.observe(i as f64);
        }
        det.reset();
        assert_eq!(det.status(), DriftStatus::Warmup);
        assert_eq!(det.observe(1.0), DriftStatus::Warmup);
    }

    #[test]
    fn detectors_report_names() {
        assert_eq!(KsDetector::new(16, 0.05).name(), "ks");
        assert_eq!(PsiDetector::new(0.0, 1.0, 4, 16, 0.25).name(), "psi");
        assert_eq!(PageHinkley::new(0.01, 10.0, 10).name(), "page-hinkley");
    }

    #[test]
    fn subtle_shift_takes_longer_than_large_shift() {
        let delay_for = |shift: f64| {
            let mut det = KsDetector::new(64, 0.01);
            run_detector(&mut det, shift, 400, 400, 5).1
        };
        let small = delay_for(0.8);
        let large = delay_for(3.0);
        assert!(large.is_some() && small.is_some());
        assert!(large.unwrap() <= small.unwrap());
    }
}
