//! Edge observability (paper §III-B) and query-pattern attack detection
//! (paper §V).
//!
//! §III-B: *"monitoring and observability are key to ensuring that a model
//! keeps performing as expected … typically monitor the distribution of
//! input values to detect data drift."* On the edge this must run with
//! bounded memory, no raw-data exfiltration, and uploads deferred to
//! unmetered links. This crate provides:
//!
//! * [`telemetry`] — bounded-memory counters/histograms/timers, serialized
//!   into compact reports, with a WiFi-deferred upload queue.
//! * [`hist`] — fixed-layout log-bucketed (HDR-style) histograms whose
//!   merge is bucket-wise exact, for mergeable fleet tail percentiles.
//! * [`trace`] — per-node bounded flight recorder of request-lifecycle
//!   span events, exportable as Chrome trace-event JSON (Perfetto).
//! * [`window`] — fixed-window time-series of serving signals plus
//!   per-tenant drift alarm banks: the controller-facing signal plane.
//! * [`drift`] — three streaming drift detectors (two-sample KS, PSI over
//!   binned references, Page–Hinkley mean-shift) with a common trait.
//! * [`anomaly`] — per-feature z-score anomaly scoring for flagging and
//!   locally retaining "anomalous data points for analysis or retraining".
//! * [`privacy`] — Laplace-mechanism differentially private aggregation so
//!   basic statistics can be shared "in an anonymized way".
//! * [`stealing`] — PRADA-style detection of model-extraction query
//!   patterns plus a confidence-margin detector (§V "detecting stealing
//!   queries patterns").

pub mod anomaly;
pub mod drift;
pub mod hist;
pub mod privacy;
pub mod stealing;
pub mod telemetry;
pub mod trace;
pub mod window;

pub use anomaly::AnomalyScorer;
pub use drift::{DriftDetector, DriftStatus, KsDetector, PageHinkley, PsiDetector};
pub use hist::{HistBucket, HistSummary, LogHistogram};
pub use privacy::{laplace_noise, PrivateAggregator};
pub use stealing::{MarginDetector, PradaDetector, StealingVerdict};
pub use telemetry::{CounterId, HistId, Telemetry, TelemetryReport, TimerId, UploadQueue};
pub use trace::{chrome_trace_json, FlightRecorder, SpanKind, TraceEvent};
pub use window::{Alarm, AlarmKind, DriftBank, WindowSample, WindowTracker};
