//! Property-based tests for the telemetry fold paths and histograms.
//!
//! The sharded/live serving fabrics never ship raw samples: per-node
//! sinks summarize locally and the platform re-absorbs summaries
//! (`RunningStats::from_summary` / `Telemetry::record_summary`) or sparse
//! histogram snapshots. These properties guard that the folds are
//! order-insensitive and agree with having recorded the raw stream
//! directly.

use proptest::prelude::*;
use tinymlops_observe::telemetry::TimerSummary;
use tinymlops_observe::{LogHistogram, Telemetry};
use tinymlops_tensor::stats::RunningStats;

fn summarize(xs: &[f64]) -> TimerSummary {
    let mut s = RunningStats::new();
    for &v in xs {
        s.push(v);
    }
    TimerSummary {
        count: s.count(),
        mean: s.mean(),
        std: s.std_dev(),
        min: s.min(),
        max: s.max(),
    }
}

/// Absorb summaries one by one into a fresh sink and read the result.
fn fold(summaries: &[TimerSummary]) -> TimerSummary {
    let t = Telemetry::new();
    for s in summaries {
        t.record_summary("m", s);
    }
    t.snapshot()
        .timers
        .get("m")
        .cloned()
        .unwrap_or(TimerSummary {
            count: 0,
            mean: 0.0,
            std: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// `record_summary` of per-chunk summaries matches recording the raw
    /// concatenated stream, within floating-point tolerance.
    #[test]
    fn record_summary_matches_direct_recording(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..64),
        ys in proptest::collection::vec(-1e4f64..1e4, 1..64),
        zs in proptest::collection::vec(-1e4f64..1e4, 0..64),
    ) {
        let direct = Telemetry::new();
        for &v in xs.iter().chain(&ys).chain(&zs) {
            direct.record("m", v);
        }
        let want = direct.snapshot().timers["m"].clone();
        let chunks = [summarize(&xs), summarize(&ys), summarize(&zs)];
        let got = fold(&chunks);
        prop_assert_eq!(got.count, want.count);
        prop_assert!(close(got.mean, want.mean, 1e-9), "{} vs {}", got.mean, want.mean);
        prop_assert!(close(got.std, want.std, 1e-6), "{} vs {}", got.std, want.std);
        prop_assert_eq!(got.min, want.min);
        prop_assert_eq!(got.max, want.max);
    }

    /// Folding summaries is associative: (a ⊕ b) ⊕ c ≈ a ⊕ (b ⊕ c).
    #[test]
    fn summary_merge_is_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..48),
        ys in proptest::collection::vec(-1e3f64..1e3, 1..48),
        zs in proptest::collection::vec(-1e3f64..1e3, 1..48),
    ) {
        let (a, b, c) = (summarize(&xs), summarize(&ys), summarize(&zs));
        let left = fold(&[fold(&[a.clone(), b.clone()]), c.clone()]);
        let right = fold(&[a, fold(&[b, c])]);
        prop_assert_eq!(left.count, right.count);
        prop_assert!(close(left.mean, right.mean, 1e-9));
        prop_assert!(close(left.std, right.std, 1e-6));
        prop_assert_eq!(left.min, right.min);
        prop_assert_eq!(left.max, right.max);
    }

    /// `RunningStats::from_summary` round-trips a summary exactly enough
    /// that re-merging it is indistinguishable from the original stream.
    #[test]
    fn from_summary_round_trip(
        xs in proptest::collection::vec(-1e4f64..1e4, 2..96),
    ) {
        let s = summarize(&xs);
        let back = RunningStats::from_summary(s.count, s.mean, s.std, s.min, s.max);
        prop_assert_eq!(back.count(), xs.len() as u64);
        prop_assert!(close(back.mean(), s.mean, 1e-12));
        prop_assert!(close(back.std_dev(), s.std, 1e-9));
        prop_assert_eq!(back.min(), s.min);
        prop_assert_eq!(back.max(), s.max);
    }

    /// Histogram merge is exact: merging per-node histograms equals one
    /// histogram over the concatenated stream, and summaries round-trip
    /// counts and quantiles.
    #[test]
    fn histogram_merge_is_exact(
        xs in proptest::collection::vec(0u64..2_000_000, 0..96),
        ys in proptest::collection::vec(0u64..2_000_000, 0..96),
    ) {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &both);
        let summary = both.to_summary();
        let back = LogHistogram::from_summary(&summary);
        prop_assert_eq!(back.count(), both.count());
        for pct in [50.0, 95.0, 99.0, 99.9] {
            prop_assert_eq!(back.quantile(pct), both.quantile(pct));
        }
    }

    /// Histogram quantiles agree with the exact nearest-rank percentile
    /// within one bucket width — the bound e19 asserts fleet-wide.
    #[test]
    fn histogram_quantile_within_one_bucket(
        mut xs in proptest::collection::vec(0u64..50_000_000, 1..128),
        pct in 1.0f64..100.0,
    ) {
        let mut h = LogHistogram::new();
        for &v in &xs {
            h.record(v);
        }
        xs.sort_unstable();
        let rank = ((pct / 100.0) * xs.len() as f64).ceil() as usize;
        let exact = xs[rank.clamp(1, xs.len()) - 1];
        let got = h.quantile(pct);
        let width = h.quantile_width(pct);
        prop_assert!(
            got <= exact && exact < got + width,
            "p{}: hist {} exact {} width {}", pct, got, exact, width
        );
    }
}
