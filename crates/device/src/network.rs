//! Connectivity model: bandwidth, latency, energy and availability.
//!
//! §III-A: users may prefer "a model that is fast to download on a slow
//! network connection compared to a larger model when he is connected to
//! WiFi"; §III-B wants telemetry "transmitted to the cloud when the
//! device is connected to WiFi". Both decisions key off this model.

use serde::{Deserialize, Serialize};

/// The connectivity state a device can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// No connectivity (§III-C: devices "might not even be connected to the
    /// internet the moment they are evaluating the model").
    Offline,
    /// Bluetooth LE via a gateway.
    Ble,
    /// LTE-M / NB-IoT cellular.
    Cellular,
    /// Local WiFi.
    Wifi,
}

impl NetworkKind {
    /// All kinds, slowest first.
    #[must_use]
    pub fn all() -> [NetworkKind; 4] {
        [
            NetworkKind::Offline,
            NetworkKind::Ble,
            NetworkKind::Cellular,
            NetworkKind::Wifi,
        ]
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::Offline => "offline",
            NetworkKind::Ble => "ble",
            NetworkKind::Cellular => "cellular",
            NetworkKind::Wifi => "wifi",
        }
    }

    /// Canonical link parameters for this kind.
    #[must_use]
    pub fn model(self) -> NetworkModel {
        match self {
            NetworkKind::Offline => NetworkModel {
                kind: self,
                bandwidth_bps: 0.0,
                rtt_ms: f64::INFINITY,
                energy_per_byte_uj: 0.0,
                metered: false,
            },
            NetworkKind::Ble => NetworkModel {
                kind: self,
                bandwidth_bps: 32.0e3,
                rtt_ms: 90.0,
                energy_per_byte_uj: 1.2,
                metered: false,
            },
            NetworkKind::Cellular => NetworkModel {
                kind: self,
                bandwidth_bps: 250.0e3,
                rtt_ms: 120.0,
                energy_per_byte_uj: 2.5,
                metered: true,
            },
            NetworkKind::Wifi => NetworkModel {
                kind: self,
                bandwidth_bps: 10.0e6,
                rtt_ms: 15.0,
                energy_per_byte_uj: 0.12,
                metered: false,
            },
        }
    }
}

/// Link parameters used by cost estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Which kind this model describes.
    pub kind: NetworkKind,
    /// Usable throughput, bytes/s × 8.
    pub bandwidth_bps: f64,
    /// Round-trip latency in milliseconds.
    pub rtt_ms: f64,
    /// Radio energy per byte moved, microjoules.
    pub energy_per_byte_uj: f64,
    /// Whether traffic costs the user money (cellular data caps) — the
    /// telemetry uploader defers on metered links.
    pub metered: bool,
}

impl NetworkModel {
    /// Transfer time for a payload, milliseconds (∞ when offline).
    #[must_use]
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        if self.bandwidth_bps <= 0.0 {
            return f64::INFINITY;
        }
        self.rtt_ms + (bytes as f64 * 8.0) / self.bandwidth_bps * 1000.0
    }

    /// Radio energy for a payload, millijoules.
    #[must_use]
    pub fn transfer_energy_mj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_uj / 1000.0
    }

    /// Whether bulk uploads (telemetry, federated updates) should proceed
    /// on this link per the §III-B "when connected to WiFi" policy.
    #[must_use]
    pub fn bulk_upload_ok(&self) -> bool {
        !self.metered && self.bandwidth_bps > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_transfers_never_finish() {
        let m = NetworkKind::Offline.model();
        assert!(m.transfer_ms(1).is_infinite());
        assert!(!m.bulk_upload_ok());
    }

    #[test]
    fn wifi_is_fastest() {
        let kinds = NetworkKind::all();
        let times: Vec<f64> = kinds
            .iter()
            .map(|k| k.model().transfer_ms(100_000))
            .collect();
        for pair in times.windows(2) {
            assert!(pair[0] >= pair[1], "slower kind should take longer");
        }
    }

    #[test]
    fn cellular_is_metered_wifi_is_not() {
        assert!(NetworkKind::Cellular.model().metered);
        assert!(!NetworkKind::Wifi.model().metered);
        assert!(NetworkKind::Wifi.model().bulk_upload_ok());
        assert!(!NetworkKind::Cellular.model().bulk_upload_ok());
    }

    #[test]
    fn transfer_time_includes_rtt() {
        let m = NetworkKind::Wifi.model();
        assert!((m.transfer_ms(0) - m.rtt_ms).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_bytes() {
        let m = NetworkKind::Ble.model();
        assert!((m.transfer_energy_mj(2000) - 2.0 * m.transfer_energy_mj(1000)).abs() < 1e-9);
    }
}
