//! Fleet generation and per-device dynamic state.
//!
//! A [`Fleet`] is the population every platform experiment runs against:
//! hundreds of devices with a realistic class mix, each with evolving
//! battery and connectivity state. Sweeps across the fleet use rayon.

use crate::battery::BatteryModel;
use crate::network::NetworkKind;
use crate::profile::{DeviceClass, DeviceProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Dynamic, time-varying state of one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceState {
    /// Battery model and charge.
    pub battery: BatteryModel,
    /// Current connectivity.
    pub network: NetworkKind,
}

/// One simulated edge device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Fleet-unique identifier.
    pub id: u32,
    /// Static hardware capabilities.
    pub profile: DeviceProfile,
    /// Dynamic state.
    pub state: DeviceState,
}

impl Device {
    /// Whether the device currently has any connectivity.
    #[must_use]
    pub fn online(&self) -> bool {
        self.state.network != NetworkKind::Offline
    }
}

/// A population of simulated devices.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The devices.
    pub devices: Vec<Device>,
    seed: u64,
    step: u64,
}

/// Class mix for fleet generation: `(class, weight)` pairs.
pub type ClassMix = [(DeviceClass, f64); 6];

/// A default mix skewed toward constrained devices, matching the paper's
/// "billions of edge devices" framing: mostly MCUs, some phones, few
/// accelerators.
#[must_use]
pub fn default_mix() -> ClassMix {
    [
        (DeviceClass::McuM0, 0.25),
        (DeviceClass::McuM4, 0.30),
        (DeviceClass::McuM7, 0.20),
        (DeviceClass::MobileLow, 0.15),
        (DeviceClass::MobileHigh, 0.08),
        (DeviceClass::EdgeAccel, 0.02),
    ]
}

impl Fleet {
    /// Generate `n` devices from `mix` with a fixed seed.
    #[must_use]
    pub fn generate(n: usize, mix: &ClassMix, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        let devices = (0..n as u32)
            .map(|id| {
                let mut pick = rng.gen_range(0.0..total);
                let mut class = mix[mix.len() - 1].0;
                for (c, w) in mix {
                    if pick < *w {
                        class = *c;
                        break;
                    }
                    pick -= w;
                }
                let profile = class.profile();
                // Capacity scales with class: coin cell → phone battery.
                let capacity = match class {
                    DeviceClass::McuM0 => 2.0e3,
                    DeviceClass::McuM4 => 8.0e3,
                    DeviceClass::McuM7 => 2.0e4,
                    DeviceClass::MobileLow => 3.0e7,
                    DeviceClass::MobileHigh => 5.0e7,
                    DeviceClass::EdgeAccel => 1.0e9,
                };
                let mut battery = BatteryModel::new(capacity);
                battery.charge_mj = capacity * rng.gen_range(0.2..1.0);
                battery.plugged = matches!(class, DeviceClass::EdgeAccel) || rng.gen_bool(0.25);
                let network = Self::sample_network(&mut rng, class);
                Device {
                    id,
                    profile,
                    state: DeviceState { battery, network },
                }
            })
            .collect();
        Fleet {
            devices,
            seed,
            step: 0,
        }
    }

    fn sample_network(rng: &mut StdRng, class: DeviceClass) -> NetworkKind {
        // MCUs are mostly BLE/offline; phones mostly WiFi/cellular.
        let r: f64 = rng.gen_range(0.0..1.0);
        match class {
            DeviceClass::McuM0 | DeviceClass::McuM4 | DeviceClass::McuM7 => {
                if r < 0.25 {
                    NetworkKind::Offline
                } else if r < 0.75 {
                    NetworkKind::Ble
                } else if r < 0.9 {
                    NetworkKind::Cellular
                } else {
                    NetworkKind::Wifi
                }
            }
            DeviceClass::MobileLow | DeviceClass::MobileHigh => {
                if r < 0.05 {
                    NetworkKind::Offline
                } else if r < 0.45 {
                    NetworkKind::Cellular
                } else {
                    NetworkKind::Wifi
                }
            }
            DeviceClass::EdgeAccel => NetworkKind::Wifi,
        }
    }

    /// Advance every device's dynamic state by one simulation step:
    /// batteries drain/charge, connectivity churns.
    pub fn step(&mut self) {
        self.step += 1;
        let step = self.step;
        let seed = self.seed;
        self.devices.par_iter_mut().for_each(|d| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (u64::from(d.id) << 24) ^ step.wrapping_mul(0x9e37_79b9),
            );
            // Idle drain for a nominal 60 s window.
            let idle_mj = d.profile.idle_power_mw * 60.0;
            if d.state.battery.plugged {
                d.state.battery.charge_mj_add(idle_mj * 20.0);
            } else {
                let _ = d.state.battery.drain_mj(idle_mj);
            }
            // 10% chance to flip plugged state (except always-on gateways).
            if d.profile.class != DeviceClass::EdgeAccel && rng.gen_bool(0.10) {
                d.state.battery.plugged = !d.state.battery.plugged;
            }
            // 20% chance of connectivity churn.
            if rng.gen_bool(0.20) {
                d.state.network = Self::sample_network(&mut rng, d.profile.class);
            }
        });
    }

    /// Split the fleet into `n` disjoint sub-fleets, round-robin by index
    /// so each keeps roughly the same class mix. Device ids are preserved
    /// (they stay fleet-unique across the partition); each sub-fleet gets
    /// a distinct derived seed so later churn streams stay independent.
    #[must_use]
    pub fn partition(&self, n: usize) -> Vec<Fleet> {
        assert!(n > 0, "cannot partition into zero fleets");
        let mut parts: Vec<Vec<Device>> = vec![Vec::new(); n];
        for (i, device) in self.devices.iter().enumerate() {
            parts[i % n].push(device.clone());
        }
        parts
            .into_iter()
            .enumerate()
            .map(|(i, devices)| Fleet {
                devices,
                seed: self.seed.wrapping_add(i as u64 + 1),
                step: self.step,
            })
            .collect()
    }

    /// Count of devices per class, index-aligned with [`DeviceClass::all`].
    #[must_use]
    pub fn class_census(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for d in &self.devices {
            let idx = DeviceClass::all()
                .iter()
                .position(|c| *c == d.profile.class)
                .expect("known class");
            counts[idx] += 1;
        }
        counts
    }

    /// Devices currently reachable (any connectivity).
    #[must_use]
    pub fn online(&self) -> Vec<&Device> {
        self.devices.iter().filter(|d| d.online()).collect()
    }

    /// Parallel map over all devices (rayon), collecting results in id
    /// order — the fleet-sweep primitive used by deployment/observability.
    pub fn par_map<T: Send>(&self, f: impl Fn(&Device) -> T + Sync + Send) -> Vec<T> {
        self.devices.par_iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Fleet::generate(50, &default_mix(), 7);
        let b = Fleet::generate(50, &default_mix(), 7);
        assert_eq!(a.class_census(), b.class_census());
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.state.network, y.state.network);
        }
    }

    #[test]
    fn census_roughly_matches_mix() {
        let f = Fleet::generate(2000, &default_mix(), 1);
        let census = f.class_census();
        assert_eq!(census.iter().sum::<usize>(), 2000);
        // MCU classes should dominate (75% of the default mix).
        let mcus = census[0] + census[1] + census[2];
        assert!(mcus > 1300, "mcu share {mcus}/2000");
        // Some accelerators exist but are rare.
        assert!(census[5] > 0 && census[5] < 120, "accel {}", census[5]);
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        let f = Fleet::generate(50, &default_mix(), 11);
        let parts = f.partition(3);
        assert_eq!(parts.len(), 3);
        let mut seen: Vec<u32> = parts
            .iter()
            .flat_map(|p| p.devices.iter().map(|d| d.id))
            .collect();
        seen.sort_unstable();
        let all: Vec<u32> = f.devices.iter().map(|d| d.id).collect();
        assert_eq!(seen, all, "every device lands in exactly one sub-fleet");
        let sizes: Vec<usize> = parts.iter().map(|p| p.devices.len()).collect();
        assert_eq!(sizes, vec![17, 17, 16], "round-robin keeps sizes even");
    }

    #[test]
    fn step_churns_state() {
        let mut f = Fleet::generate(200, &default_mix(), 2);
        let before: Vec<NetworkKind> = f.devices.iter().map(|d| d.state.network).collect();
        for _ in 0..5 {
            f.step();
        }
        let after: Vec<NetworkKind> = f.devices.iter().map(|d| d.state.network).collect();
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(changed > 20, "connectivity should churn, changed={changed}");
    }

    #[test]
    fn unplugged_batteries_drain_on_step() {
        let mut f = Fleet::generate(100, &default_mix(), 3);
        let track: Vec<(u32, f64)> = f
            .devices
            .iter()
            .filter(|d| !d.state.battery.plugged)
            .map(|d| (d.id, d.state.battery.charge_mj))
            .collect();
        f.step();
        let mut drained = 0;
        for (id, before) in &track {
            let d = &f.devices[*id as usize];
            if !d.state.battery.plugged && d.state.battery.charge_mj < *before {
                drained += 1;
            }
        }
        assert!(drained > track.len() / 2, "most unplugged devices drain");
    }

    #[test]
    fn par_map_preserves_order() {
        let f = Fleet::generate(64, &default_mix(), 4);
        let ids = f.par_map(|d| d.id);
        assert_eq!(ids, (0..64).collect::<Vec<u32>>());
    }
}
