//! Battery state model.
//!
//! §III-A: *"If the device is connected to an external power supply, energy
//! consumption might be less of an issue compared to when it is unplugged
//! and has to rely on battery power. This might mean that a different model
//! could be preferred, depending on the battery level."* The deployment
//! crate's model selector consumes exactly this state.

use serde::{Deserialize, Serialize};

/// A simple coulomb-counting battery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatteryModel {
    /// Full capacity in millijoules.
    pub capacity_mj: f64,
    /// Remaining charge in millijoules.
    pub charge_mj: f64,
    /// Whether external power is attached.
    pub plugged: bool,
}

impl BatteryModel {
    /// A full battery of `capacity_mj` millijoules.
    #[must_use]
    pub fn new(capacity_mj: f64) -> Self {
        BatteryModel {
            capacity_mj,
            charge_mj: capacity_mj,
            plugged: false,
        }
    }

    /// State of charge in `[0,1]`.
    #[must_use]
    pub fn level(&self) -> f64 {
        (self.charge_mj / self.capacity_mj).clamp(0.0, 1.0)
    }

    /// Drain `mj` millijoules (no-op while plugged). Returns `false` when
    /// the battery is empty and the draw could not be satisfied.
    pub fn drain_mj(&mut self, mj: f64) -> bool {
        if self.plugged {
            return true;
        }
        if self.charge_mj >= mj {
            self.charge_mj -= mj;
            true
        } else {
            self.charge_mj = 0.0;
            false
        }
    }

    /// Charge by `mj` millijoules, capped at capacity.
    pub fn charge_mj_add(&mut self, mj: f64) {
        self.charge_mj = (self.charge_mj + mj).min(self.capacity_mj);
    }

    /// Whether the device is in a low-power state (<20% and unplugged) —
    /// the threshold at which the selector prefers cheaper model variants.
    #[must_use]
    pub fn is_low(&self) -> bool {
        !self.plugged && self.level() < 0.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_and_level() {
        let mut b = BatteryModel::new(1000.0);
        assert_eq!(b.level(), 1.0);
        assert!(b.drain_mj(250.0));
        assert!((b.level() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn plugged_devices_do_not_drain() {
        let mut b = BatteryModel::new(1000.0);
        b.plugged = true;
        assert!(b.drain_mj(1e9));
        assert_eq!(b.level(), 1.0);
    }

    #[test]
    fn empty_battery_reports_failure() {
        let mut b = BatteryModel::new(100.0);
        assert!(!b.drain_mj(200.0));
        assert_eq!(b.level(), 0.0);
    }

    #[test]
    fn charging_caps_at_capacity() {
        let mut b = BatteryModel::new(100.0);
        b.drain_mj(50.0);
        b.charge_mj_add(500.0);
        assert_eq!(b.level(), 1.0);
    }

    #[test]
    fn low_battery_threshold() {
        let mut b = BatteryModel::new(100.0);
        b.drain_mj(85.0);
        assert!(b.is_low());
        b.plugged = true;
        assert!(!b.is_low(), "plugged is never low");
    }
}
