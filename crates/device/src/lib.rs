//! Simulated fragmented edge-device fleet.
//!
//! §IV: *"The edge landscape is however much more fragmented with a wide
//! range of different devices from different vendors, each with different
//! software support and hardware capabilities."* The sandbox has no
//! physical MCUs, so per DESIGN.md's substitution table this crate models
//! them parametrically: six device classes spanning Cortex-M0+ to an edge
//! accelerator, each with compute throughput, memory, supported numeric
//! schemes, optional secure element, a battery model and a network model.
//!
//! The numbers are calibrated to public datasheet orders of magnitude
//! (an M4 does ~10⁷ MACs/s at ~0.5 nJ/MAC; WiFi moves ~10⁶ B/s at ~0.1
//! µJ/B). Experiments measure *relative* outcomes — which model variant is
//! selected, where crossovers fall — which is what survives the
//! simulation-for-silicon substitution.

pub mod battery;
pub mod estimate;
pub mod fleet;
pub mod network;
pub mod profile;

pub use battery::BatteryModel;
pub use estimate::{download_cost, inference_cost, Cost};
pub use fleet::{default_mix, ClassMix, Device, DeviceState, Fleet};
pub use network::{NetworkKind, NetworkModel};
pub use profile::{DeviceClass, DeviceProfile, NumericScheme};

/// Milliseconds of simulated time; the workspace never reads wall clocks
/// inside library logic (DESIGN.md §3 "Determinism").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Advance by `ms` milliseconds.
    #[must_use]
    pub fn plus_ms(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }

    /// Elapsed milliseconds since `earlier` (saturating).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// A monotonically advancing simulation clock.
#[derive(Debug, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// New clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock.
    pub fn advance_ms(&mut self, ms: u64) {
        self.now = self.now.plus_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        let t0 = c.now();
        c.advance_ms(10);
        c.advance_ms(5);
        assert_eq!(c.now().since(t0), 15);
        assert_eq!(t0.since(c.now()), 0, "saturating backwards");
    }
}
