//! Static cost estimation: latency and energy of inference and downloads.

use crate::network::NetworkModel;
use crate::profile::{DeviceProfile, NumericScheme};

/// Predicted cost of an operation on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Wall-clock milliseconds.
    pub latency_ms: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
}

impl Cost {
    /// A zero cost.
    #[must_use]
    pub fn zero() -> Self {
        Cost {
            latency_ms: 0.0,
            energy_mj: 0.0,
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            latency_ms: self.latency_ms + other.latency_ms,
            energy_mj: self.energy_mj + other.energy_mj,
        }
    }
}

/// Cost of one forward pass of `macs` multiply-accumulates under `scheme`.
/// Returns `None` when the device lacks native support for the scheme
/// (§IV: "we will first need to check that all required operations are
/// supported by the underlying platform").
#[must_use]
pub fn inference_cost(profile: &DeviceProfile, macs: u64, scheme: NumericScheme) -> Option<Cost> {
    let rate = profile.effective_macs_per_sec(scheme);
    if rate <= 0.0 {
        return None;
    }
    let seconds = macs as f64 / rate;
    // Lower-precision MACs cost proportionally less energy too.
    let energy_nj = macs as f64 * profile.energy_per_mac_nj / f64::from(scheme.speedup());
    Some(Cost {
        latency_ms: seconds * 1000.0,
        energy_mj: energy_nj * 1e-6 + profile.idle_power_mw * seconds,
    })
}

/// Cost of downloading `bytes` over `net`. `None` when offline.
#[must_use]
pub fn download_cost(net: &NetworkModel, bytes: u64) -> Option<Cost> {
    let ms = net.transfer_ms(bytes);
    if !ms.is_finite() {
        return None;
    }
    Some(Cost {
        latency_ms: ms,
        energy_mj: net.transfer_energy_mj(bytes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkKind;
    use crate::profile::DeviceClass;

    #[test]
    fn unsupported_scheme_is_none() {
        let p = DeviceClass::McuM0.profile();
        assert!(inference_cost(&p, 1000, NumericScheme::F32).is_none());
        assert!(inference_cost(&p, 1000, NumericScheme::Int8).is_some());
    }

    #[test]
    fn faster_devices_run_faster() {
        let macs = 1_000_000;
        let slow = inference_cost(&DeviceClass::McuM4.profile(), macs, NumericScheme::Int8)
            .unwrap()
            .latency_ms;
        let fast = inference_cost(&DeviceClass::EdgeAccel.profile(), macs, NumericScheme::Int8)
            .unwrap()
            .latency_ms;
        assert!(fast < slow / 100.0, "accel {fast}ms vs M4 {slow}ms");
    }

    #[test]
    fn quantization_reduces_latency_and_energy() {
        let p = DeviceClass::McuM7.profile();
        let macs = 10_000_000;
        let f = inference_cost(&p, macs, NumericScheme::F32).unwrap();
        let b = inference_cost(&p, macs, NumericScheme::Binary).unwrap();
        assert!(b.latency_ms < f.latency_ms / 4.0);
        assert!(b.energy_mj < f.energy_mj);
    }

    #[test]
    fn offline_download_is_none() {
        assert!(download_cost(&NetworkKind::Offline.model(), 10).is_none());
        assert!(download_cost(&NetworkKind::Wifi.model(), 10).is_some());
    }

    #[test]
    fn cost_addition() {
        let a = Cost {
            latency_ms: 1.0,
            energy_mj: 2.0,
        };
        let b = Cost {
            latency_ms: 3.0,
            energy_mj: 4.0,
        };
        let c = a.plus(b);
        assert_eq!(c.latency_ms, 4.0);
        assert_eq!(c.energy_mj, 6.0);
        assert_eq!(Cost::zero().plus(a), a);
    }
}
