//! Device classes and hardware capability profiles.

use serde::{Deserialize, Serialize};

/// Numeric schemes a device can execute natively. §III-A: *"different
/// hardware platforms might support a different set of operations and bit
/// widths"* — this is that set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumericScheme {
    /// 32-bit float.
    F32,
    /// 8-bit integer kernels.
    Int8,
    /// 4-bit integer kernels.
    Int4,
    /// 2-bit integer kernels.
    Int2,
    /// Binary XNOR kernels.
    Binary,
}

impl NumericScheme {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NumericScheme::F32 => "f32",
            NumericScheme::Int8 => "int8",
            NumericScheme::Int4 => "int4",
            NumericScheme::Int2 => "int2",
            NumericScheme::Binary => "binary",
        }
    }

    /// Throughput multiplier relative to the device's f32 MAC rate when
    /// the scheme has hardware support (§III-A: "Special support from
    /// hardware is needed to obtain an increased throughput").
    #[must_use]
    pub fn speedup(self) -> f32 {
        match self {
            NumericScheme::F32 => 1.0,
            NumericScheme::Int8 => 2.0,
            NumericScheme::Int4 => 3.0,
            NumericScheme::Int2 => 4.0,
            NumericScheme::Binary => 8.0,
        }
    }

    /// Bytes per weight for size accounting.
    #[must_use]
    pub fn bytes_per_weight(self) -> f32 {
        match self {
            NumericScheme::F32 => 4.0,
            NumericScheme::Int8 => 1.0,
            NumericScheme::Int4 => 0.5,
            NumericScheme::Int2 => 0.25,
            NumericScheme::Binary => 0.125,
        }
    }
}

/// The six device classes of the simulated landscape, weakest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Cortex-M0+-class sensor node (no FPU).
    McuM0,
    /// Cortex-M4-class MCU with DSP extensions.
    McuM4,
    /// Cortex-M7-class MCU, TrustZone-M available.
    McuM7,
    /// Low-end smartphone / SBC core.
    MobileLow,
    /// Flagship smartphone core with a trusted execution environment.
    MobileHigh,
    /// Edge accelerator (NPU/GPU class) attached to a gateway.
    EdgeAccel,
}

impl DeviceClass {
    /// All classes, weakest first.
    #[must_use]
    pub fn all() -> [DeviceClass; 6] {
        [
            DeviceClass::McuM0,
            DeviceClass::McuM4,
            DeviceClass::McuM7,
            DeviceClass::MobileLow,
            DeviceClass::MobileHigh,
            DeviceClass::EdgeAccel,
        ]
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::McuM0 => "mcu-m0",
            DeviceClass::McuM4 => "mcu-m4",
            DeviceClass::McuM7 => "mcu-m7",
            DeviceClass::MobileLow => "mobile-low",
            DeviceClass::MobileHigh => "mobile-high",
            DeviceClass::EdgeAccel => "edge-accel",
        }
    }

    /// The canonical hardware profile for this class.
    #[must_use]
    pub fn profile(self) -> DeviceProfile {
        use NumericScheme::*;
        match self {
            DeviceClass::McuM0 => DeviceProfile {
                class: self,
                macs_per_sec: 2.0e6,
                mem_kb: 32,
                flash_kb: 256,
                schemes: vec![Int8, Binary],
                has_spe: false,
                energy_per_mac_nj: 1.2,
                idle_power_mw: 0.5,
            },
            DeviceClass::McuM4 => DeviceProfile {
                class: self,
                macs_per_sec: 1.0e7,
                mem_kb: 128,
                flash_kb: 1024,
                schemes: vec![F32, Int8, Int4, Binary],
                has_spe: false,
                energy_per_mac_nj: 0.6,
                idle_power_mw: 1.5,
            },
            DeviceClass::McuM7 => DeviceProfile {
                class: self,
                macs_per_sec: 5.0e7,
                mem_kb: 512,
                flash_kb: 2048,
                schemes: vec![F32, Int8, Int4, Int2, Binary],
                has_spe: true,
                energy_per_mac_nj: 0.45,
                idle_power_mw: 4.0,
            },
            DeviceClass::MobileLow => DeviceProfile {
                class: self,
                macs_per_sec: 5.0e8,
                mem_kb: 512 * 1024,
                flash_kb: 16 * 1024 * 1024,
                schemes: vec![F32, Int8, Int4, Binary],
                has_spe: false,
                energy_per_mac_nj: 0.25,
                idle_power_mw: 30.0,
            },
            DeviceClass::MobileHigh => DeviceProfile {
                class: self,
                macs_per_sec: 5.0e9,
                mem_kb: 4 * 1024 * 1024,
                flash_kb: 64 * 1024 * 1024,
                schemes: vec![F32, Int8, Int4, Int2, Binary],
                has_spe: true,
                energy_per_mac_nj: 0.1,
                idle_power_mw: 80.0,
            },
            DeviceClass::EdgeAccel => DeviceProfile {
                class: self,
                macs_per_sec: 5.0e10,
                mem_kb: 8 * 1024 * 1024,
                flash_kb: 128 * 1024 * 1024,
                schemes: vec![F32, Int8, Int4, Int2, Binary],
                has_spe: true,
                energy_per_mac_nj: 0.03,
                idle_power_mw: 2000.0,
            },
        }
    }
}

/// Hardware capabilities of one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// The class this profile was derived from.
    pub class: DeviceClass,
    /// Sustained f32-equivalent multiply-accumulates per second.
    pub macs_per_sec: f64,
    /// RAM in KiB.
    pub mem_kb: u64,
    /// Flash/storage in KiB.
    pub flash_kb: u64,
    /// Natively supported numeric schemes.
    pub schemes: Vec<NumericScheme>,
    /// Whether a Secure Processing Environment is available (§V, §VI).
    pub has_spe: bool,
    /// Energy per MAC in nanojoules.
    pub energy_per_mac_nj: f64,
    /// Idle power draw in milliwatts.
    pub idle_power_mw: f64,
}

impl DeviceProfile {
    /// Whether the device can execute `scheme` natively.
    #[must_use]
    pub fn supports(&self, scheme: NumericScheme) -> bool {
        self.schemes.contains(&scheme)
    }

    /// Effective MAC rate when running `scheme` (0 if unsupported).
    #[must_use]
    pub fn effective_macs_per_sec(&self, scheme: NumericScheme) -> f64 {
        if self.supports(scheme) {
            self.macs_per_sec * f64::from(scheme.speedup())
        } else {
            0.0
        }
    }

    /// Whether a model of `bytes` fits in flash alongside a 25% headroom
    /// reserve for the application.
    #[must_use]
    pub fn fits_in_flash(&self, bytes: u64) -> bool {
        bytes <= self.flash_kb * 1024 * 3 / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_by_compute() {
        let classes = DeviceClass::all();
        for pair in classes.windows(2) {
            assert!(
                pair[0].profile().macs_per_sec < pair[1].profile().macs_per_sec,
                "{:?} should be slower than {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn m0_has_no_f32() {
        let p = DeviceClass::McuM0.profile();
        assert!(!p.supports(NumericScheme::F32));
        assert!(p.supports(NumericScheme::Int8));
        assert_eq!(p.effective_macs_per_sec(NumericScheme::F32), 0.0);
    }

    #[test]
    fn speedups_scale_effective_rate() {
        let p = DeviceClass::McuM4.profile();
        let f32_rate = p.effective_macs_per_sec(NumericScheme::F32);
        let int8_rate = p.effective_macs_per_sec(NumericScheme::Int8);
        assert!((int8_rate / f32_rate - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spe_availability_tracks_paper_claims() {
        // §VI: SPEs are "not always available on the low-end edge devices".
        assert!(!DeviceClass::McuM0.profile().has_spe);
        assert!(!DeviceClass::McuM4.profile().has_spe);
        assert!(DeviceClass::MobileHigh.profile().has_spe);
    }

    #[test]
    fn flash_budget_enforced() {
        let p = DeviceClass::McuM0.profile(); // 256 KiB flash
        assert!(p.fits_in_flash(100 * 1024));
        assert!(!p.fits_in_flash(250 * 1024)); // over the 75% budget
    }

    #[test]
    fn energy_per_mac_decreases_with_class() {
        let classes = DeviceClass::all();
        for pair in classes.windows(2) {
            assert!(
                pair[0].profile().energy_per_mac_nj >= pair[1].profile().energy_per_mac_nj,
                "{:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}
