//! ChaCha20 stream cipher (RFC 8439) and an encrypt-then-MAC sealed box.
//!
//! §V of the paper: "encryption techniques can protect the model while it is
//! downloaded or stored on the device. The model is then decrypted as it is
//! loaded in memory". [`SealedBox`] is exactly that primitive — ChaCha20 for
//! confidentiality plus HMAC-SHA256 over the ciphertext for integrity — and
//! experiment E10 measures its "increased computational cost".

use crate::hmac::hmac_sha256;
use crate::{ct_eq, CryptoError};

/// ChaCha20 keystream generator / stream cipher.
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Create a cipher with a 256-bit key and 96-bit nonce, starting at
    /// block `counter` (RFC 8439 uses counter = 1 for encryption).
    #[must_use]
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
        }
    }

    /// Produce the 64-byte keystream block for the current counter and
    /// advance the counter.
    fn next_block(&mut self) -> [u8; 64] {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        out
    }

    /// XOR `data` with the keystream in place (encryption == decryption).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let ks = self.next_block();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Fill `out` with raw keystream bytes (used by the DRBG).
    pub fn keystream(&mut self, out: &mut [u8]) {
        out.fill(0);
        self.apply(out);
    }
}

/// Authenticated encryption container: ChaCha20 + HMAC-SHA256
/// (encrypt-then-MAC). The MAC covers nonce ‖ associated-data length ‖
/// associated data ‖ ciphertext so headers can be bound to the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    /// Public per-message nonce.
    pub nonce: [u8; 12],
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 tag.
    pub tag: [u8; 32],
}

fn mac_input(nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(12 + 8 + aad.len() + ciphertext.len());
    m.extend_from_slice(nonce);
    m.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    m.extend_from_slice(aad);
    m.extend_from_slice(ciphertext);
    m
}

impl SealedBox {
    /// Encrypt `plaintext` under `key`, binding `aad` into the tag.
    ///
    /// Key separation: the encryption key is `HKDF(key, "enc")` and the MAC
    /// key `HKDF(key, "mac")`, so one input key never serves two roles.
    #[must_use]
    pub fn seal(key: &[u8; 32], nonce: [u8; 12], aad: &[u8], plaintext: &[u8]) -> Self {
        let enc_key_v = crate::hmac::hkdf(b"tinymlops.sealedbox", key, b"enc", 32);
        let mac_key = crate::hmac::hkdf(b"tinymlops.sealedbox", key, b"mac", 32);
        let mut enc_key = [0u8; 32];
        enc_key.copy_from_slice(&enc_key_v);
        let mut ct = plaintext.to_vec();
        ChaCha20::new(&enc_key, &nonce, 1).apply(&mut ct);
        let tag = hmac_sha256(&mac_key, &mac_input(&nonce, aad, &ct));
        SealedBox {
            nonce,
            ciphertext: ct,
            tag,
        }
    }

    /// Verify the tag and decrypt. Fails without revealing plaintext if the
    /// ciphertext or `aad` were tampered with.
    pub fn open(&self, key: &[u8; 32], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let enc_key_v = crate::hmac::hkdf(b"tinymlops.sealedbox", key, b"enc", 32);
        let mac_key = crate::hmac::hkdf(b"tinymlops.sealedbox", key, b"mac", 32);
        let want = hmac_sha256(&mac_key, &mac_input(&self.nonce, aad, &self.ciphertext));
        if !ct_eq(&want, &self.tag) {
            return Err(CryptoError::VerificationFailed);
        }
        let mut enc_key = [0u8; 32];
        enc_key.copy_from_slice(&enc_key_v);
        let mut pt = self.ciphertext.clone();
        ChaCha20::new(&enc_key, &self.nonce, 1).apply(&mut pt);
        Ok(pt)
    }

    /// Serialized size in bytes (nonce + tag + ciphertext).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        12 + 32 + self.ciphertext.len()
    }

    /// Flat byte encoding: nonce ‖ tag ‖ ciphertext.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parse the flat byte encoding produced by [`SealedBox::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < 44 {
            return Err(CryptoError::Malformed("sealed box too short"));
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes[..12]);
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&bytes[12..44]);
        Ok(SealedBox {
            nonce,
            tag,
            ciphertext: bytes[44..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    // RFC 8439 §2.3.2: keystream block with the test key/nonce, counter 1.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let block = c.next_block();
        assert_eq!(to_hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(to_hex(&block[48..64]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    // RFC 8439 §2.4.2: full encryption test ("Ladies and Gentlemen...").
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        assert_eq!(
            to_hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(to_hex(&data[64..80]), "07ca0dbf500d6a6156a38e088a22b65e");
        // Round trip.
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn sealed_box_round_trip() {
        let key = [7u8; 32];
        let b = SealedBox::seal(&key, [1u8; 12], b"model-v1", b"weights here");
        assert_eq!(b.open(&key, b"model-v1").unwrap(), b"weights here");
    }

    #[test]
    fn sealed_box_detects_ciphertext_tamper() {
        let key = [7u8; 32];
        let mut b = SealedBox::seal(&key, [1u8; 12], b"", b"payload");
        b.ciphertext[0] ^= 1;
        assert_eq!(b.open(&key, b""), Err(CryptoError::VerificationFailed));
    }

    #[test]
    fn sealed_box_detects_aad_mismatch() {
        let key = [7u8; 32];
        let b = SealedBox::seal(&key, [1u8; 12], b"header-a", b"payload");
        assert_eq!(
            b.open(&key, b"header-b"),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn sealed_box_wrong_key_fails() {
        let b = SealedBox::seal(&[1u8; 32], [0u8; 12], b"", b"secret");
        assert!(b.open(&[2u8; 32], b"").is_err());
    }

    #[test]
    fn sealed_box_bytes_round_trip() {
        let key = [9u8; 32];
        let b = SealedBox::seal(&key, [3u8; 12], b"aad", b"some model bytes");
        let parsed = SealedBox::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.open(&key, b"aad").unwrap(), b"some model bytes");
    }

    #[test]
    fn from_bytes_rejects_short_input() {
        assert!(SealedBox::from_bytes(&[0u8; 43]).is_err());
    }
}
