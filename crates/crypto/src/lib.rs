//! From-scratch cryptographic substrate for the TinyMLOps platform.
//!
//! The paper's §III-C (offline metering), §V (model IP protection) and §VI
//! (verifiable execution) all assume cryptographic primitives that a real
//! TinyMLOps deployment would ship on-device. This crate implements them
//! without external dependencies so the whole workspace stays auditable:
//!
//! * [`sha256()`] — SHA-256 (FIPS 180-4), the workspace-wide content hash.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869) key derivation.
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439) used for model
//!   encryption, plus an encrypt-then-MAC [`chacha20::SealedBox`].
//! * [`sig`] — hash-based signatures: Lamport one-time signatures composed
//!   into a Merkle many-time scheme (the classic embedded/post-quantum
//!   construction), used to sign deployment capsules.
//! * [`drbg`] — a deterministic random bit generator built on ChaCha20,
//!   used wherever the platform needs reproducible key material.
//!
//! All primitives are validated against RFC / NIST test vectors in the unit
//! tests. This is a *defensive* substrate: it protects models in transit and
//! at rest and makes audit logs tamper-evident.

pub mod chacha20;
pub mod drbg;
pub mod hmac;
pub mod sha256;
pub mod sig;

pub use chacha20::{ChaCha20, SealedBox};
pub use drbg::Drbg;
pub use hmac::{hkdf, hmac_sha256};
pub use sha256::{sha256, Digest, Sha256};
pub use sig::{MerkleSignature, MerkleSigner, OtsKeypair};

/// Errors surfaced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC or signature failed to verify.
    VerificationFailed,
    /// A ciphertext or encoded structure was malformed.
    Malformed(&'static str),
    /// A one-time key was asked to sign a second message, or a Merkle
    /// signer ran out of leaves.
    KeyExhausted,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
            CryptoError::KeyExhausted => write!(f, "one-time key material exhausted"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Constant-time byte-slice equality (length leaks, contents do not).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Encode bytes as lowercase hex.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Decode a lowercase/uppercase hex string into bytes.
pub fn from_hex(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::Malformed("odd-length hex"));
    }
    let nibble = |c: u8| -> Result<u8, CryptoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CryptoError::Malformed("non-hex character")),
        }
    };
    let b = s.as_bytes();
    (0..s.len() / 2)
        .map(|i| Ok(nibble(b[2 * i])? << 4 | nibble(b[2 * i + 1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = vec![0u8, 1, 2, 0xab, 0xcd, 0xef, 255];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"same", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
