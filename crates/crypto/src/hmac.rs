//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! HMAC authenticates metering vouchers (§III-C) and encrypted model blobs
//! (§V); HKDF derives per-device model-encryption keys from a vendor master
//! key, so a compromised device never reveals another device's key.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha256::sha256(key);
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract: turn input keying material into a pseudorandom key.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Digest {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derive `len` bytes of output keying material (`len <= 8160`).
#[must_use]
pub fn hkdf_expand(prk: &Digest, info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF-Expand output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        okm.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    okm.truncate(len);
    okm
}

/// One-shot HKDF: extract-then-expand.
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_distinct_infos_give_distinct_keys() {
        let a = hkdf(b"salt", b"master", b"device-1", 32);
        let b = hkdf(b"salt", b"master", b"device-2", 32);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn hkdf_long_output_is_deterministic() {
        let a = hkdf(b"s", b"ikm", b"ctx", 100);
        let b = hkdf(b"s", b"ikm", b"ctx", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }
}
