//! Hash-based signatures: Lamport one-time signatures under a Merkle tree.
//!
//! §IV of the paper calls for portable, *signed* model containers so devices
//! only execute modules from the legitimate vendor. Rather than importing a
//! big-integer / elliptic-curve stack, we implement the classic hash-based
//! construction (Merkle 1979): it needs nothing but SHA-256, is genuinely
//! used in constrained/post-quantum settings, and is easy to audit.
//!
//! * [`OtsKeypair`] — a Lamport one-time keypair: 256 pairs of 32-byte
//!   secrets; the public key is the hash of all their hashes. Signing
//!   reveals one secret per message-digest bit. **One** message per key.
//! * [`MerkleSigner`] — 2^h one-time keys whose public keys form the leaves
//!   of a Merkle tree; the root is the long-lived public key. Each
//!   signature carries the OTS signature, the leaf index, and the
//!   authentication path.

use crate::drbg::Drbg;
use crate::sha256::{hash_pair, sha256, Digest, Sha256};
use crate::CryptoError;

/// A Lamport one-time signature keypair.
///
/// Secret key: `sk[bit][value]` for 256 bits × 2 values; public key is
/// `H(H(sk[0][0]) ‖ H(sk[0][1]) ‖ … )` compressed to one digest.
pub struct OtsKeypair {
    sk: Box<[[Digest; 2]; 256]>,
    pk_hashes: Box<[[Digest; 2]; 256]>,
    used: bool,
}

/// A Lamport one-time signature: one revealed preimage per digest bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtsSignature {
    revealed: Vec<Digest>, // 256 entries
}

impl OtsSignature {
    /// Signature size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.revealed.len() * 32
    }

    /// Borrow the revealed preimages (wire encoding by callers).
    #[must_use]
    pub fn revealed_digests(&self) -> Vec<&Digest> {
        self.revealed.iter().collect()
    }

    /// Reconstruct from revealed preimages (wire decoding). Must contain
    /// exactly 256 digests; verification will reject anything forged.
    #[must_use]
    pub fn from_revealed(revealed: Vec<Digest>) -> Self {
        assert_eq!(revealed.len(), 256, "Lamport signature has 256 preimages");
        OtsSignature { revealed }
    }
}

fn bit_of(digest: &Digest, i: usize) -> usize {
    ((digest[i / 8] >> (i % 8)) & 1) as usize
}

impl OtsKeypair {
    /// Generate a keypair from a DRBG (deterministic given the DRBG state).
    #[must_use]
    pub fn generate(rng: &mut Drbg) -> Self {
        let mut sk = Box::new([[[0u8; 32]; 2]; 256]);
        let mut pk = Box::new([[[0u8; 32]; 2]; 256]);
        for i in 0..256 {
            for v in 0..2 {
                sk[i][v] = rng.array::<32>();
                pk[i][v] = sha256(&sk[i][v]);
            }
        }
        OtsKeypair {
            sk,
            pk_hashes: pk,
            used: false,
        }
    }

    /// The compressed one-time public key (Merkle leaf value).
    #[must_use]
    pub fn public_key(&self) -> Digest {
        let mut h = Sha256::new();
        for pair in self.pk_hashes.iter() {
            h.update(&pair[0]);
            h.update(&pair[1]);
        }
        h.finalize()
    }

    /// Sign a message. Errors if this one-time key was already used.
    pub fn sign(&mut self, message: &[u8]) -> Result<OtsSignature, CryptoError> {
        if self.used {
            return Err(CryptoError::KeyExhausted);
        }
        self.used = true;
        let d = sha256(message);
        let revealed = (0..256).map(|i| self.sk[i][bit_of(&d, i)]).collect();
        Ok(OtsSignature { revealed })
    }

    /// Recompute the one-time public key implied by `sig` over `message`.
    /// (Verification = comparing this to a trusted leaf value.)
    #[must_use]
    pub fn recover_public_key(
        message: &[u8],
        sig: &OtsSignature,
        known_hashes: &[[Digest; 2]; 256],
    ) -> Digest {
        let d = sha256(message);
        let mut h = Sha256::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..256 {
            let bit = bit_of(&d, i);
            let revealed_hash = sha256(&sig.revealed[i]);
            let (h0, h1) = if bit == 0 {
                (revealed_hash, known_hashes[i][1])
            } else {
                (known_hashes[i][0], revealed_hash)
            };
            h.update(&h0);
            h.update(&h1);
        }
        h.finalize()
    }

    /// Expose the per-bit public hashes (shipped alongside signatures so the
    /// verifier can reconstruct the leaf).
    #[must_use]
    pub fn public_hashes(&self) -> &[[Digest; 2]; 256] {
        &self.pk_hashes
    }
}

/// A many-time hash-based signer: 2^height Lamport keys under a Merkle root.
pub struct MerkleSigner {
    keys: Vec<OtsKeypair>,
    tree: Vec<Vec<Digest>>, // tree[0] = leaves, tree.last() = [root]
    next_leaf: usize,
}

/// A signature produced by [`MerkleSigner`].
#[derive(Clone)]
pub struct MerkleSignature {
    /// Index of the one-time key used.
    pub leaf_index: usize,
    /// The Lamport signature itself.
    pub ots: OtsSignature,
    /// The per-bit public hashes of the one-time key.
    pub ots_pub_hashes: Box<[[Digest; 2]; 256]>,
    /// Sibling digests from leaf to root.
    pub auth_path: Vec<Digest>,
}

impl MerkleSignature {
    /// Total signature size in bytes (OTS + public hashes + path).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        8 + self.ots.size_bytes() + 256 * 2 * 32 + self.auth_path.len() * 32
    }
}

impl MerkleSigner {
    /// Generate a signer with `2^height` one-time keys.
    #[must_use]
    pub fn generate(rng: &mut Drbg, height: usize) -> Self {
        assert!(height <= 12, "tree height capped at 12 (4096 signatures)");
        let n = 1usize << height;
        let keys: Vec<OtsKeypair> = (0..n).map(|_| OtsKeypair::generate(rng)).collect();
        let leaves: Vec<Digest> = keys.iter().map(OtsKeypair::public_key).collect();
        let mut tree = vec![leaves];
        while tree.last().unwrap().len() > 1 {
            let prev = tree.last().unwrap();
            let next: Vec<Digest> = prev
                .chunks(2)
                .map(|pair| hash_pair(&pair[0], &pair[1]))
                .collect();
            tree.push(next);
        }
        MerkleSigner {
            keys,
            tree,
            next_leaf: 0,
        }
    }

    /// The long-lived public key (Merkle root).
    #[must_use]
    pub fn public_key(&self) -> Digest {
        self.tree.last().unwrap()[0]
    }

    /// Number of signatures still available.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.keys.len() - self.next_leaf
    }

    /// Sign `message` with the next unused one-time key.
    pub fn sign(&mut self, message: &[u8]) -> Result<MerkleSignature, CryptoError> {
        if self.next_leaf >= self.keys.len() {
            return Err(CryptoError::KeyExhausted);
        }
        let leaf_index = self.next_leaf;
        self.next_leaf += 1;
        let key = &mut self.keys[leaf_index];
        let ots = key.sign(message)?;
        let ots_pub_hashes = Box::new(*key.public_hashes());
        let mut auth_path = Vec::with_capacity(self.tree.len() - 1);
        let mut idx = leaf_index;
        for level in &self.tree[..self.tree.len() - 1] {
            auth_path.push(level[idx ^ 1]);
            idx >>= 1;
        }
        Ok(MerkleSignature {
            leaf_index,
            ots,
            ots_pub_hashes,
            auth_path,
        })
    }

    /// Verify a signature against a trusted root public key.
    pub fn verify(root: &Digest, message: &[u8], sig: &MerkleSignature) -> Result<(), CryptoError> {
        // 1. The revealed preimages must hash into the claimed per-bit
        //    public hashes *and* reproduce the leaf.
        let d = sha256(message);
        for i in 0..256 {
            let bit = bit_of(&d, i);
            if sha256(&sig.ots.revealed[i]) != sig.ots_pub_hashes[i][bit] {
                return Err(CryptoError::VerificationFailed);
            }
        }
        let mut leaf_hasher = Sha256::new();
        for pair in sig.ots_pub_hashes.iter() {
            leaf_hasher.update(&pair[0]);
            leaf_hasher.update(&pair[1]);
        }
        let mut node = leaf_hasher.finalize();
        // 2. The leaf must chain up to the trusted root.
        let mut idx = sig.leaf_index;
        for sibling in &sig.auth_path {
            node = if idx & 1 == 0 {
                hash_pair(&node, sibling)
            } else {
                hash_pair(sibling, &node)
            };
            idx >>= 1;
        }
        if node == *root {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Drbg {
        Drbg::from_u64(1234, b"sig-tests")
    }

    #[test]
    fn ots_sign_verify() {
        let mut kp = OtsKeypair::generate(&mut rng());
        let pk = kp.public_key();
        let sig = kp.sign(b"hello world").unwrap();
        let recovered = OtsKeypair::recover_public_key(b"hello world", &sig, kp.public_hashes());
        assert_eq!(recovered, pk);
    }

    #[test]
    fn ots_rejects_wrong_message() {
        let mut kp = OtsKeypair::generate(&mut rng());
        let pk = kp.public_key();
        let sig = kp.sign(b"hello").unwrap();
        let recovered = OtsKeypair::recover_public_key(b"goodbye", &sig, kp.public_hashes());
        assert_ne!(recovered, pk);
    }

    #[test]
    fn ots_refuses_double_signing() {
        let mut kp = OtsKeypair::generate(&mut rng());
        kp.sign(b"first").unwrap();
        assert_eq!(kp.sign(b"second"), Err(CryptoError::KeyExhausted));
    }

    #[test]
    fn merkle_sign_verify_all_leaves() {
        let mut signer = MerkleSigner::generate(&mut rng(), 3);
        let root = signer.public_key();
        for i in 0..8u32 {
            let msg = format!("capsule #{i}");
            let sig = signer.sign(msg.as_bytes()).unwrap();
            MerkleSigner::verify(&root, msg.as_bytes(), &sig).unwrap();
        }
        assert_eq!(signer.remaining(), 0);
        assert!(signer.sign(b"ninth").is_err());
    }

    #[test]
    fn merkle_rejects_tampered_message() {
        let mut signer = MerkleSigner::generate(&mut rng(), 2);
        let root = signer.public_key();
        let sig = signer.sign(b"model v1.0.0").unwrap();
        assert_eq!(
            MerkleSigner::verify(&root, b"model v6.6.6", &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn merkle_rejects_wrong_root() {
        let mut signer_a = MerkleSigner::generate(&mut rng(), 2);
        let signer_b = MerkleSigner::generate(&mut Drbg::from_u64(999, b"other"), 2);
        let sig = signer_a.sign(b"msg").unwrap();
        assert!(MerkleSigner::verify(&signer_b.public_key(), b"msg", &sig).is_err());
    }

    #[test]
    fn merkle_rejects_spliced_auth_path() {
        let mut signer = MerkleSigner::generate(&mut rng(), 2);
        let root = signer.public_key();
        let mut sig = signer.sign(b"msg").unwrap();
        sig.auth_path[0] = sha256(b"evil");
        assert!(MerkleSigner::verify(&root, b"msg", &sig).is_err());
    }

    #[test]
    fn signature_size_is_reported() {
        let mut signer = MerkleSigner::generate(&mut rng(), 1);
        let sig = signer.sign(b"m").unwrap();
        // 256 preimages + 512 public hashes + 1 path node + index.
        assert_eq!(sig.size_bytes(), 8 + 256 * 32 + 512 * 32 + 32);
    }
}
