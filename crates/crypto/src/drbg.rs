//! Deterministic random bit generator built on ChaCha20.
//!
//! The platform needs reproducible key material (tests, simulations,
//! deterministic experiment seeds) without pulling an OS RNG into library
//! code. `Drbg` is ChaCha20 keyed with `SHA-256(seed ‖ personalization)`,
//! producing a keystream used as random bytes. It is *not* meant to replace
//! an OS entropy source in a real product; the deployment layer can seed it
//! from one.

use crate::chacha20::ChaCha20;
use crate::sha256::Sha256;

/// Deterministic ChaCha20-based byte generator.
pub struct Drbg {
    cipher: ChaCha20,
}

impl Drbg {
    /// Create a generator from an arbitrary seed and a personalization
    /// string (domain separation between subsystems).
    #[must_use]
    pub fn new(seed: &[u8], personalization: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"tinymlops.drbg.v1");
        h.update(&(seed.len() as u64).to_le_bytes());
        h.update(seed);
        h.update(personalization);
        let key = h.finalize();
        let nonce = [0u8; 12];
        Drbg {
            cipher: ChaCha20::new(&key, &nonce, 0),
        }
    }

    /// Convenience constructor from a `u64` seed.
    #[must_use]
    pub fn from_u64(seed: u64, personalization: &[u8]) -> Self {
        Drbg::new(&seed.to_le_bytes(), personalization)
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.cipher.keystream(out);
    }

    /// Produce a fixed-size array of pseudorandom bytes.
    #[must_use]
    pub fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill(&mut out);
        out
    }

    /// Next pseudorandom `u64`.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.array::<8>())
    }

    /// Uniform value in `[0, bound)` via rejection sampling (no modulo bias).
    #[must_use]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Drbg::from_u64(42, b"test");
        let mut b = Drbg::from_u64(42, b"test");
        assert_eq!(a.array::<64>(), b.array::<64>());
    }

    #[test]
    fn personalization_separates_streams() {
        let mut a = Drbg::from_u64(42, b"alpha");
        let mut b = Drbg::from_u64(42, b"beta");
        assert_ne!(a.array::<32>(), b.array::<32>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Drbg::from_u64(1, b"x");
        let mut b = Drbg::from_u64(2, b"x");
        assert_ne!(a.array::<32>(), b.array::<32>());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut d = Drbg::from_u64(7, b"range");
        for _ in 0..1000 {
            assert!(d.gen_range(10) < 10);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut d = Drbg::from_u64(9, b"coverage");
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[d.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn successive_draws_differ() {
        let mut d = Drbg::from_u64(3, b"stream");
        let a = d.next_u64();
        let b = d.next_u64();
        assert_ne!(a, b);
    }
}
