//! Property-based tests: cryptographic invariants over arbitrary inputs.

use proptest::prelude::*;
use tinymlops_crypto::{from_hex, sha256, to_hex, SealedBox, Sha256};

proptest! {
    /// Incremental hashing equals one-shot for any split of any message.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Hex encode/decode round-trips arbitrary bytes.
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    /// Sealed boxes decrypt to the original plaintext with the right key…
    #[test]
    fn sealed_box_round_trip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let sealed = SealedBox::seal(&key, nonce, &aad, &pt);
        prop_assert_eq!(sealed.open(&key, &aad).unwrap(), pt);
    }

    /// …and any single-byte corruption of the ciphertext is rejected.
    #[test]
    fn sealed_box_tamper_detected(
        key in any::<[u8; 32]>(),
        pt in proptest::collection::vec(any::<u8>(), 1..256),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut sealed = SealedBox::seal(&key, [0u8; 12], b"", &pt);
        let idx = flip_at % sealed.ciphertext.len();
        sealed.ciphertext[idx] ^= 1 << flip_bit;
        prop_assert!(sealed.open(&key, b"").is_err());
    }

    /// Wire round trip of sealed boxes preserves open-ability.
    #[test]
    fn sealed_box_wire_round_trip(
        key in any::<[u8; 32]>(),
        pt in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let sealed = SealedBox::seal(&key, [3u8; 12], b"hdr", &pt);
        let parsed = SealedBox::from_bytes(&sealed.to_bytes()).unwrap();
        prop_assert_eq!(parsed.open(&key, b"hdr").unwrap(), pt);
    }

    /// Distinct keys practically never open each other's boxes.
    #[test]
    fn sealed_box_key_separation(
        k1 in any::<[u8; 32]>(),
        k2 in any::<[u8; 32]>(),
        pt in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        prop_assume!(k1 != k2);
        let sealed = SealedBox::seal(&k1, [0u8; 12], b"", &pt);
        prop_assert!(sealed.open(&k2, b"").is_err());
    }
}
