//! The end-to-end Figure-1 lifecycle.
//!
//! One call exercises every functionality block of the paper's TinyMLOps
//! diagram in its natural order: train → publish (+auto-optimize) →
//! select/deploy per device → protect (encrypt + watermark) → meter
//! queries → observe drift → detect stealing → federated personalization →
//! verifiable execution. Experiment F1 prints the per-stage outcomes as a
//! functionality-coverage table.

use crate::platform::{Platform, PlatformConfig};
use crate::PlatformError;
use tinymlops_deploy::{Pipeline, Requirements};
use tinymlops_fed::{partition_dirichlet, Compression, FlConfig, FlServer};
use tinymlops_ipp::{DynamicWatermark, Poisoner, StaticWatermark};
use tinymlops_nn::data::synth_digits;
use tinymlops_nn::model::mlp;
use tinymlops_nn::train::{evaluate, fit, FitConfig};
use tinymlops_nn::Adam;
use tinymlops_quant::{QuantScheme, QuantizedModel};
use tinymlops_registry::SemVer;
use tinymlops_tensor::TensorRng;
use tinymlops_verify::VerifiableModel;

/// Lifecycle parameters.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Fleet size.
    pub fleet_size: usize,
    /// Training-set size.
    pub dataset_size: usize,
    /// Federated clients.
    pub fl_clients: usize,
    /// Federated rounds.
    pub fl_rounds: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            fleet_size: 60,
            dataset_size: 1200,
            fl_clients: 8,
            fl_rounds: 5,
            seed: 42,
        }
    }
}

/// Outcome of one lifecycle stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (Figure-1 block).
    pub stage: &'static str,
    /// Whether the stage achieved its goal.
    pub ok: bool,
    /// Headline metric, stage-specific.
    pub detail: String,
}

/// The full lifecycle outcome.
#[derive(Debug, Clone)]
pub struct LifecycleReport {
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageReport>,
    /// Final test accuracy of the deployed base model.
    pub base_accuracy: f32,
}

impl LifecycleReport {
    /// True when every stage succeeded.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.stages.iter().all(|s| s.ok)
    }
}

/// Run the whole Figure-1 lifecycle on a fresh platform.
pub fn run_lifecycle(cfg: &LifecycleConfig) -> Result<LifecycleReport, PlatformError> {
    let mut stages = Vec::new();
    let mut platform = Platform::new(&PlatformConfig {
        fleet_size: cfg.fleet_size,
        seed: cfg.seed,
        signer_height: 6,
    });

    // ── Stage 0: train the base model (substrate, §I).
    let data = synth_digits(cfg.dataset_size, 0.08, cfg.seed);
    let (train, test) = data.split(0.85, cfg.seed);
    let mut rng = TensorRng::seed(cfg.seed);
    let mut model = mlp(&[64, 32, 10], &mut rng);
    let mut opt = Adam::new(0.005);
    fit(
        &mut model,
        &train,
        &mut opt,
        &FitConfig {
            epochs: 15,
            batch_size: 32,
            seed: cfg.seed,
            verbose: false,
        },
    );
    let base_accuracy = evaluate(&model, &test);
    stages.push(StageReport {
        stage: "train",
        ok: base_accuracy > 0.85,
        detail: format!("base accuracy {base_accuracy:.3}"),
    });

    // ── Stage 1: model store & versioning + auto-optimization (§III-A).
    let (base_id, variants) =
        platform.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)?;
    stages.push(StageReport {
        stage: "registry+pipeline",
        ok: variants.len() == 7,
        detail: format!("1 base + {} auto-generated variants", variants.len()),
    });

    // ── Stage 2: fragmented-fleet rollout (§III-A + §IV).
    let req = Requirements {
        max_latency_ms: 1e6,
        max_download_ms: f64::INFINITY,
        min_accuracy: 0.0,
        max_energy_mj: f64::INFINITY,
    };
    let plan = platform.rollout_plan("digits", &req);
    let placed = plan.iter().filter(|s| s.is_some()).count();
    let distinct: std::collections::BTreeSet<String> = plan
        .iter()
        .flatten()
        .map(|s| s.record.format.name())
        .collect();
    // Note: with no latency/battery pressure one variant may rationally
    // dominate the whole fleet; per-state selection diversity is what
    // experiment E2 sweeps. Here we check coverage.
    stages.push(StageReport {
        stage: "deploy/select",
        ok: placed * 10 >= cfg.fleet_size * 8,
        detail: format!(
            "{placed}/{} devices served, {} distinct formats: {:?}",
            cfg.fleet_size,
            distinct.len(),
            distinct
        ),
    });

    // ── Stage 3: portable signed capsule (§IV).
    let capsule = platform.package(base_id, &Pipeline::standard_classifier(0.0, 1.0), "fleet")?;
    let capsule_ok = capsule.verify(&platform.vendor_root()).is_ok();
    stages.push(StageReport {
        stage: "capsule",
        ok: capsule_ok,
        detail: format!("signed capsule, {} bytes", capsule.wire_len()),
    });

    // ── Stage 4: IP protection (§V): encrypt + watermark.
    let enc = platform.protect_for_device(base_id, 0)?;
    let dec = tinymlops_ipp::decrypt_model(&enc, &platform.master_key())?;
    let wm = StaticWatermark::random(64, cfg.seed ^ 0xabcd);
    let mut marked = dec.clone();
    wm.embed(&mut marked, &train, 0.05, 4, 0.01, cfg.seed);
    let ber = wm.ber(&marked);
    let dynamic = DynamicWatermark::generate(16, 64, 10, cfg.seed ^ 0xbeef);
    let mut dyn_marked = marked.clone();
    dynamic.embed(&mut dyn_marked, &train, 8, 0.05, cfg.seed);
    stages.push(StageReport {
        stage: "ip-protection",
        ok: ber == 0.0 && dynamic.verify(&dyn_marked, 0.15),
        detail: format!(
            "encrypted ({} B), static BER {ber:.3}, trigger err {:.3}",
            enc.sealed.wire_len(),
            dynamic.trigger_error(&dyn_marked)
        ),
    });

    // ── Stage 5: pay-per-query metering (§III-C).
    platform.sell_package(0, 200)?;
    let probe = test.x.slice_rows(0, 50);
    platform.metered_infer(0, &dyn_marked, &probe)?;
    let invoice = platform.sync_device(0)?;
    stages.push(StageReport {
        stage: "metering",
        ok: invoice.queries == 50,
        detail: format!("50 metered queries, invoice {}", invoice.amount_display()),
    });

    // ── Stage 6: observability & stealing detection (§III-B, §V).
    // Feed drifted inputs; the device detector should fire.
    let drifted = test.with_covariate_shift(1.5);
    for chunk_start in (0..drifted.len().saturating_sub(10)).step_by(10).take(15) {
        let x = drifted.x.slice_rows(chunk_start, chunk_start + 10);
        let _ = platform.metered_infer(0, &dyn_marked, &x);
    }
    let drift_fired = platform.drift.get(&0).is_some_and(|d| {
        tinymlops_observe::DriftDetector::status(d) == tinymlops_observe::DriftStatus::Drift
    });
    let poisoned = Poisoner::Round { decimals: 1 }.apply(&dyn_marked.predict_proba(&probe));
    let argmax_kept = poisoned.argmax_rows() == dyn_marked.predict_proba(&probe).argmax_rows();
    stages.push(StageReport {
        stage: "observability",
        ok: drift_fired && argmax_kept,
        detail: format!("drift detected: {drift_fired}, poisoning preserves top-1: {argmax_kept}"),
    });

    // ── Stage 7: federated personalization (§III-D).
    let parts = partition_dirichlet(&train, cfg.fl_clients, 0.3, cfg.seed);
    let mut fl = FlServer::new(
        dyn_marked.clone(),
        parts,
        FlConfig {
            participation: 0.8,
            availability: 0.9,
            compression: Compression::TopK { frac: 0.1 },
            seed: cfg.seed,
            ..Default::default()
        },
    );
    let fl_stats = fl.run(cfg.fl_rounds, &test);
    let fl_ok = fl_stats
        .last()
        .is_some_and(|s| s.accuracy > base_accuracy - 0.12);
    stages.push(StageReport {
        stage: "federated",
        ok: fl_ok,
        detail: format!(
            "{} rounds, final acc {:.3}, {} KiB/round uplink",
            fl_stats.len(),
            fl_stats.last().map_or(0.0, |s| s.accuracy),
            fl_stats.last().map_or(0, |s| s.uplink_bytes / 1024)
        ),
    });

    // ── Stage 8: verifiable execution (§VI).
    let q = QuantizedModel::quantize(&fl.global, &train.x, QuantScheme::Int8)?;
    let vm = VerifiableModel::from_quantized(&q)?;
    let batch = test.x.slice_rows(0, 8);
    let (y, proof) = vm.prove(&batch);
    let verified = vm.verify(&batch, &y, &proof).is_ok();
    let mut forged = y.clone();
    forged.data_mut()[0] += 5.0;
    let forgery_caught = vm.verify(&batch, &forged, &proof).is_err();
    stages.push(StageReport {
        stage: "verifiable-exec",
        ok: verified && forgery_caught,
        detail: format!(
            "proof {} B for batch 8, honest ✓, forgery rejected ✓",
            proof.size_bytes()
        ),
    });

    Ok(LifecycleReport {
        stages,
        base_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lifecycle_all_stages_pass() {
        let report = run_lifecycle(&LifecycleConfig {
            fleet_size: 40,
            dataset_size: 900,
            fl_clients: 6,
            fl_rounds: 4,
            seed: 11,
        })
        .unwrap();
        for s in &report.stages {
            assert!(s.ok, "stage `{}` failed: {}", s.stage, s.detail);
        }
        assert_eq!(report.stages.len(), 9);
        assert!(report.all_ok());
    }

    #[test]
    fn lifecycle_is_deterministic_per_seed() {
        let cfg = LifecycleConfig {
            fleet_size: 30,
            dataset_size: 700,
            fl_clients: 5,
            fl_rounds: 3,
            seed: 5,
        };
        let a = run_lifecycle(&cfg).unwrap();
        let b = run_lifecycle(&cfg).unwrap();
        assert_eq!(a.base_accuracy, b.base_accuracy);
        for (x, y) in a.stages.iter().zip(&b.stages) {
            assert_eq!(x.detail, y.detail, "stage {} differs", x.stage);
        }
    }
}
