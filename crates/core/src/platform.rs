//! The [`Platform`] hub: services and per-block operations.

use crate::PlatformError;
use parking_lot::Mutex;
use std::collections::HashMap;
use tinymlops_crypto::{Drbg, MerkleSigner};
use tinymlops_deploy::{select_variant, Capsule, CapsuleMeta, Pipeline, Requirements, Selection};
use tinymlops_device::{default_mix, Fleet, SimClock};
use tinymlops_ipp::{encrypt_model, EncryptedModel};
use tinymlops_meter::{QuotaManager, RateCard, SyncServer, Voucher, VoucherIssuer, VoucherLedger};
use tinymlops_nn::{Dataset, Sequential};
use tinymlops_observe::{KsDetector, Telemetry};
use tinymlops_registry::{ModelId, OptimizationPipeline, Registry, SemVer};

/// Platform construction parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Number of simulated devices.
    pub fleet_size: usize,
    /// Master seed (everything derives deterministically from it).
    pub seed: u64,
    /// Vendor signing-tree height (2^h capsule signatures available).
    pub signer_height: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            fleet_size: 100,
            seed: 0,
            signer_height: 6,
        }
    }
}

/// The TinyMLOps platform hub (Figure 1).
pub struct Platform {
    /// Model store & versioning (§III-A).
    pub registry: Registry,
    /// The simulated device population (§IV).
    pub fleet: Fleet,
    /// Simulation clock.
    pub clock: SimClock,
    /// Fleet-wide telemetry sink (§III-B).
    pub telemetry: Telemetry,
    /// Metering backend (§III-C).
    pub sync_server: SyncServer,
    /// Voucher mint (§III-C).
    pub issuer: VoucherIssuer,
    /// Redemption ledger (§III-C).
    pub ledger: VoucherLedger,
    /// Rate card for billing.
    pub rates: RateCard,
    /// Per-device quota managers (device-side state, held here for the
    /// simulation).
    pub quotas: HashMap<u32, QuotaManager>,
    /// Per-device drift detectors (§III-B).
    pub drift: HashMap<u32, KsDetector>,
    vendor_signer: Mutex<MerkleSigner>,
    vendor_root: [u8; 32],
    master_key: [u8; 32],
    voucher_key: [u8; 32],
    seed: u64,
}

impl Platform {
    /// Bring up a platform with a generated fleet.
    #[must_use]
    pub fn new(cfg: &PlatformConfig) -> Self {
        let fleet = Fleet::generate(cfg.fleet_size, &default_mix(), cfg.seed);
        let mut key_rng = Drbg::from_u64(cfg.seed, b"platform-keys");
        let master_key = key_rng.array::<32>();
        let voucher_key = key_rng.array::<32>();
        let mut signer_rng = Drbg::from_u64(cfg.seed, b"vendor-signer");
        let signer = MerkleSigner::generate(&mut signer_rng, cfg.signer_height);
        let vendor_root = signer.public_key();
        Platform {
            registry: Registry::new(),
            fleet,
            clock: SimClock::new(),
            telemetry: Telemetry::new(),
            sync_server: SyncServer::new(),
            issuer: VoucherIssuer::new(voucher_key),
            ledger: VoucherLedger::new(),
            rates: RateCard::cloud_vision_like(),
            quotas: HashMap::new(),
            drift: HashMap::new(),
            vendor_signer: Mutex::new(signer),
            vendor_root,
            master_key,
            voucher_key,
            seed: cfg.seed,
        }
    }

    /// The vendor's capsule-signing public key (device trust anchor).
    #[must_use]
    pub fn vendor_root(&self) -> [u8; 32] {
        self.vendor_root
    }

    /// Master model-encryption key (vendor side only).
    #[must_use]
    pub fn master_key(&self) -> [u8; 32] {
        self.master_key
    }

    /// §III-A: publish a base model — registers it and auto-triggers the
    /// optimization pipeline over the full variant matrix.
    pub fn publish(
        &self,
        name: &str,
        model: &Sequential,
        version: SemVer,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<(ModelId, Vec<ModelId>), PlatformError> {
        let pipeline = OptimizationPipeline::standard();
        let (base, variants) = pipeline.process_base(
            &self.registry,
            name,
            model,
            version,
            train,
            test,
            self.clock.now().0,
        )?;
        self.telemetry.incr("models.published");
        self.telemetry.add("models.variants", variants.len() as u64);
        Ok((base, variants))
    }

    /// §III-A: pick the best variant of `name` for every device in the
    /// fleet under `req`. Returns per-device selections (devices with no
    /// feasible variant yield `None` — §IV fragmentation in action).
    #[must_use]
    pub fn rollout_plan(&self, name: &str, req: &Requirements) -> Vec<Option<Selection>> {
        let base = self.registry.latest_base(name);
        let Some(base) = base else {
            return self.fleet.devices.iter().map(|_| None).collect();
        };
        let mut family = self.registry.family_at(name, base.version);
        family.sort_by_key(|r| r.id);
        self.fleet
            .par_map(|device| select_variant(&family, device, req).ok())
    }

    /// §IV: package a registered model into a signed capsule.
    pub fn package(
        &self,
        model_id: ModelId,
        pipeline: &Pipeline,
        target: &str,
    ) -> Result<Capsule, PlatformError> {
        let record = self.registry.get(model_id)?;
        let bytes = self.registry.artifact(model_id)?;
        let meta = CapsuleMeta {
            name: record.name.clone(),
            version: record.version.to_string(),
            scheme: record.format.name(),
            target: target.to_string(),
        };
        let mut signer = self.vendor_signer.lock();
        let capsule = Capsule::build(meta, pipeline, bytes, &mut signer)?;
        self.telemetry.incr("capsules.signed");
        Ok(capsule)
    }

    /// §V: wrap a model for a specific device (encrypted at rest).
    pub fn protect_for_device(
        &self,
        model_id: ModelId,
        device_id: u32,
    ) -> Result<EncryptedModel, PlatformError> {
        let model = self.registry.load_model(model_id)?;
        // Nonce = device ‖ model id (unique per pair).
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&device_id.to_le_bytes());
        nonce[4..12].copy_from_slice(&model_id.0.to_le_bytes());
        Ok(encrypt_model(&model, &self.master_key, device_id, nonce))
    }

    /// §III-C: provision a device for metering and sell it a prepaid
    /// package. Returns the voucher that was redeemed.
    pub fn sell_package(&mut self, device_id: u32, queries: u64) -> Result<Voucher, PlatformError> {
        let device_key = tinymlops_ipp::encrypt::device_key(&self.master_key, device_id);
        let quota = self
            .quotas
            .entry(device_id)
            .or_insert_with(|| QuotaManager::new(device_key));
        self.sync_server.provision(device_id, device_key);
        let voucher = self.issuer.issue(queries, device_id);
        tinymlops_meter::voucher::validate_for_device(&voucher, &self.voucher_key, device_id)?;
        self.ledger.register(voucher.serial)?;
        quota.credit(voucher.quota, voucher.serial, self.clock.now().0);
        self.telemetry.incr("metering.packages_sold");
        Ok(voucher)
    }

    /// §III-C: run one metered inference on a device. Denies on empty
    /// quota; records telemetry and drift observations.
    pub fn metered_infer(
        &mut self,
        device_id: u32,
        model: &Sequential,
        x: &tinymlops_tensor::Tensor,
    ) -> Result<Vec<usize>, PlatformError> {
        let now = self.clock.now().0;
        let quota = self
            .quotas
            .get_mut(&device_id)
            .ok_or(tinymlops_meter::MeterError::QuotaExhausted)?;
        quota.consume(x.rows() as u64, now)?;
        let pred = model.predict(x);
        self.telemetry.add("queries", x.rows() as u64);
        // §III-B: feed the first feature's mean into this device's drift
        // detector (a cheap input-distribution statistic).
        let det = self
            .drift
            .entry(device_id)
            .or_insert_with(|| KsDetector::new(64, 0.001));
        for r in 0..x.rows() {
            let mean = x.row(r).iter().sum::<f32>() / x.cols() as f32;
            let _ = tinymlops_observe::DriftDetector::observe(det, f64::from(mean));
        }
        Ok(pred)
    }

    /// §III-C: sync a device's audit log to the backend and compute its
    /// invoice for the newly reported queries.
    pub fn sync_device(
        &mut self,
        device_id: u32,
    ) -> Result<tinymlops_meter::Invoice, PlatformError> {
        let quota = self
            .quotas
            .get(&device_id)
            .ok_or(tinymlops_meter::MeterError::QuotaExhausted)?;
        let _outcome = self.sync_server.sync(device_id, quota.log())?;
        let billed = self.sync_server.billed(device_id);
        Ok(tinymlops_meter::Invoice::compute(
            device_id,
            billed,
            &self.rates,
        ))
    }

    /// Deterministic seed for sub-simulations.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Assemble a serving plane over this platform's fleet and registry:
    /// every model family named by `plan` is installed (base + variants
    /// at the latest version), tenants are provisioned with accounts and
    /// prepaid quota through real vouchers (issued, ledger-checked and
    /// validated, exactly like [`Platform::sell_package`]).
    pub fn build_serving(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::ServeConfig,
    ) -> Result<tinymlops_serve::ServePlane, PlatformError> {
        let mut plane = tinymlops_serve::ServePlane::new(cfg, self.fleet.clone());
        let families: std::collections::BTreeSet<&str> =
            plan.tenants.iter().map(|t| t.model.as_str()).collect();
        for name in families {
            let base = self
                .registry
                .latest_base(name)
                .ok_or_else(|| tinymlops_serve::ServeError::UnknownFamily(name.to_string()))?;
            let mut records = self.registry.family_at(name, base.version);
            records.sort_by_key(|r| r.id);
            // Install real executables for the variants a router can pick,
            // so feature-carrying requests exercise actual nn/quant
            // kernels rather than only the virtual cost model.
            for record in &records {
                match record.format {
                    tinymlops_registry::ModelFormat::F32 => {
                        if let Ok(model) = self.registry.load_model(record.id) {
                            plane.install_executable(
                                record.id,
                                tinymlops_serve::ExecModel::F32(model),
                            );
                        }
                    }
                    tinymlops_registry::ModelFormat::Quantized { .. } => {
                        if let Ok(q) = self.registry.load_quantized(record.id) {
                            plane.install_executable(
                                record.id,
                                tinymlops_serve::ExecModel::Quantized(q),
                            );
                        }
                    }
                    _ => {}
                }
            }
            plane.install_family(name, records);
        }
        let now_ms = self.clock.now().0;
        for tenant in &plan.tenants {
            let key = tinymlops_ipp::encrypt::device_key(&self.master_key, tenant.id);
            plane.gateway.register_tenant(tenant.id, key);
            let voucher = self.issuer.issue(tenant.prepaid_queries, tenant.id);
            tinymlops_meter::voucher::validate_for_device(&voucher, &self.voucher_key, tenant.id)?;
            self.ledger.register(voucher.serial)?;
            plane
                .gateway
                .credit(tenant.id, voucher.quota, voucher.serial, now_ms)?;
            self.telemetry.incr("metering.packages_sold");
        }
        Ok(plane)
    }

    /// Replay a traffic plan through the serving plane, feeding serving
    /// counters into this platform's telemetry. Returns the run report
    /// (deterministic per plan seed).
    pub fn serve_traffic(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::ServeConfig,
    ) -> Result<tinymlops_serve::ServeReport, PlatformError> {
        let mut plane = self.build_serving(plan, cfg)?;
        let sim = tinymlops_serve::ServeSim::new(cfg.clone(), Some(&self.telemetry));
        let stream = plan.generate();
        let report = sim.run(&mut plane, &stream)?;
        Ok(report)
    }

    /// Assemble a multi-node serving fabric over this platform's fleet:
    /// the fleet is partitioned into one device sub-fleet per node, every
    /// family named by `plan` is installed on every node (with real
    /// executables, as in [`Platform::build_serving`]), and each tenant is
    /// provisioned on its shard-router-assigned home node with prepaid
    /// quota through real vouchers.
    pub fn build_fabric(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::FabricConfig,
    ) -> Result<tinymlops_serve::ServeFabric, PlatformError> {
        // Standby nodes (controller elasticity pool) get device fleets
        // too — they are full planes, just outside the routing topology.
        let fleets = self
            .fleet
            .partition(cfg.node_weights.len() + cfg.controller.standby_weights.len());
        let mut fabric = tinymlops_serve::ServeFabric::new(cfg, fleets);
        let families: std::collections::BTreeSet<&str> =
            plan.tenants.iter().map(|t| t.model.as_str()).collect();
        for name in families {
            let base = self
                .registry
                .latest_base(name)
                .ok_or_else(|| tinymlops_serve::ServeError::UnknownFamily(name.to_string()))?;
            let mut records = self.registry.family_at(name, base.version);
            records.sort_by_key(|r| r.id);
            for record in &records {
                match record.format {
                    tinymlops_registry::ModelFormat::F32 => {
                        if let Ok(model) = self.registry.load_model(record.id) {
                            fabric.install_executable(
                                record.id,
                                tinymlops_serve::ExecModel::F32(model),
                            );
                        }
                    }
                    tinymlops_registry::ModelFormat::Quantized { .. } => {
                        if let Ok(q) = self.registry.load_quantized(record.id) {
                            fabric.install_executable(
                                record.id,
                                tinymlops_serve::ExecModel::Quantized(q),
                            );
                        }
                    }
                    _ => {}
                }
            }
            fabric.install_family(name, records);
        }
        let now_ms = self.clock.now().0;
        for tenant in &plan.tenants {
            let key = tinymlops_ipp::encrypt::device_key(&self.master_key, tenant.id);
            fabric.register_tenant(tenant.id, &tenant.model, key);
            let voucher = self.issuer.issue(tenant.prepaid_queries, tenant.id);
            tinymlops_meter::voucher::validate_for_device(&voucher, &self.voucher_key, tenant.id)?;
            self.ledger.register(voucher.serial)?;
            fabric.credit(tenant.id, voucher.quota, voucher.serial, now_ms)?;
            self.telemetry.incr("metering.packages_sold");
        }
        Ok(fabric)
    }

    /// Replay a traffic plan through a freshly built serving fabric
    /// ([`Platform::build_fabric`]): the shard router fans tenants out to
    /// their home nodes, each node replays its share on its own
    /// discrete-event clock, and the merged fleet report's counters land
    /// in this platform's telemetry. Deterministic per plan seed.
    pub fn serve_traffic_sharded(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::FabricConfig,
    ) -> Result<tinymlops_serve::FabricReport, PlatformError> {
        let mut fabric = self.build_fabric(plan, cfg)?;
        let stream = plan.generate();
        let report = fabric.run(&stream)?;
        // Counters *and* merged timer summaries land in the platform
        // sink (summaries via `Telemetry::record_summary`, so fleet
        // latency statistics no longer stop at the fabric report).
        self.telemetry.absorb_report(&report.telemetry);
        if !report.alarms.is_empty() {
            self.telemetry
                .add("serve.alarms", report.alarms.len() as u64);
        }
        Ok(report)
    }

    /// Serve a traffic plan on the wall-clock concurrent backend: a
    /// freshly built fabric ([`Platform::build_fabric`]) where every
    /// serving node runs on its own OS thread behind a bounded ingest
    /// queue ([`tinymlops_serve::exec`]). With
    /// [`tinymlops_serve::ExecMode::Replay`] (the default) the fleet
    /// report is bit-identical to [`Platform::serve_traffic_sharded`]
    /// for the same plan, while the returned
    /// [`tinymlops_serve::LiveReport`] additionally measures real
    /// elapsed time for the threaded pipeline. Merged counters and timer
    /// summaries land in this platform's telemetry, exactly as in the
    /// simulated path.
    pub fn serve_traffic_live(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::FabricConfig,
        exec: &tinymlops_serve::ExecConfig,
    ) -> Result<tinymlops_serve::LiveReport, PlatformError> {
        let mut fabric = self.build_fabric(plan, cfg)?;
        let stream = plan.generate();
        let report = fabric.run_live(&stream, exec)?;
        self.telemetry.absorb_report(&report.fabric.telemetry);
        if !report.fabric.alarms.is_empty() {
            self.telemetry
                .add("serve.alarms", report.fabric.alarms.len() as u64);
        }
        Ok(report)
    }

    /// Replay a traffic plan through a freshly built fabric while
    /// executing operator-triggered live migrations
    /// ([`tinymlops_serve::MigrationSpec`]) at their scheduled stream
    /// instants: tenants move between serving nodes *with requests in
    /// flight* — queued work spliced, dispatched work drained in place,
    /// the quota partition and audit chain handed off atomically under a
    /// `meter` handoff entry. Returns the fleet report plus one
    /// [`tinymlops_serve::MigrationRecord`] per spec; deterministic per
    /// plan seed.
    pub fn serve_traffic_migrating(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::FabricConfig,
        specs: &[tinymlops_serve::MigrationSpec],
    ) -> Result<
        (
            tinymlops_serve::FabricReport,
            Vec<tinymlops_serve::MigrationRecord>,
        ),
        PlatformError,
    > {
        let mut fabric = self.build_fabric(plan, cfg)?;
        let stream = plan.generate();
        let (report, records) = fabric.run_migrating(&stream, specs)?;
        self.telemetry.absorb_report(&report.telemetry);
        self.telemetry.add("serve.migrations", records.len() as u64);
        if !report.alarms.is_empty() {
            self.telemetry
                .add("serve.alarms", report.alarms.len() as u64);
        }
        Ok((report, records))
    }

    /// [`Platform::serve_traffic_migrating`] on the wall-clock backend:
    /// the migrations execute across live node threads (drain/adopt
    /// control entries through the bounded ingest queues). With
    /// [`tinymlops_serve::ExecMode::Replay`] the report *and* the
    /// migration records are bit-identical to the simulated path.
    pub fn serve_traffic_live_migrating(
        &mut self,
        plan: &tinymlops_serve::LoadPlan,
        cfg: &tinymlops_serve::FabricConfig,
        exec: &tinymlops_serve::ExecConfig,
        specs: &[tinymlops_serve::MigrationSpec],
    ) -> Result<
        (
            tinymlops_serve::LiveReport,
            Vec<tinymlops_serve::MigrationRecord>,
        ),
        PlatformError,
    > {
        let mut fabric = self.build_fabric(plan, cfg)?;
        let stream = plan.generate();
        let (report, records) = fabric.run_live_migrating(&stream, exec, specs)?;
        self.telemetry.absorb_report(&report.fabric.telemetry);
        self.telemetry.add("serve.migrations", records.len() as u64);
        if !report.fabric.alarms.is_empty() {
            self.telemetry
                .add("serve.alarms", report.fabric.alarms.len() as u64);
        }
        Ok((report, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinymlops_nn::data::synth_digits;
    use tinymlops_nn::model::mlp;
    use tinymlops_nn::train::{fit, FitConfig};
    use tinymlops_nn::Adam;
    use tinymlops_tensor::TensorRng;

    fn platform() -> Platform {
        Platform::new(&PlatformConfig {
            fleet_size: 30,
            seed: 7,
            signer_height: 3,
        })
    }

    fn trained() -> (Sequential, Dataset, Dataset) {
        let data = synth_digits(800, 0.08, 70);
        let (train, test) = data.split(0.85, 0);
        let mut rng = TensorRng::seed(1);
        let mut model = mlp(&[64, 24, 10], &mut rng);
        let mut opt = Adam::new(0.005);
        fit(
            &mut model,
            &train,
            &mut opt,
            &FitConfig {
                epochs: 10,
                batch_size: 32,
                ..Default::default()
            },
        );
        (model, train, test)
    }

    #[test]
    fn publish_and_rollout() {
        let p = platform();
        let (model, train, test) = trained();
        let (base, variants) = p
            .publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        assert_eq!(variants.len(), 7);
        assert!(p.registry.get(base).is_ok());
        let req = Requirements {
            max_latency_ms: 1e6,
            max_download_ms: f64::INFINITY,
            min_accuracy: 0.0,
            max_energy_mj: f64::INFINITY,
        };
        let plan = p.rollout_plan("digits", &req);
        let placed = plan.iter().filter(|s| s.is_some()).count();
        assert!(placed > 20, "most devices get a variant, got {placed}/30");
    }

    #[test]
    fn metering_flow_end_to_end() {
        let mut p = platform();
        let (model, train, _) = trained();
        p.sell_package(3, 50).unwrap();
        let x = train.x.slice_rows(0, 10);
        let pred = p.metered_infer(3, &model, &x).unwrap();
        assert_eq!(pred.len(), 10);
        // Burn the rest and hit the denial.
        let x40 = train.x.slice_rows(0, 40);
        p.metered_infer(3, &model, &x40).unwrap();
        assert!(p.metered_infer(3, &model, &x).is_err(), "quota exhausted");
        // Sync → invoice covers 50 queries (within the free tier).
        let invoice = p.sync_device(3).unwrap();
        assert_eq!(invoice.queries, 50);
        assert_eq!(invoice.amount_microdollars, 0, "free tier");
    }

    #[test]
    fn capsule_from_registry_verifies() {
        let p = platform();
        let (model, train, test) = trained();
        let (base, _) = p
            .publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let capsule = p
            .package(base, &Pipeline::standard_classifier(0.0, 1.0), "mcu-m7")
            .unwrap();
        capsule.verify(&p.vendor_root()).unwrap();
        assert_eq!(capsule.meta.name, "digits");
    }

    #[test]
    fn protected_model_decrypts_only_with_master() {
        let p = platform();
        let (model, train, test) = trained();
        let (base, _) = p
            .publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let enc = p.protect_for_device(base, 9).unwrap();
        let dec = tinymlops_ipp::decrypt_model(&enc, &p.master_key()).unwrap();
        assert_eq!(dec.num_params(), model.num_params());
        assert!(tinymlops_ipp::decrypt_model(&enc, &[0u8; 32]).is_err());
    }

    #[test]
    fn serving_plane_serves_published_family_end_to_end() {
        use tinymlops_serve::{LoadPlan, ServeConfig, TenantSpec};
        let mut p = platform();
        let (model, train, test) = trained();
        p.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let plan = LoadPlan {
            tenants: vec![TenantSpec {
                id: 3,
                rate_rps: 400.0,
                model: "digits".into(),
                prepaid_queries: 1_000,
                deadline_us: 500_000,
            }],
            duration_us: 1_000_000,
            seed: 21,
            feature_dim: 64,
        };
        let report = p.serve_traffic(&plan, &ServeConfig::default()).unwrap();
        assert!(report.served > 200, "traffic flowed: {report}");
        assert!(
            report.real_predictions > 0,
            "feature-carrying requests ran real inference"
        );
        assert_eq!(
            p.telemetry.counter("serve.served"),
            report.served,
            "serving counters land in platform telemetry"
        );
        // Determinism: replay through a freshly built plane.
        let again = p.serve_traffic(&plan, &ServeConfig::default()).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn sharded_fabric_serves_published_family_end_to_end() {
        use tinymlops_serve::{FabricConfig, LoadPlan, TenantSpec};
        let mut p = platform();
        let (model, train, test) = trained();
        p.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let plan = LoadPlan {
            tenants: (0..6u32)
                .map(|i| TenantSpec {
                    id: i + 1,
                    rate_rps: 150.0,
                    model: "digits".into(),
                    prepaid_queries: 1_000,
                    deadline_us: 500_000,
                })
                .collect(),
            duration_us: 1_000_000,
            seed: 33,
            feature_dim: 0,
        };
        let cfg = FabricConfig::default();
        let report = p.serve_traffic_sharded(&plan, &cfg).unwrap();
        assert!(
            report.fleet.served > 200,
            "traffic flowed: {}",
            report.fleet
        );
        assert_eq!(report.per_node.len(), 3, "three nodes reported");
        assert!(
            report.refunds_balance(),
            "refunds exactly match downstream sheds"
        );
        assert_eq!(
            p.telemetry.counter("serve.served"),
            report.fleet.served,
            "merged fleet counters land in platform telemetry"
        );
        // Every tenant's chain verifies under its real provisioning key —
        // checked on a fabric that actually replayed the traffic, so the
        // verified chains carry real Query entries, not just the Redeems.
        let mut fabric = p.build_fabric(&plan, &cfg).unwrap();
        fabric.run(&plan.generate()).unwrap();
        let master = p.master_key();
        let checked = fabric
            .verify_chains(|t| tinymlops_ipp::encrypt::device_key(&master, t))
            .unwrap();
        assert_eq!(checked, 6);
        assert!(
            fabric.quota_census().iter().any(|q| q.consumed > 0),
            "verified chains must carry real query entries"
        );
        // Determinism: a fresh platform replays to the identical report.
        let mut q = platform();
        q.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        assert_eq!(q.serve_traffic_sharded(&plan, &cfg).unwrap(), report);
    }

    #[test]
    fn live_backend_matches_sim_replay_and_folds_timers() {
        use tinymlops_serve::{ExecConfig, FabricConfig, LoadPlan, TenantSpec};
        let mut p = platform();
        let (model, train, test) = trained();
        p.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let plan = LoadPlan {
            tenants: (0..6u32)
                .map(|i| TenantSpec {
                    id: i + 1,
                    rate_rps: 150.0,
                    model: "digits".into(),
                    prepaid_queries: 1_000,
                    deadline_us: 500_000,
                })
                .collect(),
            duration_us: 1_000_000,
            seed: 33,
            feature_dim: 0,
        };
        let cfg = FabricConfig::default();
        let sim_report = p.serve_traffic_sharded(&plan, &cfg).unwrap();
        let mut q = platform();
        q.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let live = q
            .serve_traffic_live(&plan, &cfg, &ExecConfig::default())
            .unwrap();
        assert_eq!(
            live.fabric, sim_report,
            "threaded replay is bit-identical to the simulator"
        );
        assert!(live.wall_ms > 0.0);
        assert!(live.wall_throughput_rps() > 0.0);
        // Timer summaries are no longer dropped at the fabric report:
        // both paths fold `serve.latency_ms` into platform telemetry.
        for platform in [&p, &q] {
            let snap = platform.telemetry.snapshot();
            let timer = snap
                .timers
                .get("serve.latency_ms")
                .expect("fleet timer summaries land in platform telemetry");
            assert_eq!(timer.count, sim_report.fleet.served);
        }
    }

    #[test]
    fn triggered_migration_moves_tenant_and_stays_bit_exact() {
        use tinymlops_serve::{
            ExecConfig, FabricConfig, LoadPlan, MigrationPhase, MigrationSpec, TenantSpec,
        };
        let mut p = platform();
        let (model, train, test) = trained();
        p.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let plan = LoadPlan {
            tenants: (0..6u32)
                .map(|i| TenantSpec {
                    id: i + 1,
                    rate_rps: 300.0,
                    model: "digits".into(),
                    prepaid_queries: 10_000,
                    deadline_us: 500_000,
                })
                .collect(),
            duration_us: 1_000_000,
            seed: 33,
            feature_dim: 0,
        };
        let cfg = FabricConfig::default();
        // Find tenant 1's hash-derived home so the spec moves it for real.
        let probe = p.build_fabric(&plan, &cfg).unwrap();
        let from = probe.home_node(1).unwrap();
        let to = (0..3).find(|n| *n != from).unwrap();
        drop(probe);
        let specs = [MigrationSpec {
            tenant: 1,
            to,
            trigger_us: 400_000,
        }];
        let (report, records) = p.serve_traffic_migrating(&plan, &cfg, &specs).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].phase, MigrationPhase::Resumed);
        assert_eq!((records[0].from, records[0].to), (from, to));
        assert!(report.refunds_balance());
        assert_eq!(p.telemetry.counter("serve.migrations"), 1);
        // The threaded backend replays the same migration bit-exactly.
        let mut q = platform();
        q.publish("digits", &model, SemVer::new(1, 0, 0), &train, &test)
            .unwrap();
        let (live, live_records) = q
            .serve_traffic_live_migrating(&plan, &cfg, &ExecConfig::default(), &specs)
            .unwrap();
        assert_eq!(live.fabric, report);
        assert_eq!(live_records, records.clone());
    }

    #[test]
    fn serving_unknown_family_errors() {
        use tinymlops_serve::{LoadPlan, ServeConfig, TenantSpec};
        let mut p = platform();
        let plan = LoadPlan {
            tenants: vec![TenantSpec {
                id: 1,
                rate_rps: 10.0,
                model: "ghost".into(),
                prepaid_queries: 10,
                deadline_us: 1000,
            }],
            duration_us: 1000,
            seed: 0,
            feature_dim: 0,
        };
        assert!(matches!(
            p.serve_traffic(&plan, &ServeConfig::default()),
            Err(PlatformError::Serve(_))
        ));
    }

    #[test]
    fn double_selling_a_voucher_serial_is_caught() {
        let mut p = platform();
        let v = p.sell_package(1, 10).unwrap();
        // Simulate replaying the same serial through the ledger.
        assert!(p.ledger.register(v.serial).is_err());
    }
}
