//! The TinyMLOps platform: every Figure-1 functionality block behind one
//! API.
//!
//! Figure 1 of the paper sketches a TinyMLOps system as a hub connecting:
//! model store / versioning, deployment to a fragmented fleet,
//! observability, pay-per-query metering, federated learning &
//! personalization, IP protection, and verifiable execution. Each of those
//! is a dedicated crate in this workspace; this crate is the hub —
//! [`Platform`] owns the services and [`lifecycle`] drives an end-to-end
//! pass that experiment F1 and the examples execute.

pub mod lifecycle;
pub mod platform;

pub use lifecycle::{run_lifecycle, LifecycleConfig, LifecycleReport, StageReport};
pub use platform::{Platform, PlatformConfig};

/// Errors bubbled up from any subsystem.
#[derive(Debug)]
pub enum PlatformError {
    /// Registry failure.
    Registry(tinymlops_registry::RegistryError),
    /// Deployment failure.
    Deploy(tinymlops_deploy::DeployError),
    /// Metering failure.
    Meter(tinymlops_meter::MeterError),
    /// Federated-learning failure.
    Fed(tinymlops_fed::FedError),
    /// Verification failure.
    Verify(tinymlops_verify::VerifyError),
    /// IP-protection failure.
    Ipp(tinymlops_ipp::IppError),
    /// Quantization failure.
    Quant(tinymlops_quant::QuantError),
    /// Serving-plane failure.
    Serve(tinymlops_serve::ServeError),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Registry(e) => write!(f, "registry: {e}"),
            PlatformError::Deploy(e) => write!(f, "deploy: {e}"),
            PlatformError::Meter(e) => write!(f, "meter: {e}"),
            PlatformError::Fed(e) => write!(f, "fed: {e}"),
            PlatformError::Verify(e) => write!(f, "verify: {e}"),
            PlatformError::Ipp(e) => write!(f, "ipp: {e}"),
            PlatformError::Quant(e) => write!(f, "quant: {e}"),
            PlatformError::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for PlatformError {
            fn from(e: $ty) -> Self {
                PlatformError::$variant(e)
            }
        }
    };
}

from_err!(Registry, tinymlops_registry::RegistryError);
from_err!(Deploy, tinymlops_deploy::DeployError);
from_err!(Meter, tinymlops_meter::MeterError);
from_err!(Fed, tinymlops_fed::FedError);
from_err!(Verify, tinymlops_verify::VerifyError);
from_err!(Ipp, tinymlops_ipp::IppError);
from_err!(Quant, tinymlops_quant::QuantError);
from_err!(Serve, tinymlops_serve::ServeError);
