//! # tinymlops
//!
//! An operational platform for edge AI, reproducing the system called for
//! by *"TinyMLOps: Operational Challenges for Widespread Edge AI
//! Adoption"* (Leroux et al., 2022). The paper enumerates what a TinyMLOps
//! platform must do; this workspace builds all of it:
//!
//! | Module (re-export) | Paper section | What it provides |
//! |---|---|---|
//! | [`nn`], [`tensor`] | §I | The on-device DNN runtime: training, inference, synthetic datasets |
//! | [`quant`] | §II, §III-A | int8/int4/int2/binary kernels, pruning, distillation |
//! | [`registry`] | §III-A | Versioned model store, lineage, auto-triggered optimization pipeline |
//! | [`observe`] | §III-B | Drift detectors, bounded telemetry, DP aggregation, stealing detection |
//! | [`meter`] | §III-C | Offline pay-per-query: quotas, tamper-evident audit chains, vouchers, billing |
//! | [`fed`] | §III-D | FedAvg/FedProx, non-iid partitioners, update compression, secure aggregation, personalization |
//! | [`serve`] | §III-A/C, §IV | The traffic plane: sharded multi-node fabric, tenant gateway + quota admission with shed refunds, micro-batching, model cache, affinity fleet routing, bounded-load placement, live tenant migration (in-flight drain/handoff), 100k-request replay — simulated or live (one OS thread per node, bit-identical replay) |
//! | [`device`] | §IV | The simulated fragmented fleet: capabilities, batteries, networks |
//! | [`deploy`] | §III-A, §IV | Constraint-aware selection, signed capsules, pipeline VM, marketplace, edge-cloud split |
//! | [`ipp`] | §V | Model encryption, static/dynamic watermarking, prediction poisoning, extraction attacks |
//! | [`verify`] | §VI | Sum-check verifiable inference, simulated secure enclaves |
//! | [`crypto`] | substrate | SHA-256, HMAC/HKDF, ChaCha20, hash-based signatures |
//! | [`core`] | Fig. 1 | The platform hub and the end-to-end lifecycle |
//!
//! ## Quickstart
//!
//! ```
//! use tinymlops::core::{run_lifecycle, LifecycleConfig};
//! let report = run_lifecycle(&LifecycleConfig {
//!     fleet_size: 20,
//!     dataset_size: 600,
//!     fl_clients: 4,
//!     fl_rounds: 2,
//!     seed: 1,
//! }).expect("lifecycle");
//! assert!(report.all_ok());
//! ```
//!
//! See `examples/` for domain scenarios and `crates/bench` for the
//! experiment harness regenerating every table in EXPERIMENTS.md.

pub use tinymlops_core as core;
pub use tinymlops_crypto as crypto;
pub use tinymlops_deploy as deploy;
pub use tinymlops_device as device;
pub use tinymlops_fed as fed;
pub use tinymlops_ipp as ipp;
pub use tinymlops_meter as meter;
pub use tinymlops_nn as nn;
pub use tinymlops_observe as observe;
pub use tinymlops_quant as quant;
pub use tinymlops_registry as registry;
pub use tinymlops_serve as serve;
pub use tinymlops_tensor as tensor;
pub use tinymlops_verify as verify;
